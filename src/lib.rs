//! # hierarchical-consensus
//!
//! A complete Rust implementation of **Fast Raft** and **C-Raft** from
//! *“A Hierarchical Model for Fast Distributed Consensus in Dynamic
//! Networks”* (Castiglia, Goldberg, Patterson — ICDCS 2020), together with
//! a classic-Raft baseline and the deterministic simulation stack used to
//! reproduce every figure of the paper's evaluation.
//!
//! This crate is a facade: it re-exports the workspace's public API.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`protocols`] | `consensus-core`, `raft` | Fast Raft, C-Raft, classic Raft (sans-IO) |
//! | [`sim`] | `des`, `simnet`, `storage` | event simulator, network models, stable storage |
//! | [`types`] | `wire` | ids, logs, configurations, quorums, codec |
//! | [`bench`](mod@bench) | `harness` | runner, scenarios, metrics, experiments |
//!
//! # Quickstart
//!
//! ```
//! use hierarchical_consensus::bench::{run_fast_raft, Scenario};
//!
//! // Five sites, one region, closed-loop proposer — the paper's Fig. 3 cell.
//! let mut scenario = Scenario::fig3_base(1, 0.0);
//! scenario.target_commits = Some(5);
//! let (report, _) = run_fast_raft(&scenario);
//! assert!(report.safety_ok);
//! assert_eq!(report.completed, 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The consensus protocols: Fast Raft, C-Raft, and the classic baseline.
pub mod protocols {
    pub use consensus_core::{
        build_deployment, CRaftConfig, CRaftMessage, CRaftNode, FastRaftEngine, FastRaftMessage,
        FastRaftNode, GatePurpose, GateRecorder, GateRequest, GateToken, GateVerdict, InsertGate,
        PossibleEntries, ProceedGate, ProposalMode, TimerProfile,
    };
    pub use raft::{testkit, NotLeader, RaftMessage, RaftNode, Role, Timing};
}

/// The simulation substrate: deterministic events, network, storage.
pub mod sim {
    pub use des::{
        EventId, EventQueue, Firing, SimDuration, SimRng, SimTime, Simulation, TraceBuffer,
        TraceRecord,
    };
    pub use simnet::{
        BernoulliLoss, ConstantLatency, DropReason, GilbertElliott, LatencyModel, LinkStats,
        LossModel, NetStats, Network, NoLoss, PartitionSet, PerLinkLoss, RegionId, RegionLatency,
        Topology, UniformLatency, Verdict,
    };
    pub use storage::{ScopeState, SimDisk, StableState};
}

/// Shared consensus types, the client contract, and the wire codec.
pub mod types {
    pub use wire::{
        classic_quorum, fast_quorum, is_classic_quorum, is_fast_quorum,
        min_chosen_votes_in_classic_quorum, Actions, Approval, Batch, BatchItem, ClientOp,
        ClientOutcome, ClientRequest, ClusterId, Commit, Configuration, Consistency,
        ConsensusProtocol, DecodeError, Decoder, Encoder, EntryId, GlobalState, LogEntry,
        LogIndex, LogScope, Message, NodeId, Observation, Payload, PersistCmd, SessionId,
        SessionTable, SparseLog, Term, TimerCmd, TimerKind, Wire,
    };
}

/// The experiment harness: runner, scenarios, metrics, and the paper's
/// figures as runnable experiments.
pub mod bench {
    pub use harness::experiments;
    pub use harness::{
        run_classic_raft, run_craft, run_fast_raft, CRaftScenario, FaultAction, LatencySample,
        LatencyStats, LinViolation, Metrics, NetSummary, NetworkKind, ReadMix, Runner,
        RunnerConfig, RunReport, SafetyChecker, SafetyViolation, Scenario, Workload,
    };
}
