//! Extension: C-Raft batch-size sweep (8 clusters, 40 sites).
//!
//! `--json <path>` additionally writes the machine-readable series consumed
//! by the CI bench gate.

fn main() {
    let opts = bench::BenchOpts::from_args();
    let secs = if opts.quick { 20 } else { 120 };
    let result = harness::experiments::ext::batch_sweep(7, &[1, 5, 10, 20, 50], secs);
    print!("{}", result.render());
    opts.write_json(&result.to_json());
}
