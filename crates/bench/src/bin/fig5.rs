//! Regenerates Fig. 5: global throughput vs cluster count, Raft vs C-Raft.

fn main() {
    let opts = bench::BenchOpts::from_args();
    let (clusters, secs): (Vec<u64>, u64) = if opts.quick {
        (vec![1, 4, 10], 30)
    } else {
        (vec![1, 2, 4, 5, 10], 180)
    };
    let result = harness::experiments::fig5::run(&opts.seed_list(), &clusters, 20, secs);
    print!("{}", result.render());
}
