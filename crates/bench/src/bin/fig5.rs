//! Regenerates Fig. 5: global throughput vs cluster count, Raft vs C-Raft.
//!
//! The sweep extends the paper's 1–10 clusters to 20 (one site per
//! cluster): the all-global extreme is the configuration that stresses the
//! zero-copy message fabric hardest. `--json <path>` additionally writes
//! the machine-readable series consumed by the CI bench gate.

fn main() {
    let opts = bench::BenchOpts::from_args();
    let (clusters, secs): (Vec<u64>, u64) = if opts.quick {
        (vec![1, 4, 10, 20], 30)
    } else {
        (vec![1, 2, 4, 5, 10, 20], 180)
    };
    let result = harness::experiments::fig5::run(&opts.seed_list(), &clusters, 20, secs);
    print!("{}", result.render());
    opts.write_json(&result.to_json());
}
