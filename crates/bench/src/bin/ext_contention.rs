//! Extension: concurrent proposers vs the fast track.

fn main() {
    let opts = bench::BenchOpts::from_args();
    let secs = if opts.quick { 10 } else { 60 };
    let result = harness::experiments::ext::contention(7, 5, secs);
    print!("{}", result.render());
}
