//! Deterministic write-path probe: one write-only closed-loop workload
//! (11-site classic Raft, every site proposing, fsync latency modeled at
//! 10 ms) run three times from the same seed — group commit, the unbatched
//! one-fsync-per-command twin, and group commit with pipelined apply. The
//! experiment itself asserts the write-path contract: identical persisted
//! command streams, fewer fsync boundaries and higher throughput for group
//! commit, per-node digests identical between pipelined and inline apply.
//! `--json` feeds the fsync-ratio / cmds-per-batch / throughput series to
//! the CI gate.

fn main() {
    let opts = bench::BenchOpts::from_args();
    let ops: u64 = if opts.quick { 400 } else { 1500 };
    let seed = opts.seed_list()[0];
    let result = harness::experiments::commit_path::run(seed, ops);
    print!("{}", result.render());
    assert!(
        result.fsync_batch_ratio() >= 5.0,
        "group commit must cut fsync boundaries per commit by >= 5x, got {:.2}x",
        result.fsync_batch_ratio()
    );
    assert!(
        result.tput_speedup() > 1.0,
        "group commit failed to win on throughput"
    );
    assert!(
        result.pipelined_tput_ratio() > 0.95,
        "the pipelined drain stage cost throughput: {:.3}",
        result.pipelined_tput_ratio()
    );
    opts.write_json(&result.to_json());
}
