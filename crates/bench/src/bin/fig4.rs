//! Regenerates Fig. 4: Fast Raft latency across a silent leave of 2/5 sites.

fn main() {
    let opts = bench::BenchOpts::from_args();
    let (leave_at, total) = if opts.quick { (6, 14) } else { (10, 30) };
    let result = harness::experiments::fig4::run(4242, leave_at, total);
    print!("{}", result.render());
}
