//! Deterministic read/write-mix probe over the typed client API: 50/50
//! linearizable reads + exactly-once session writes on a Fast Raft cell
//! (with a crash/recover retry window) and a C-Raft cell (global reads
//! confirmed through the global engine). Every linearizable read is checked
//! online; the binary exits non-zero if safety, the lin-check, or the retry
//! path regresses. `--json` feeds the throughput and read-speed series to
//! the CI gate.

fn main() {
    let opts = bench::BenchOpts::from_args();
    let ops: u64 = if opts.quick { 300 } else { 1200 };
    let seed = opts.seed_list()[0];
    let result = harness::experiments::read_mix::run(seed, ops);
    print!("{}", result.render());
    for cell in &result.cells {
        assert!(
            cell.lin_reads_checked > 0,
            "{}: no linearizable read was verified",
            cell.protocol
        );
        assert!(
            cell.read_mean_ms > 0.0,
            "{}: read latency series is empty",
            cell.protocol
        );
    }
    // The fast cell's crash window must exercise the client retry path.
    let fast = &result.cells[0];
    assert!(
        fast.client_retries > 0 || fast.duplicates_suppressed > 0,
        "the crash window exercised neither retries nor dedup"
    );
    opts.write_json(&result.to_json());
}
