//! Multi-group sharding sweep: throughput scaling across 1/16/256 groups
//! under Zipfian keys, plus the hibernation triplet (one active group
//! alone, with 4096 parked neighbours, and with hibernation disabled).
//! `ShardSweepResult::check` enforces the headline claims inline —
//! monotone scaling and idle-fleet cost within 10% — so the binary exits
//! non-zero on regression. `--json` feeds the gated series to
//! `bench_compare`.

fn main() {
    let opts = bench::BenchOpts::from_args();
    let seed = opts.seed_list()[0];
    let result = shard::run_sweep(seed, opts.quick);
    print!("{}", result.render());
    result.check();
    assert!(
        result.coalesce_widest() >= 1.0,
        "frame coalescing regressed below 1 message per frame"
    );
    opts.write_json(&result.to_json());
}
