//! CI bench gate: compares bench JSON results against a checked-in baseline.
//!
//! Usage:
//!
//! ```text
//! bench_compare --baseline ci/bench_baseline.json [--threshold 0.20] [--exact] <current.json>...
//! ```
//!
//! The baseline maps bench names to `series` objects (`{"fig5": {"craft/10":
//! 193.33, ...}, ...}`); each current file is the `--json` output of a bench
//! binary (`{"bench": "fig5", "series": {...}}`). The gate fails (exit 1)
//! when any baseline series key is missing from the current run or its
//! throughput dropped by more than `threshold` (default 20%). Keys present
//! only in the current run are reported but not gated, so sweeps can grow
//! without immediately re-baselining.
//!
//! The simulator is deterministic, so for identical code the numbers match
//! the baseline exactly; the threshold only absorbs intentional,
//! benign-but-measurable behavior shifts.
//!
//! `--exact` replaces the threshold with bit-for-bit reproduction: every
//! baseline key must match the current value exactly (up to float-print
//! rounding). Refactors that claim to be behavior-identical — the simulator
//! being deterministic, *any* divergence means behavior changed — are gated
//! with this mode.

use bench::json::{parse, Value};

struct Args {
    baseline: String,
    threshold: f64,
    exact: bool,
    current: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut baseline = None;
    let mut threshold = 0.20;
    let mut exact = false;
    let mut current = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--baseline" => {
                baseline = match args.next() {
                    Some(v) if !v.starts_with("--") => Some(v),
                    _ => return Err("--baseline needs a file path".into()),
                };
            }
            "--threshold" => {
                threshold = args
                    .next()
                    .filter(|v| !v.starts_with("--"))
                    .and_then(|v| v.parse().ok())
                    .ok_or("--threshold needs a number")?;
            }
            "--exact" => exact = true,
            other if !other.starts_with("--") => current.push(other.to_string()),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    let baseline = baseline.ok_or("--baseline <file> is required")?;
    if current.is_empty() {
        return Err("at least one current result file is required".into());
    }
    Ok(Args {
        baseline,
        threshold,
        exact,
        current,
    })
}

/// Equality up to float-print rounding (values travel through `{:.2}`).
fn matches_exactly(cur: f64, base: f64) -> bool {
    (cur - base).abs() <= 1e-9 * base.abs().max(1.0)
}

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    parse(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("usage error: {e}");
            std::process::exit(2);
        }
    };
    let baseline = match load(&args.baseline) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mut failures = 0u32;
    for path in &args.current {
        let current = match load(path) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        };
        let Some(name) = current.get("bench").and_then(Value::as_str) else {
            eprintln!("{path}: missing \"bench\" name");
            std::process::exit(2);
        };
        let Some(cur_series) = current.get("series").and_then(Value::as_obj) else {
            eprintln!("{path}: missing \"series\" object");
            std::process::exit(2);
        };
        let Some(base_series) = baseline.get(name).and_then(Value::as_obj) else {
            eprintln!("FAIL {name}: no baseline entry in {}", args.baseline);
            failures += 1;
            continue;
        };
        if args.exact {
            println!("== {name} (exact reproduction)");
        } else {
            println!("== {name} (threshold -{:.0}%)", args.threshold * 100.0);
        }
        for (key, base_val) in base_series {
            let Some(base) = base_val.as_num() else {
                eprintln!("FAIL {name}/{key}: baseline value is not a number");
                failures += 1;
                continue;
            };
            match cur_series.get(key).and_then(Value::as_num) {
                None => {
                    eprintln!("FAIL {name}/{key}: missing from current run");
                    failures += 1;
                }
                Some(cur) if args.exact => {
                    if matches_exactly(cur, base) {
                        println!("  ok {key}: {cur:.2} == baseline (exact)");
                    } else {
                        eprintln!(
                            "FAIL {name}/{key}: {cur:.2} != baseline {base:.2} — the \
                             deterministic series diverged, so behavior changed"
                        );
                        failures += 1;
                    }
                }
                Some(cur) => {
                    let floor = base * (1.0 - args.threshold);
                    let delta = if base > 0.0 {
                        (cur - base) / base * 100.0
                    } else {
                        0.0
                    };
                    if cur < floor {
                        eprintln!(
                            "FAIL {name}/{key}: {cur:.2} < {floor:.2} (baseline {base:.2}, {delta:+.1}%)"
                        );
                        failures += 1;
                    } else {
                        println!("  ok {key}: {cur:.2} vs baseline {base:.2} ({delta:+.1}%)");
                    }
                }
            }
        }
        for key in cur_series.keys() {
            if !base_series.contains_key(key) {
                println!("  new {key}: not in baseline (not gated)");
            }
        }
    }
    if failures > 0 {
        eprintln!("bench gate: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("bench gate: all series within threshold");
}
