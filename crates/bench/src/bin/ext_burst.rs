//! Extension: bursty vs i.i.d. loss at equal stationary rates (Ext-E).

fn main() {
    let opts = bench::BenchOpts::from_args();
    let commits = if opts.quick { 30 } else { 100 };
    let result = harness::experiments::ext::burst(7, &[2.0, 5.0, 10.0], commits);
    print!("{}", result.render());
}
