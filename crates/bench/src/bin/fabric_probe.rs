//! Allocation + throughput probe for the message fabric.
//!
//! Runs the fig. 5 cell at the paper sweep's largest cluster count (10
//! clusters × 2 sites, every cluster proposing) under a counting global
//! allocator, and prints machine-readable JSON: heap allocations, allocated
//! bytes, committed items, and global throughput for classic Raft and
//! C-Raft, plus a single-region Fast Raft cell. Used to record the
//! before/after comparison in `BENCH_fabric.json`.
//!
//! Metric definitions: `allocs` counts allocator calls (alloc + realloc);
//! `alloc_bytes` is cumulative bytes *requested* — a realloc charges its
//! full new size without crediting the old block, so growing buffers are
//! counted at every growth step. The same rule applies to both trees being
//! compared, keeping the before/after deltas meaningful.
//!
//! The simulation is deterministic, so for a fixed seed the numbers are
//! exactly reproducible.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use des::SimDuration;
use harness::{run_classic_raft, run_craft, run_fast_raft, CRaftScenario, NetworkKind, Scenario};
use raft::Timing;
use wire::NodeId;

/// Wraps the system allocator with relaxed atomic counters.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn snapshot() -> (u64, u64) {
    (
        ALLOC_CALLS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

struct Cell {
    name: &'static str,
    allocs: u64,
    alloc_bytes: u64,
    items: u64,
    tput: f64,
    wall_ms: u128,
}

fn measure(name: &'static str, run: impl FnOnce() -> (u64, f64)) -> Cell {
    let (a0, b0) = snapshot();
    let t0 = std::time::Instant::now();
    let (items, tput) = run();
    let wall_ms = t0.elapsed().as_millis();
    let (a1, b1) = snapshot();
    Cell {
        name,
        allocs: a1 - a0,
        alloc_bytes: b1 - b0,
        items,
        tput,
        wall_ms,
    }
}

fn scenario(sites: u64, clusters: u64, seed: u64, secs: u64) -> Scenario {
    let per = sites / clusters;
    let proposers: Vec<NodeId> = (0..clusters).map(|c| NodeId(c * per)).collect();
    Scenario {
        seed,
        sites,
        network: NetworkKind::Regions { regions: clusters },
        loss: 0.0,
        timing: Timing::lan(),
        proposers,
        payload_bytes: 64,
        target_commits: None,
        duration: SimDuration::from_secs(secs + 10),
        warmup: SimDuration::from_secs(10),
        faults: Vec::new(),
        leader_bias: None,
        reads: None,
        unbatched_persists: false,
    }
}

fn main() {
    let seed = 4242;
    let secs = 30;
    let s = scenario(20, 10, seed, secs);
    let cells = [
        measure("raft_10c", || {
            let (r, _) = run_classic_raft(&s);
            assert!(r.safety_ok);
            (r.global_items, r.throughput_per_s)
        }),
        measure("craft_10c", || {
            let (r, _) = run_craft(&s, &CRaftScenario::paper(10));
            assert!(r.safety_ok);
            (r.global_items, r.throughput_per_s)
        }),
        measure("fast_raft_1c", || {
            let mut f = Scenario::fig3_base(seed, 0.0);
            f.target_commits = Some(2000);
            let (r, _) = run_fast_raft(&f);
            assert!(r.safety_ok);
            (r.global_items, r.throughput_per_s)
        }),
    ];
    println!("{{");
    println!("  \"seed\": {seed},");
    println!("  \"cells\": {{");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        println!(
            "    \"{}\": {{\"allocs\": {}, \"alloc_bytes\": {}, \"items\": {}, \"tput\": {:.2}, \"wall_ms\": {}}}{}",
            c.name, c.allocs, c.alloc_bytes, c.items, c.tput, c.wall_ms, comma
        );
    }
    println!("  }}");
    println!("}}");
}
