//! Regenerates Figs. 1–2: message rounds per committed proposal.

fn main() {
    let opts = bench::BenchOpts::from_args();
    let commits = if opts.quick { 10 } else { 50 };
    let result = harness::experiments::rounds::run(42, commits);
    print!("{}", result.render());
}
