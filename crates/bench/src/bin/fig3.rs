//! Regenerates Fig. 3: commit latency vs message loss, classic vs Fast Raft.

fn main() {
    let opts = bench::BenchOpts::from_args();
    let (losses, commits): (Vec<f64>, u64) = if opts.quick {
        (vec![0.0, 5.0, 10.0], 30)
    } else {
        ((0..=10).map(|p| p as f64).collect(), 100)
    };
    let result = harness::experiments::fig3::run(&opts.seed_list(), &losses, commits);
    print!("{}", result.render());
}
