//! Deterministic long-run residency probe: peak per-site log residency
//! stays bounded by the snapshot threshold (compaction on) instead of
//! growing with run length (compaction off), at unchanged committed
//! throughput — including a rejoin-after-compaction for both Fast Raft and
//! C-Raft's global level. Exits non-zero if bounding or the rejoin path
//! regresses; `--json` feeds the throughput/bound series to the CI gate.

fn main() {
    let opts = bench::BenchOpts::from_args();
    let (secs, threshold): (u64, u64) = if opts.quick { (60, 64) } else { (240, 128) };
    let seed = opts.seed_list()[0];
    let result = harness::experiments::residency::run(seed, secs, threshold);
    print!("{}", result.render());
    for cell in &result.cells {
        // Hard bound: the retained log may exceed the threshold only by the
        // uncommitted in-flight window (C-Raft sites hold two logs, so allow
        // both scopes' thresholds plus slack).
        let bound = 2 * threshold + 96;
        assert!(
            cell.peak_on <= bound,
            "{}: peak residency {} exceeds bound {} (threshold {})",
            cell.protocol,
            cell.peak_on,
            bound,
            threshold
        );
        assert!(
            cell.peak_off > bound,
            "{}: compaction-off peak {} never exceeded the bound — run too \
             short to demonstrate bounding",
            cell.protocol,
            cell.peak_off
        );
        assert!(
            cell.compactions > 0 && cell.snapshot_installs > 0,
            "{}: compaction ({}) or snapshot rejoin ({}) never exercised",
            cell.protocol,
            cell.compactions,
            cell.snapshot_installs
        );
        // Unchanged throughput: compaction must not cost more than the CI
        // envelope (20%).
        assert!(
            cell.tput_on >= 0.8 * cell.tput_off,
            "{}: throughput dropped with compaction on ({:.1} vs {:.1})",
            cell.protocol,
            cell.tput_on,
            cell.tput_off
        );
    }
    opts.write_json(&result.to_json());
}
