//! Deterministic leader-lease probe: one read-heavy linearizable workload
//! (80/20 reads/writes, leader crash + recovery mid-run) run twice from the
//! same seed — leases on vs `lease_duration = 0`. The experiment itself
//! asserts the lease contract: majority of lin reads lease-served, zero
//! lease reads when disabled, strictly fewer messages on the wire and lower
//! mean read latency than the ReadIndex-only twin, checker green across the
//! leadership change. `--json` feeds the lease-share / read-speedup /
//! messages-saved series to the CI gate.

fn main() {
    let opts = bench::BenchOpts::from_args();
    let ops: u64 = if opts.quick { 600 } else { 2000 };
    let seed = opts.seed_list()[0];
    let result = harness::experiments::lease_mix::run(seed, ops);
    print!("{}", result.render());
    assert!(
        result.lease_share() > 0.5,
        "lease share {:.2} is not a majority",
        result.lease_share()
    );
    assert!(
        result.read_speedup() > 1.0,
        "leases failed to win on read latency"
    );
    assert!(
        result.msgs_saved_per_lease_read() > 0.0,
        "lease reads carried message cost"
    );
    opts.write_json(&result.to_json());
}
