//! Runs every experiment and prints the combined report (EXPERIMENTS.md
//! source material).

fn main() {
    let opts = bench::BenchOpts::from_args();
    let seeds = opts.seed_list();

    println!("==============================================================");
    let commits = if opts.quick { 10 } else { 50 };
    print!("{}", harness::experiments::rounds::run(42, commits).render());

    println!("==============================================================");
    let (losses, commits): (Vec<f64>, u64) = if opts.quick {
        (vec![0.0, 5.0, 10.0], 30)
    } else {
        ((0..=10).map(|p| p as f64).collect(), 100)
    };
    print!(
        "{}",
        harness::experiments::fig3::run(&seeds, &losses, commits).render()
    );

    println!("==============================================================");
    let (leave_at, total) = if opts.quick { (6, 14) } else { (10, 30) };
    print!("{}", harness::experiments::fig4::run(4242, leave_at, total).render());

    println!("==============================================================");
    let (clusters, secs): (Vec<u64>, u64) = if opts.quick {
        (vec![1, 4, 10], 30)
    } else {
        (vec![1, 2, 4, 5, 10], 180)
    };
    print!(
        "{}",
        harness::experiments::fig5::run(&seeds, &clusters, 20, secs).render()
    );

    println!("==============================================================");
    let secs = if opts.quick { 20 } else { 120 };
    print!(
        "{}",
        harness::experiments::ext::batch_sweep(7, &[1, 5, 10, 20, 50], secs).render()
    );

    println!("==============================================================");
    let secs = if opts.quick { 10 } else { 60 };
    print!("{}", harness::experiments::ext::contention(7, 5, secs).render());

    println!("==============================================================");
    let (crash_at, total) = if opts.quick { (6, 14) } else { (10, 30) };
    print!("{}", harness::experiments::ext::failover(4242, crash_at, total).render());

    println!("==============================================================");
    let secs = if opts.quick { 20 } else { 120 };
    print!(
        "{}",
        harness::experiments::ext::mode_ablation(7, &[2, 4, 10], secs).render()
    );

    println!("==============================================================");
    let commits = if opts.quick { 30 } else { 100 };
    print!(
        "{}",
        harness::experiments::ext::burst(7, &[2.0, 5.0, 10.0], commits).render()
    );
}
