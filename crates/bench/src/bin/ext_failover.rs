//! Extension: leader-crash recovery gap in Fast Raft.

fn main() {
    let opts = bench::BenchOpts::from_args();
    let (crash_at, total) = if opts.quick { (6, 14) } else { (10, 30) };
    let result = harness::experiments::ext::failover(4242, crash_at, total);
    print!("{}", result.render());
}
