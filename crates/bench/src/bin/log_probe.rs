//! Deterministic microbenchmark for the dense-prefix `wire::SparseLog`.
//!
//! Drives the rewritten log and an in-bin `BTreeMap<u64, LogEntry>`
//! baseline (the exact representation it replaced) through the protocols'
//! hot access patterns — appends, point lookups (`get` + `term_at` during
//! ack verification), commit scans over the contiguous run, and budgeted
//! AppendEntries range collection — under a counting global allocator.
//! Prints machine-readable JSON with per-workload throughput (million
//! ops/sec), allocation counts, and the new/old speedup ratios the CI gate
//! watches; the before/after record lives in `BENCH_log.json`.
//!
//! The op sequences are seeded and identical for both representations, so
//! the allocation counts are exactly reproducible; wall-clock throughput
//! varies by machine, which is why the **gated** series are the relative
//! speedups, not the absolute rates. The binary itself enforces the hard
//! acceptance floor: ≥ 2× point-lookup and commit-scan throughput and no
//! more allocations than the baseline on the collection path.

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use wire::{
    AppendBudget, EntryId, EntryList, LogEntry, LogIndex, NodeId, SparseLog, Term, Wire,
};

/// Wraps the system allocator with relaxed atomic counters.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// xorshift64*: deterministic, dependency-free index sampling.
fn xs(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

fn entry(term: u64, seq: u64, payload: &Bytes) -> LogEntry {
    LogEntry::data(Term(term), EntryId::new(NodeId(1), seq), payload.clone())
}

/// The previous `SparseLog` representation, reproduced as the baseline.
#[derive(Default)]
struct BTreeLog {
    entries: BTreeMap<u64, LogEntry>,
}

impl BTreeLog {
    fn insert(&mut self, i: u64, e: LogEntry) {
        self.entries.insert(i, e);
    }

    fn get(&self, i: u64) -> Option<&LogEntry> {
        self.entries.get(&i)
    }

    fn term_at(&self, i: u64) -> Term {
        self.get(i).map_or(Term::ZERO, |e| e.term)
    }

    /// The old collection path: a growing clone vector, then the frozen
    /// `Arc<[T]>` copy `EntryList::from_vec` used to make.
    fn collect_range_budgeted(
        &self,
        from: u64,
        to: u64,
        budget: AppendBudget,
    ) -> std::sync::Arc<[(LogIndex, LogEntry)]> {
        let mut out: Vec<(LogIndex, LogEntry)> = Vec::new();
        let mut bytes = 0usize;
        for (&i, e) in self.entries.range(from..=to) {
            let sz = 8 + e.encoded_len();
            if !budget.admits(out.len(), bytes, sz) {
                break;
            }
            bytes += sz;
            out.push((LogIndex(i), e.clone()));
        }
        out.into()
    }
}

struct Cell {
    workload: &'static str,
    old_mops: f64,
    new_mops: f64,
    old_allocs: u64,
    new_allocs: u64,
}

impl Cell {
    fn speedup(&self) -> f64 {
        self.new_mops / self.old_mops
    }
}

fn measured(ops: u64, run: impl FnOnce() -> u64) -> (f64, u64) {
    let a0 = ALLOC_CALLS.load(Ordering::Relaxed);
    let t0 = std::time::Instant::now();
    let sink = run();
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    let a1 = ALLOC_CALLS.load(Ordering::Relaxed);
    // Keep the optimizer honest without polluting stdout's JSON.
    if sink == u64::MAX {
        eprintln!("sink {sink}");
    }
    (ops as f64 / secs / 1e6, a1 - a0)
}

fn main() {
    let opts = bench::BenchOpts::from_args();
    let (n, lookups, scans, collects): (u64, u64, u64, u64) = if opts.quick {
        (8_192, 2_000_000, 400, 20_000)
    } else {
        (16_384, 8_000_000, 1_600, 80_000)
    };
    let seed = 0x0010_6B0B ^ opts.seed_list()[0];
    let payload = Bytes::from(vec![0x5A; 64]);
    let budget = AppendBudget::new(64, 8 * 1024);

    // ---- append: grow an n-entry log from empty, repeated ----
    let reps = 8u64;
    let append = {
        let (old_mops, old_allocs) = measured(n * reps, || {
            let mut acc = 0u64;
            for r in 0..reps {
                let mut log = BTreeLog::default();
                for i in 1..=n {
                    log.insert(i, entry(1 + (i & 3), i ^ r, &payload));
                }
                acc ^= log.entries.len() as u64;
            }
            acc
        });
        let (new_mops, new_allocs) = measured(n * reps, || {
            let mut acc = 0u64;
            for r in 0..reps {
                let mut log = SparseLog::new();
                for i in 1..=n {
                    log.append(entry(1 + (i & 3), i ^ r, &payload));
                }
                acc ^= log.len() as u64;
            }
            acc
        });
        Cell {
            workload: "append",
            old_mops,
            new_mops,
            old_allocs,
            new_allocs,
        }
    };

    // ---- shared pre-built logs for the read-side workloads ----
    let mut old_log = BTreeLog::default();
    let mut new_log = SparseLog::new();
    for i in 1..=n {
        let e = entry(1 + (i & 3), i, &payload);
        old_log.insert(i, e.clone());
        new_log.insert(LogIndex(i), e);
    }

    // ---- point lookups: get + term_at at random indices (the per-message
    //      inner loop of Fast Raft's ack verification) ----
    let lookup = {
        let (old_mops, old_allocs) = measured(lookups, || {
            let mut s = seed;
            let mut acc = 0u64;
            for _ in 0..lookups {
                let i = 1 + xs(&mut s) % n;
                acc = acc
                    .wrapping_add(old_log.term_at(i).as_u64())
                    .wrapping_add(old_log.get(i).map_or(0, |e| e.id.seq));
            }
            acc
        });
        let (new_mops, new_allocs) = measured(lookups, || {
            let mut s = seed;
            let mut acc = 0u64;
            for _ in 0..lookups {
                let i = LogIndex(1 + xs(&mut s) % n);
                acc = acc
                    .wrapping_add(new_log.term_at(i).as_u64())
                    .wrapping_add(new_log.get(i).map_or(0, |e| e.id.seq));
            }
            acc
        });
        Cell {
            workload: "lookup",
            old_mops,
            new_mops,
            old_allocs,
            new_allocs,
        }
    };

    // ---- commit scan: walk the contiguous run from index 1, the shape of
    //      advance_commit_classic / decision_point ----
    let scan = {
        let (old_mops, old_allocs) = measured(scans * n, || {
            let mut acc = 0u64;
            for _ in 0..scans {
                let mut k = 1u64;
                while let Some(e) = old_log.get(k) {
                    acc = acc.wrapping_add(e.term.as_u64());
                    k += 1;
                }
            }
            acc
        });
        let (new_mops, new_allocs) = measured(scans * n, || {
            let mut acc = 0u64;
            for _ in 0..scans {
                for (_, e) in new_log.contiguous_from(LogIndex(1)) {
                    acc = acc.wrapping_add(e.term.as_u64());
                }
            }
            acc
        });
        Cell {
            workload: "scan",
            old_mops,
            new_mops,
            old_allocs,
            new_allocs,
        }
    };

    // ---- budgeted collection: assemble AppendEntries batches from random
    //      resume points (one per recipient group per dispatch) ----
    let collect = {
        let (old_mops, old_allocs) = measured(collects, || {
            let mut s = seed ^ 0xC0;
            let mut acc = 0u64;
            for _ in 0..collects {
                let from = 1 + xs(&mut s) % n;
                let got = old_log.collect_range_budgeted(from, n, budget);
                acc = acc.wrapping_add(got.len() as u64);
            }
            acc
        });
        let (new_mops, new_allocs) = measured(collects, || {
            let mut s = seed ^ 0xC0;
            let mut acc = 0u64;
            for _ in 0..collects {
                let from = LogIndex(1 + xs(&mut s) % n);
                let got: EntryList =
                    new_log.collect_range_budgeted(from, LogIndex(n), budget);
                acc = acc.wrapping_add(got.len() as u64);
            }
            acc
        });
        Cell {
            workload: "collect",
            old_mops,
            new_mops,
            old_allocs,
            new_allocs,
        }
    };

    let cells = [append, lookup, scan, collect];
    let mut lines = String::new();
    for c in &cells {
        lines.push_str(&format!(
            "    \"{}\": {{\"old_mops\": {:.3}, \"new_mops\": {:.3}, \"speedup\": {:.2}, \
             \"old_allocs\": {}, \"new_allocs\": {}}},\n",
            c.workload,
            c.old_mops,
            c.new_mops,
            c.speedup(),
            c.old_allocs,
            c.new_allocs,
        ));
    }
    let lookup = &cells[1];
    let scan = &cells[2];
    let collect = &cells[3];
    let append = &cells[0];
    let alloc_ratio = collect.old_allocs as f64 / collect.new_allocs.max(1) as f64;
    let json = format!(
        "{{\n  \"bench\": \"log_probe\",\n  \"n\": {n},\n  \"cells\": {{\n{}  }},\n  \
         \"series\": {{\n    \"log/lookup_speedup\": {:.2},\n    \"log/scan_speedup\": {:.2},\n    \
         \"log/append_speedup\": {:.2},\n    \"log/collect_speedup\": {:.2},\n    \
         \"log/collect_alloc_ratio\": {:.2}\n  }}\n}}\n",
        lines.trim_end_matches(",\n").to_string() + "\n",
        lookup.speedup(),
        scan.speedup(),
        append.speedup(),
        collect.speedup(),
        alloc_ratio,
    );
    print!("{json}");

    // Hard acceptance floors (the ISSUE's ≥2× criterion), independent of
    // the CI baseline file: fail loudly when the dense layout stops paying.
    assert!(
        lookup.speedup() >= 2.0,
        "point-lookup speedup {:.2} below the 2x floor",
        lookup.speedup()
    );
    assert!(
        scan.speedup() >= 2.0,
        "commit-scan speedup {:.2} below the 2x floor",
        scan.speedup()
    );
    assert!(
        collect.speedup() >= 2.0,
        "budgeted-collection speedup {:.2} below the 2x floor (segment \
         windows should make assembly a refcount bump)",
        collect.speedup()
    );
    assert!(
        collect.new_allocs <= collect.old_allocs,
        "budgeted collection allocates more than the BTreeMap baseline \
         ({} vs {})",
        collect.new_allocs,
        collect.old_allocs
    );
    assert!(
        append.speedup() >= 0.8,
        "append throughput regressed by more than 20% ({:.2}x)",
        append.speedup()
    );
    opts.write_json(&json);
}
