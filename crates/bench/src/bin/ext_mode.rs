//! Extension: C-Raft global proposal-mode ablation (Ext-A).

fn main() {
    let opts = bench::BenchOpts::from_args();
    let secs = if opts.quick { 20 } else { 120 };
    let result = harness::experiments::ext::mode_ablation(7, &[2, 4, 10], secs);
    print!("{}", result.render());
}
