//! A minimal, dependency-free JSON reader for the CI bench gate.
//!
//! The container builds offline, so the comparator cannot pull a JSON
//! crate; this module implements the small subset the bench gate needs —
//! objects, arrays, strings (no escapes beyond `\"`, `\\`, `\/`, `\n`,
//! `\t`, `\r`), numbers, booleans, and null — with strict end-of-input
//! checking. It is a reader for our own emitters' output, not a general
//! JSON implementation.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as f64.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, with deterministic key order.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => Err(format!(
                "expected '{}' at byte {}, found '{}'",
                b as char,
                self.pos - 1,
                got as char
            )),
            None => Err(format!("expected '{}', found end of input", b as char)),
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(map)),
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos - 1)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(items)),
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos - 1)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    other => {
                        return Err(format!("unsupported escape {other:?} at byte {}", self.pos))
                    }
                },
                Some(c) if c.is_ascii() => out.push(c as char),
                Some(c) => {
                    // Pushing raw bytes as chars would mangle multi-byte
                    // UTF-8 into mojibake; stay honestly ASCII-only.
                    return Err(format!(
                        "non-ASCII byte 0x{c:02x} at byte {} (reader is ASCII-only)",
                        self.pos - 1
                    ));
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-')
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_output() {
        let doc = r#"{
  "bench": "fig5",
  "series": {
    "raft/1": 10.00,
    "craft/1": 19.67
  }
}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("bench").and_then(Value::as_str), Some("fig5"));
        let series = v.get("series").unwrap().as_obj().unwrap();
        assert_eq!(series.len(), 2);
        assert_eq!(series["craft/1"].as_num(), Some(19.67));
    }

    #[test]
    fn parses_scalars_arrays_escapes() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(
            parse("[1, 2, []]").unwrap(),
            Value::Arr(vec![
                Value::Num(1.0),
                Value::Num(2.0),
                Value::Arr(vec![])
            ])
        );
        assert_eq!(
            parse(r#""a\"b\n""#).unwrap(),
            Value::Str("a\"b\n".to_string())
        );
        assert_eq!(parse("{}").unwrap(), Value::Obj(BTreeMap::new()));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\": 1} x").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"\u{fc}ber\"").is_err(), "non-ASCII must error loudly");
    }
}
