//! # `bench` — the benchmark harness
//!
//! One binary per table/figure of the paper (`fig3`, `fig4`, `fig5`,
//! `rounds`) plus extension studies (`ext_batch`, `ext_contention`,
//! `ext_failover`) and `all` (everything, writing a combined report).
//! Criterion benches live under `benches/` and exercise both the component
//! layer (event queue, codec, quorum math) and scaled-down experiment runs.
//!
//! Every binary accepts `--quick` for a fast, reduced-parameter pass and
//! `--seeds N` to control trial counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

/// Shared command-line options for the figure binaries.
#[derive(Clone, Debug)]
pub struct BenchOpts {
    /// Reduced parameters for a fast pass.
    pub quick: bool,
    /// Number of seeds (trials) per configuration.
    pub seeds: u64,
    /// Also write the machine-readable JSON result to this path (the CI
    /// bench gate feeds these files to `bench_compare`).
    pub json: Option<String>,
}

impl BenchOpts {
    /// Parses options from `std::env::args`.
    pub fn from_args() -> Self {
        let mut opts = BenchOpts {
            quick: false,
            seeds: 3,
            json: None,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => opts.quick = true,
                "--seeds" => {
                    opts.seeds = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(opts.seeds);
                }
                "--json" => {
                    // A following flag is a missing value, not a filename.
                    opts.json = match args.next() {
                        Some(v) if !v.starts_with("--") => Some(v),
                        _ => {
                            eprintln!("--json needs a file path");
                            std::process::exit(2);
                        }
                    };
                }
                other => eprintln!("ignoring unknown argument: {other}"),
            }
        }
        opts
    }

    /// Writes `json` to the `--json` path, if one was given.
    ///
    /// # Panics
    ///
    /// Panics when the file cannot be written (CI must fail loudly).
    pub fn write_json(&self, json: &str) {
        if let Some(path) = &self.json {
            std::fs::write(path, json).expect("writing --json output");
            eprintln!("wrote {path}");
        }
    }

    /// The seed list for this options set.
    pub fn seed_list(&self) -> Vec<u64> {
        (0..self.seeds.max(1)).map(|i| 1000 + 7 * i).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_list_is_deterministic() {
        let o = BenchOpts {
            quick: true,
            seeds: 3,
            json: None,
        };
        assert_eq!(o.seed_list(), vec![1000, 1007, 1014]);
    }

    #[test]
    fn seed_list_never_empty() {
        let o = BenchOpts {
            quick: false,
            seeds: 0,
            json: None,
        };
        assert_eq!(o.seed_list().len(), 1);
    }
}
