//! Scaled-down versions of every figure experiment, as criterion benches.
//!
//! `cargo bench -p bench --bench figures` regenerates each figure's shape
//! with reduced trial counts (the full-scale series come from the `fig*`
//! binaries). Criterion's timing here measures whole-experiment wall-clock,
//! i.e. simulator throughput for each experiment class.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_rounds(c: &mut Criterion) {
    c.bench_function("figures/rounds_fig1_2", |b| {
        b.iter(|| {
            let r = harness::experiments::rounds::run(42, 5);
            assert!(r.fast_hops < r.raft_hops);
            r
        })
    });
}

fn bench_fig3_cell(c: &mut Criterion) {
    c.bench_function("figures/fig3_cell_0pct", |b| {
        b.iter(|| {
            let r = harness::experiments::fig3::run(&[1], &[0.0], 15);
            assert!(r.speedup_at_zero_loss > 1.0);
            r
        })
    });
    c.bench_function("figures/fig3_cell_5pct", |b| {
        b.iter(|| harness::experiments::fig3::run(&[1], &[5.0], 15))
    });
}

fn bench_fig4(c: &mut Criterion) {
    c.bench_function("figures/fig4_silent_leave", |b| {
        b.iter(|| {
            let r = harness::experiments::fig4::run(4242, 5, 10);
            assert!(r.safety_ok);
            r
        })
    });
}

fn bench_fig5_cell(c: &mut Criterion) {
    c.bench_function("figures/fig5_cell_4clusters", |b| {
        b.iter(|| {
            let r = harness::experiments::fig5::run(&[1], &[4], 20, 15);
            assert!(r.rows[0].craft_tput > 0.0);
            r
        })
    });
}

criterion_group!(
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_rounds, bench_fig3_cell, bench_fig4, bench_fig5_cell
);
criterion_main!(figures);
