//! Protocol-step benchmarks: a full propose → commit cycle through each
//! protocol's state machines via the lockstep driver (no simulated time, so
//! this measures pure protocol computation cost per committed entry).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use des::SimRng;
use raft::testkit::Lockstep;
use raft::{RaftNode, Timing};
use wire::{Configuration, NodeId, TimerKind};

fn classic_cluster() -> Lockstep<RaftNode> {
    let cfg: Configuration = (0..5).map(NodeId).collect();
    let mut net = Lockstep::new((0..5).map(|i| {
        RaftNode::new(
            NodeId(i),
            cfg.clone(),
            Timing::lan(),
            SimRng::seed_from_u64(900 + i),
        )
    }));
    net.fire(NodeId(0), TimerKind::Election);
    net.deliver_all();
    net
}

fn fast_cluster() -> Lockstep<consensus_core::FastRaftNode> {
    let cfg: Configuration = (0..5).map(NodeId).collect();
    let mut net = Lockstep::new((0..5).map(|i| {
        consensus_core::FastRaftNode::new(
            NodeId(i),
            cfg.clone(),
            Timing::lan(),
            SimRng::seed_from_u64(900 + i),
        )
    }));
    net.fire(NodeId(0), TimerKind::Election);
    net.deliver_all();
    net
}

fn bench_commit_cycle(c: &mut Criterion) {
    c.bench_function("protocol/classic_raft_commit_cycle", |b| {
        b.iter_batched(
            classic_cluster,
            |mut net| {
                for _ in 0..10 {
                    net.propose(NodeId(1), b"bench");
                    net.deliver_all();
                    net.fire(NodeId(0), TimerKind::Heartbeat);
                    net.deliver_all();
                }
                net.commits(NodeId(0)).len()
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("protocol/fast_raft_commit_cycle", |b| {
        b.iter_batched(
            fast_cluster,
            |mut net| {
                for _ in 0..10 {
                    net.propose(NodeId(1), b"bench");
                    net.deliver_all();
                    net.fire(NodeId(0), TimerKind::LeaderTick);
                    net.deliver_all();
                }
                net.commits(NodeId(0)).len()
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_election(c: &mut Criterion) {
    c.bench_function("protocol/fast_raft_election_5", |b| {
        let cfg: Configuration = (0..5).map(NodeId).collect();
        b.iter_batched(
            || {
                Lockstep::new((0..5).map(|i| {
                    consensus_core::FastRaftNode::new(
                        NodeId(i),
                        cfg.clone(),
                        Timing::lan(),
                        SimRng::seed_from_u64(i),
                    )
                }))
            },
            |mut net| {
                net.fire(NodeId(0), TimerKind::Election);
                net.deliver_all();
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    name = protocols;
    config = Criterion::default().sample_size(20);
    targets = bench_commit_cycle, bench_election
);
criterion_main!(protocols);
