//! Microbenchmarks of the substrate components: the simulation event queue,
//! the wire codec, quorum arithmetic, the sparse log, and the leader's
//! possibleEntries structure. These establish that the simulator itself is
//! not the bottleneck when regenerating the paper's figures.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use des::{EventQueue, SimRng, SimTime};
use wire::{
    classic_quorum, fast_quorum, Configuration, EntryId, LogEntry, LogIndex, NodeId, SparseLog,
    Term, Wire,
};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/push_pop_1k", |b| {
        let mut rng = SimRng::seed_from_u64(1);
        let times: Vec<SimTime> = (0..1000)
            .map(|_| SimTime::from_micros(rng.gen_range(0..1_000_000u64)))
            .collect();
        b.iter_batched(
            EventQueue::new,
            |mut q| {
                for (i, &t) in times.iter().enumerate() {
                    q.schedule(t, i);
                }
                while q.pop().is_some() {}
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("event_queue/cancel_heavy", |b| {
        b.iter_batched(
            EventQueue::new,
            |mut q| {
                let ids: Vec<_> = (0..512)
                    .map(|i| q.schedule(SimTime::from_micros(i), i))
                    .collect();
                for id in ids.iter().step_by(2) {
                    q.cancel(*id);
                }
                while q.pop().is_some() {}
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_codec(c: &mut Criterion) {
    let entry = LogEntry::data(
        Term(7),
        EntryId::new(NodeId(3), 99),
        Bytes::from(vec![0u8; 64]),
    );
    let msg = consensus_core::FastRaftMessage::AppendEntries {
        term: Term(7),
        leader: NodeId(1),
        prev_index: LogIndex(41),
        entries: (42..58).map(|i| (LogIndex(i), entry.clone())).collect(),
        leader_commit: LogIndex(41),
        global_commit: LogIndex(12),
        probe: 0,
    };
    let encoded = msg.to_bytes();
    c.bench_function("codec/encode_append_entries_16", |b| {
        b.iter(|| black_box(&msg).to_bytes())
    });
    c.bench_function("codec/decode_append_entries_16", |b| {
        b.iter(|| consensus_core::FastRaftMessage::from_bytes(black_box(&encoded)).unwrap())
    });
    c.bench_function("codec/wire_size_append_entries_16", |b| {
        b.iter(|| black_box(&msg).encoded_len())
    });
}

fn bench_quorum(c: &mut Criterion) {
    c.bench_function("quorum/sizes_1..128", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for m in 1..128usize {
                acc += classic_quorum(black_box(m)) + fast_quorum(black_box(m));
            }
            acc
        })
    });
    let cfg: Configuration = (0..20).map(NodeId).collect();
    c.bench_function("quorum/config_lookups", |b| {
        b.iter(|| {
            (black_box(&cfg).classic_quorum(), cfg.fast_quorum(), cfg.len())
        })
    });
}

fn bench_sparse_log(c: &mut Criterion) {
    let entry = LogEntry::noop(Term(1), EntryId::new(NodeId(1), 0));
    c.bench_function("sparse_log/append_1k", |b| {
        b.iter_batched(
            SparseLog::new,
            |mut log| {
                for _ in 0..1000 {
                    log.append(entry.clone());
                }
                log.last_index()
            },
            BatchSize::SmallInput,
        );
    });
    let mut log = SparseLog::new();
    for _ in 0..1000 {
        log.append(entry.clone());
    }
    c.bench_function("sparse_log/range_collect_128", |b| {
        b.iter(|| log.collect_range(LogIndex(437), LogIndex(437 + 127)))
    });
    c.bench_function("sparse_log/self_approved_scan_1k", |b| {
        b.iter(|| log.self_approved().len())
    });
}

fn bench_possible_entries(c: &mut Criterion) {
    use consensus_core::PossibleEntries;
    let entry = |seq: u64| LogEntry::noop(Term(1), EntryId::new(NodeId(100), seq));
    c.bench_function("possible_entries/vote_and_decide", |b| {
        b.iter_batched(
            PossibleEntries::new,
            |mut pe| {
                for idx in 1..=32u64 {
                    for voter in 0..5u64 {
                        pe.record_vote(LogIndex(idx), entry(idx % 3), NodeId(voter));
                    }
                    black_box(pe.most_voted(LogIndex(idx)));
                }
                pe.release_through(LogIndex(32));
                pe.len()
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    name = components;
    config = Criterion::default().sample_size(20);
    targets = bench_event_queue, bench_codec, bench_quorum, bench_sparse_log, bench_possible_entries
);
criterion_main!(components);
