//! Pluggable exploration strategies: how the next enabled event is chosen.
//!
//! All strategies draw randomness exclusively from a seeded [`SimRng`], so
//! a `(strategy, seed)` pair deterministically reproduces its schedule —
//! which is what makes a failing exploration re-runnable before the
//! minimized trace even exists.

use des::SimRng;
use wire::TimerKind;

use crate::schedule::Choice;
use crate::world::Enabled;

/// Chooses the next event among the enabled ones. Returning `None` ends
/// the exploration early (nothing worth doing).
pub trait Strategy {
    /// Picks from `view`; the world applies the result.
    fn choose(&mut self, view: &Enabled) -> Option<Choice>;
}

/// Parses a strategy by CLI name.
pub fn by_name(name: &str, seed: u64) -> Option<Box<dyn Strategy>> {
    Some(match name {
        "random" => Box::new(RandomWalk::new(seed)),
        "delay" => Box::new(DelayBounded::new(seed, 8)),
        "hammer" => Box::new(GateHammer::new(seed)),
        _ => return None,
    })
}

fn pick<T: Copy>(rng: &mut SimRng, items: &[T]) -> Option<T> {
    if items.is_empty() {
        None
    } else {
        let i = rng.gen_range(0..items.len() as u64) as usize;
        Some(items[i])
    }
}

/// Uniformly weighted chaos: mostly deliveries and timers, with a steady
/// trickle of duplication, loss, crash/recover, partitions, and stalls.
pub struct RandomWalk {
    rng: SimRng,
}

impl RandomWalk {
    /// A walk driven by `seed`.
    pub fn new(seed: u64) -> Self {
        RandomWalk {
            rng: SimRng::seed_from_u64(seed ^ 0x5eed_5a1f),
        }
    }
}

impl Strategy for RandomWalk {
    fn choose(&mut self, view: &Enabled) -> Option<Choice> {
        // (weight, category) for every category currently enabled.
        let dup_slots: Vec<u32> = view
            .dup_ok
            .iter()
            .enumerate()
            .filter(|(_, ok)| **ok)
            .map(|(i, _)| i as u32)
            .collect();
        let mut cats: Vec<(u32, u8)> = Vec::new();
        if !view.in_flight.is_empty() {
            cats.push((50, 0)); // deliver
            cats.push((3, 5)); // drop
        }
        if !dup_slots.is_empty() {
            cats.push((3, 4)); // duplicate
        }
        if !view.timers.is_empty() {
            cats.push((14, 1));
        }
        if !view.clients.is_empty() {
            cats.push((12, 2));
        }
        if !view.gates.is_empty() {
            cats.push((12, 3));
        }
        if view.up.len() > 1 {
            cats.push((2, 6)); // crash (keep at least one node up)
        }
        if !view.down.is_empty() {
            cats.push((4, 7)); // recover
        }
        if view.up.len() > 1 {
            cats.push((3, 8)); // cut
        }
        if !view.cuts.is_empty() {
            cats.push((3, 9)); // heal
        }
        if view.up.len() > view.stalled.len() {
            cats.push((2, 10)); // stall
        }
        if !view.stalled.is_empty() {
            cats.push((3, 11)); // unstall
        }
        let total: u32 = cats.iter().map(|(w, _)| w).sum();
        if total == 0 {
            return None;
        }
        let mut roll = self.rng.gen_range(0..u64::from(total)) as u32;
        let mut cat = cats[0].1;
        for (w, c) in &cats {
            if roll < *w {
                cat = *c;
                break;
            }
            roll -= w;
        }
        let rng = &mut self.rng;
        match cat {
            0 => Some(Choice::Deliver {
                slot: rng.gen_range(0..view.in_flight.len() as u64) as u32,
            }),
            1 => {
                // Bias toward earlier deadlines: earliest with p=1/2,
                // otherwise uniform (late timers model scheduling delay).
                let i = if rng.chance(0.5) {
                    0
                } else {
                    rng.gen_range(0..view.timers.len() as u64) as usize
                };
                let (node, kind) = view.timers[i];
                Some(Choice::Timer { node, kind })
            }
            2 => pick(rng, &view.clients).map(|(node, lane)| Choice::Client { node, lane }),
            3 => pick(rng, &view.gates).map(|(node, token)| Choice::Release { node, token }),
            4 => pick(rng, &dup_slots).map(|slot| Choice::Duplicate { slot }),
            5 => Some(Choice::Drop {
                slot: rng.gen_range(0..view.in_flight.len() as u64) as u32,
            }),
            6 => pick(rng, &view.up).map(|node| Choice::Crash { node }),
            7 => pick(rng, &view.down).map(|node| Choice::Recover { node }),
            8 => {
                let from = pick(rng, &view.up)?;
                let to = pick(rng, &view.up)?;
                (from != to).then_some(Choice::Cut { from, to })
            }
            9 => {
                if rng.chance(0.3) {
                    Some(Choice::HealAll)
                } else {
                    pick(rng, &view.cuts).map(|(from, to)| Choice::HealLink { from, to })
                }
            }
            10 => {
                let free: Vec<_> = view
                    .up
                    .iter()
                    .copied()
                    .filter(|n| !view.stalled.contains(n))
                    .collect();
                pick(rng, &free).map(|node| Choice::Stall { node })
            }
            _ => pick(rng, &view.stalled).map(|node| Choice::Unstall { node }),
        }
    }
}

/// Mostly-FIFO delivery with a bounded number of out-of-order picks — the
/// delay-bounded discipline: schedules at most `budget` deviations from
/// first-in-first-out message order, which covers most low-depth ordering
/// bugs far faster than uniform chaos.
pub struct DelayBounded {
    rng: SimRng,
    budget: u32,
}

impl DelayBounded {
    /// A discipline with `budget` out-of-order deliveries.
    pub fn new(seed: u64, budget: u32) -> Self {
        DelayBounded {
            rng: SimRng::seed_from_u64(seed ^ 0xde1a_b0dd),
            budget,
        }
    }
}

impl Strategy for DelayBounded {
    fn choose(&mut self, view: &Enabled) -> Option<Choice> {
        if !view.clients.is_empty() && self.rng.chance(0.15) {
            let (node, lane) = pick(&mut self.rng, &view.clients)?;
            return Some(Choice::Client { node, lane });
        }
        if !view.gates.is_empty() && self.rng.chance(0.3) {
            let (node, token) = pick(&mut self.rng, &view.gates)?;
            return Some(Choice::Release { node, token });
        }
        if !view.in_flight.is_empty() {
            let slot = if self.budget > 0
                && view.in_flight.len() > 1
                && self.rng.chance(0.12)
            {
                self.budget -= 1;
                self.rng.gen_range(1..view.in_flight.len() as u64) as u32
            } else {
                0
            };
            return Some(Choice::Deliver { slot });
        }
        if let Some(&(node, lane)) = view.clients.first() {
            return Some(Choice::Client { node, lane });
        }
        if let Some(&(node, token)) = view.gates.first() {
            return Some(Choice::Release { node, token });
        }
        view.timers
            .first()
            .map(|&(node, kind)| Choice::Timer { node, kind })
    }
}

/// Hammers the gate path: keeps gates armed while forcing leader churn
/// (election timers) and client traffic, then releases continuations in
/// LIFO order — the adversarial order for stale-continuation bugs.
pub struct GateHammer {
    rng: SimRng,
}

impl GateHammer {
    /// A hammer driven by `seed`.
    pub fn new(seed: u64) -> Self {
        GateHammer {
            rng: SimRng::seed_from_u64(seed ^ 0x6a7e_4a33),
        }
    }
}

impl Strategy for GateHammer {
    fn choose(&mut self, view: &Enabled) -> Option<Choice> {
        let elections: Vec<(wire::NodeId, TimerKind)> = view
            .timers
            .iter()
            .copied()
            .filter(|(_, k)| matches!(k, TimerKind::Election | TimerKind::GlobalElection))
            .collect();
        // Churn leadership while gates are armed: that is exactly when a
        // parked continuation can go stale or collide with a new leader's
        // own inserts.
        if !view.gates.is_empty() {
            if !elections.is_empty() && self.rng.chance(0.25) {
                let (node, kind) = pick(&mut self.rng, &elections)?;
                return Some(Choice::Timer { node, kind });
            }
            if self.rng.chance(0.35) {
                let &(node, token) = view.gates.last()?; // LIFO release
                return Some(Choice::Release { node, token });
            }
        }
        if !view.clients.is_empty() && self.rng.chance(0.25) {
            let (node, lane) = pick(&mut self.rng, &view.clients)?;
            return Some(Choice::Client { node, lane });
        }
        if !view.in_flight.is_empty() {
            let slot = if self.rng.chance(0.15) {
                self.rng.gen_range(0..view.in_flight.len() as u64) as u32
            } else {
                0
            };
            return Some(Choice::Deliver { slot });
        }
        if !view.timers.is_empty() {
            let i = if self.rng.chance(0.7) {
                0
            } else {
                self.rng.gen_range(0..view.timers.len() as u64) as usize
            };
            let (node, kind) = view.timers[i];
            return Some(Choice::Timer { node, kind });
        }
        view.clients
            .first()
            .map(|&(node, lane)| Choice::Client { node, lane })
    }
}
