//! What the explorer checks: the violation taxonomy.
//!
//! Three oracles watch every schedule:
//!
//! - **Safety** — cross-site commit-digest equality at shared indices
//!   (Definition 2.1), via [`harness::SafetyChecker`], checked after every
//!   step.
//! - **Lin** — client-level linearizability of `Linearizable` reads, via
//!   the same checker's real-time bound tracking.
//! - **Liveness** — once the schedule goes quiescent (all faults healed,
//!   messages drained, timers fired to a horizon, clients retried), every
//!   placed client operation must have resolved and every armed gate
//!   continuation and decision reservation must have drained to zero.

/// A property the schedule violated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Two sites committed different entries at the same index.
    Safety(String),
    /// A linearizable read answered from before its real-time bound.
    Lin(String),
    /// The system wedged: an operation or gate continuation never resolved
    /// although the schedule went quiescent.
    Liveness(String),
}

impl Violation {
    /// Stable short tag — shrinking preserves this discriminant, so a
    /// minimized schedule reproduces the *same kind* of failure.
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::Safety(_) => "safety",
            Violation::Lin(_) => "lin",
            Violation::Liveness(_) => "liveness",
        }
    }

    /// The human-readable detail.
    pub fn message(&self) -> &str {
        match self {
            Violation::Safety(m) | Violation::Lin(m) | Violation::Liveness(m) => m,
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind(), self.message())
    }
}
