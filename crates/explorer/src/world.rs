//! The explorable world: protocol nodes + an explorer-controlled
//! environment.
//!
//! Unlike the harness's discrete-event [`des`] simulation — where latency
//! models decide delivery order — the world keeps every pending event in
//! explicit pools and lets the *schedule* pick what happens next:
//!
//! - **Messages** sit in an in-flight pool; delivering any slot at any step
//!   subsumes arbitrary reordering, and explicit duplicate/drop choices
//!   model an unreliable datagram network.
//! - **Timers** are armed at absolute virtual deadlines. Firing one
//!   advances the virtual clock to (at least) its deadline, so a timer can
//!   fire arbitrarily *late* (legit scheduling delay) but never early.
//! - **Nodes** are left clockless — [`wire::ConsensusProtocol::set_local_clock`]
//!   is never called — so all lease logic is inert and linearizable reads
//!   take the ReadIndex round. Lease-path schedules are the harness's job
//!   (it models bounded skew); the explorer hunts ordering bugs.
//! - **Persists** apply to the simulated disk at emission. A persist
//!   *stall* therefore delays the node's outgoing messages (write-ahead:
//!   sends wait for the disk), never the durability itself — the modeled
//!   disk is always at least as durable as a real one, so a crash here is
//!   a fault a real deployment could also survive. Every failure the
//!   explorer finds is a feasible execution.
//!
//! All bookkeeping lives in `BTree` collections and the world draws no
//! randomness of its own, so a `(Setup, Vec<Choice>)` pair replays
//! bit-identically.

use harness::SafetyChecker;
use des::{SimDuration, SimTime};
use storage::{SimDisk, StableState};
use wire::{
    Actions, ClientOp, ClientOutcome, ClientRequest, Consistency, ConsensusProtocol, LogScope,
    NodeId, SessionId, TimerCmd, TimerKind,
};

use std::collections::{BTreeMap, BTreeSet};

use crate::oracle::Violation;
use crate::schedule::Choice;

/// A protocol the explorer can drive. Everything beyond
/// [`ConsensusProtocol`] has inert defaults, so ungated protocols plug in
/// unchanged; gate-aware wrappers override to hand gate release to the
/// schedule and expose gate debt to the liveness oracle.
pub trait Explorable: ConsensusProtocol {
    /// Gate tokens currently armed and awaiting an explorer release,
    /// oldest first. Empty for protocols without explorer-controlled gates.
    fn armed_gate_tokens(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Releases one armed gate; unknown tokens are ignored.
    fn release_gate(&mut self, _token: u64, _out: &mut Actions<Self::Message>) {}

    /// `(pending gate continuations, outstanding decision reservations)`.
    /// The liveness oracle asserts both are zero at quiescence; a
    /// reservation that outlives every continuation is a permanent wedge.
    fn gate_debt(&self) -> (usize, usize) {
        (0, 0)
    }

    /// Whether the healed deployment (`nodes`, every site up) is
    /// structurally able to serve `op`. The liveness oracle only demands
    /// resolution of ops this returns `true` for — a fairness constraint,
    /// not a free pass: flat deployments can always serve everything (the
    /// default), but C-Raft's global tier can only (re)form while a quorum
    /// of its configured seats sit on current cluster leaders (displaced
    /// members drop global traffic until evicted, and eviction itself
    /// needs a global leader), so linearizable reads are only demanded
    /// when that holds. See `ARCHITECTURE.md` and the ROADMAP note on
    /// passive global membership for the fix direction.
    fn op_serviceable(nodes: &[(NodeId, &Self)], op: &ClientOp) -> bool
    where
        Self: Sized,
    {
        let _ = (nodes, op);
        true
    }
}

impl Explorable for raft::RaftNode {}

impl Explorable for consensus_core::FastRaftNode {}

impl Explorable for consensus_core::CRaftNode {
    fn gate_debt(&self) -> (usize, usize) {
        self.global_gate_debt()
    }

    fn op_serviceable(nodes: &[(NodeId, &Self)], op: &ClientOp) -> bool {
        if !matches!(op, ClientOp::Read(Consistency::Linearizable)) {
            return true;
        }
        // Linearizable reads confirm through the global tier. That tier can
        // only elect while a quorum of its configured seats are held by
        // *current* cluster leaders: a displaced seat-holder ignores global
        // traffic, and with a quorum of seats displaced neither election
        // nor the evict-and-rejoin repair can ever run.
        let Some(config) = nodes
            .iter()
            .find_map(|(_, n)| n.global_engine().map(|g| g.config().clone()))
        else {
            return false;
        };
        let live_seats = config
            .iter()
            .filter(|&seat| {
                nodes
                    .iter()
                    .any(|&(id, n)| id == seat && n.local_role() == raft::Role::Leader)
            })
            .count();
        live_seats > config.len() / 2
    }
}

impl Explorable for crate::gated::GatedFastRaftNode {
    fn armed_gate_tokens(&self) -> Vec<u64> {
        self.armed_tokens()
    }

    fn release_gate(&mut self, token: u64, out: &mut Actions<Self::Message>) {
        GatedFastRaftNode::release_gate(self, token, out)
    }

    fn gate_debt(&self) -> (usize, usize) {
        GatedFastRaftNode::gate_debt(self)
    }
}

use crate::gated::GatedFastRaftNode;

/// Rebuilds a crashed node from its stable state.
pub type RecoveryFn<P> = Box<dyn FnMut(NodeId, &StableState) -> P>;

/// One in-flight message.
#[derive(Clone, Debug)]
pub struct Envelope<M> {
    /// Sender.
    pub from: NodeId,
    /// Addressee.
    pub to: NodeId,
    /// Payload.
    pub msg: M,
    /// Copies already minted from this envelope (duplication is bounded).
    pub dups: u8,
}

/// Maximum copies minted from one envelope via [`Choice::Duplicate`].
pub const MAX_DUPS: u8 = 3;

/// How often the quiescence drain retries unresolved client operations.
const RESUBMIT_PERIOD: SimDuration = SimDuration::from_millis(2_000);

struct Slot<P> {
    node: P,
    /// Armed timers at absolute virtual deadlines.
    timers: BTreeMap<TimerKind, SimTime>,
    up: bool,
}

struct Pending {
    seq: u64,
    op: ClientOp,
}

struct Lane {
    session: SessionId,
    /// Scripted ops already submitted at least once.
    issued: u32,
    /// Total scripted ops (registration included).
    total: u32,
    outstanding: Option<Pending>,
}

impl Lane {
    fn unresolved(&self) -> bool {
        self.outstanding.is_some() || self.issued < self.total
    }
}

/// Workload and drain parameters for a [`World`].
#[derive(Clone, Debug)]
pub struct WorldConfig {
    /// The scope a write acknowledgement's index belongs to (`Global` for
    /// single-level protocols; `Local` for C-Raft, which acks writes at
    /// intra-cluster commit).
    pub ack_scope: LogScope,
    /// Scripted data operations per client lane.
    pub ops: u32,
    /// Every `read_every`-th data op is a linearizable read (0 = none).
    pub read_every: u32,
    /// Client lanes per gateway node.
    pub lanes: u32,
    /// Each lane opens with an explicit `Register` op.
    pub register_first: bool,
    /// Virtual-time budget for the quiescence drain.
    pub drain_horizon: SimDuration,
    /// Hard step cap for the quiescence drain (treadmill backstop).
    pub max_drain_steps: u64,
}

impl WorldConfig {
    /// Defaults for the given ack scope: 60 s drain horizon, 2M-step cap.
    pub fn new(ack_scope: LogScope) -> Self {
        WorldConfig {
            ack_scope,
            ops: 2,
            read_every: 0,
            lanes: 1,
            register_first: false,
            drain_horizon: SimDuration::from_secs(60),
            max_drain_steps: 2_000_000,
        }
    }
}

/// Everything currently enabled, for strategies to choose from.
#[derive(Clone, Debug, Default)]
pub struct Enabled {
    /// `(from, to)` per in-flight slot, in slot order.
    pub in_flight: Vec<(NodeId, NodeId)>,
    /// Whether each slot may still be duplicated, in slot order.
    pub dup_ok: Vec<bool>,
    /// Armed timers, earliest deadline first.
    pub timers: Vec<(NodeId, TimerKind)>,
    /// Armed gates, `(node, token)`, node order then token order.
    pub gates: Vec<(NodeId, u64)>,
    /// Client lanes able to issue or resubmit, `(gateway, lane)`.
    pub clients: Vec<(NodeId, u32)>,
    /// Nodes currently up.
    pub up: Vec<NodeId>,
    /// Nodes currently crashed.
    pub down: Vec<NodeId>,
    /// Nodes with a persist stall in effect.
    pub stalled: Vec<NodeId>,
    /// Directed cuts in effect.
    pub cuts: Vec<(NodeId, NodeId)>,
}

/// The explorable deployment: nodes, network pools, disk, clients, oracles.
pub struct World<P: Explorable> {
    cfg: WorldConfig,
    slots: BTreeMap<NodeId, Slot<P>>,
    in_flight: Vec<Envelope<P::Message>>,
    /// Directed cuts: a send matching `(from, to)` is dropped at the wire.
    cuts: BTreeSet<(NodeId, NodeId)>,
    disk: SimDisk,
    now: SimTime,
    safety: SafetyChecker,
    lanes: BTreeMap<(NodeId, u32), Lane>,
    lane_of: BTreeMap<SessionId, (NodeId, u32)>,
    recover: RecoveryFn<P>,
    stalled: BTreeSet<NodeId>,
    /// Sends held back by a persist stall, per node, in emission order.
    held: BTreeMap<NodeId, Vec<(NodeId, P::Message)>>,
    steps: u64,
}

impl<P: Explorable> World<P> {
    /// Builds a world over `nodes`, provisions their disks, bootstraps
    /// them, and lays out `cfg.lanes` client lanes per node.
    pub fn new(
        nodes: impl IntoIterator<Item = P>,
        cfg: WorldConfig,
        safety: SafetyChecker,
        recover: RecoveryFn<P>,
    ) -> Self {
        let mut world = World {
            cfg,
            slots: BTreeMap::new(),
            in_flight: Vec::new(),
            cuts: BTreeSet::new(),
            disk: SimDisk::new(),
            now: SimTime::ZERO,
            safety,
            lanes: BTreeMap::new(),
            lane_of: BTreeMap::new(),
            recover,
            stalled: BTreeSet::new(),
            held: BTreeMap::new(),
            steps: 0,
        };
        let total = world.cfg.ops + u32::from(world.cfg.register_first);
        let ids: Vec<NodeId> = nodes
            .into_iter()
            .map(|node| {
                let id = node.id();
                world.disk.provision(id);
                world.slots.insert(
                    id,
                    Slot {
                        node,
                        timers: BTreeMap::new(),
                        up: true,
                    },
                );
                id
            })
            .collect();
        for id in ids {
            for lane in 0..world.cfg.lanes {
                // Distinct, stable session ids: lane 0 at node 3 is 3001.
                let session = SessionId::client(id.as_u64() * 1_000 + u64::from(lane) + 1);
                world.lanes.insert(
                    (id, lane),
                    Lane {
                        session,
                        issued: 0,
                        total,
                        outstanding: None,
                    },
                );
                world.lane_of.insert(session, (id, lane));
            }
            world.step_node(id, |n, out| n.bootstrap(out));
        }
        world
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Choices applied so far (including drain-internal ones).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Borrow a node for assertions. `None` for unknown ids.
    pub fn node(&self, id: NodeId) -> Option<&P> {
        self.slots.get(&id).map(|s| &s.node)
    }

    /// The safety checker (for end-of-run statistics).
    pub fn safety(&self) -> &SafetyChecker {
        &self.safety
    }

    /// Client lanes still awaiting a terminal outcome or with script left.
    pub fn unresolved_ops(&self) -> usize {
        self.lanes.values().filter(|l| l.unresolved()).count()
    }

    /// The safety/lin violation recorded so far, if any.
    pub fn check_safety(&self) -> Option<Violation> {
        if let Some(v) = self.safety.violations().first() {
            return Some(Violation::Safety(v.to_string()));
        }
        if let Some(v) = self.safety.lin_violations().first() {
            return Some(Violation::Lin(v.to_string()));
        }
        None
    }

    /// Everything a strategy may currently pick.
    pub fn enabled(&self) -> Enabled {
        let mut view = Enabled::default();
        for env in &self.in_flight {
            view.in_flight.push((env.from, env.to));
            view.dup_ok.push(env.dups < MAX_DUPS);
        }
        let mut timers: Vec<(SimTime, NodeId, TimerKind)> = Vec::new();
        for (&id, slot) in &self.slots {
            if slot.up {
                view.up.push(id);
                for (&kind, &deadline) in &slot.timers {
                    timers.push((deadline, id, kind));
                }
                for token in slot.node.armed_gate_tokens() {
                    view.gates.push((id, token));
                }
            } else {
                view.down.push(id);
            }
        }
        timers.sort();
        view.timers = timers.into_iter().map(|(_, n, k)| (n, k)).collect();
        for (&(node, lane), state) in &self.lanes {
            let gateway_up = self.slots.get(&node).is_some_and(|s| s.up);
            if gateway_up && state.unresolved() {
                view.clients.push((node, lane));
            }
        }
        view.stalled = self.stalled.iter().copied().collect();
        view.cuts = self.cuts.iter().copied().collect();
        view
    }

    /// Applies one choice. Returns `false` if the choice named nothing
    /// currently enabled (a skipped line on replay — harmless, so shrunk
    /// traces stay valid even when removals disable later choices).
    pub fn apply(&mut self, choice: &Choice) -> bool {
        self.steps += 1;
        match *choice {
            Choice::Deliver { slot } => {
                let slot = slot as usize;
                if slot >= self.in_flight.len() {
                    return false;
                }
                let env = self.in_flight.remove(slot);
                // A message addressed to a crashed node is lost at its
                // (dead) socket, but the delivery attempt still happened.
                if self.slots.get(&env.to).is_some_and(|s| s.up) {
                    self.step_node(env.to, |n, out| n.on_message(env.from, env.msg, out));
                }
                true
            }
            Choice::Duplicate { slot } => {
                let slot = slot as usize;
                if slot >= self.in_flight.len() || self.in_flight[slot].dups >= MAX_DUPS {
                    return false;
                }
                self.in_flight[slot].dups += 1;
                let mut copy = self.in_flight[slot].clone();
                copy.dups = MAX_DUPS; // copies of copies stay bounded
                self.in_flight.push(copy);
                true
            }
            Choice::Drop { slot } => {
                let slot = slot as usize;
                if slot >= self.in_flight.len() {
                    return false;
                }
                self.in_flight.remove(slot);
                true
            }
            Choice::Timer { node, kind } => {
                let Some(slot) = self.slots.get_mut(&node) else {
                    return false;
                };
                if !slot.up {
                    return false;
                }
                let Some(deadline) = slot.timers.remove(&kind) else {
                    return false;
                };
                self.now = self.now.max(deadline);
                self.step_node(node, |n, out| n.on_timer(kind, out));
                true
            }
            Choice::Client { node, lane } => self.submit(node, lane),
            Choice::Crash { node } => {
                let Some(slot) = self.slots.get_mut(&node) else {
                    return false;
                };
                if !slot.up {
                    return false;
                }
                slot.up = false;
                slot.timers.clear();
                // Held sends never left the box; the stall dies with it.
                self.stalled.remove(&node);
                self.held.remove(&node);
                true
            }
            Choice::Recover { node } => {
                if self.slots.get(&node).is_none_or(|s| s.up) {
                    return false;
                }
                let stable = self.disk.provision(node).clone();
                let fresh = (self.recover)(node, &stable);
                let slot = self.slots.get_mut(&node).expect("checked above");
                slot.node = fresh;
                slot.up = true;
                slot.timers.clear();
                self.step_node(node, |n, out| n.bootstrap(out));
                true
            }
            Choice::Cut { from, to } => from != to && self.cuts.insert((from, to)),
            Choice::HealLink { from, to } => self.cuts.remove(&(from, to)),
            Choice::HealAll => {
                if self.cuts.is_empty() {
                    return false;
                }
                self.cuts.clear();
                true
            }
            Choice::Stall { node } => {
                self.slots.contains_key(&node) && self.stalled.insert(node)
            }
            Choice::Unstall { node } => {
                if !self.stalled.remove(&node) {
                    return false;
                }
                for (to, msg) in self.held.remove(&node).unwrap_or_default() {
                    self.enqueue(node, to, msg);
                }
                true
            }
            Choice::Release { node, token } => {
                let Some(slot) = self.slots.get_mut(&node) else {
                    return false;
                };
                if !slot.up || !slot.node.armed_gate_tokens().contains(&token) {
                    return false;
                }
                self.step_node(node, |n, out| n.release_gate(token, out));
                true
            }
        }
    }

    /// Runs one handler on a node and performs its effects.
    fn step_node(&mut self, id: NodeId, f: impl FnOnce(&mut P, &mut Actions<P::Message>)) {
        let mut out = Actions::new();
        {
            let slot = self.slots.get_mut(&id).expect("stepping unknown node");
            f(&mut slot.node, &mut out);
            if slot.node.pending_applies() > 0 {
                slot.node.drain_applies(&mut out);
            }
        }
        self.process_actions(id, out);
    }

    fn process_actions(&mut self, from: NodeId, out: Actions<P::Message>) {
        // Persists land on the (always-durable) disk immediately; a stall
        // delays the write-ahead release of this step's sends instead.
        self.disk.apply(from, out.persists.iter());
        let hold = !out.persists.is_empty() && self.stalled.contains(&from);

        if let Some(slot) = self.slots.get_mut(&from) {
            for cmd in out.timers {
                match cmd {
                    TimerCmd::Set { kind, after } => {
                        slot.timers.insert(kind, self.now + after);
                    }
                    TimerCmd::Cancel { kind } => {
                        slot.timers.remove(&kind);
                    }
                }
            }
        }

        for commit in out.commits {
            self.safety
                .record(from, commit.scope, commit.index, commit.entry.id);
        }

        for (to, msg) in out.sends {
            if hold {
                self.held.entry(from).or_default().push((to, msg));
            } else {
                self.enqueue(from, to, msg);
            }
        }

        for obs in out.observations {
            if let wire::Observation::ClientResponse {
                session,
                seq,
                outcome,
            } = obs
            {
                self.settle(from, session, seq, outcome);
            }
        }
    }

    fn enqueue(&mut self, from: NodeId, to: NodeId, msg: P::Message) {
        if self.cuts.contains(&(from, to)) {
            return; // dropped at the wire by the one-way cut
        }
        self.in_flight.push(Envelope {
            from,
            to,
            msg,
            dups: 0,
        });
    }

    /// Issues the lane's next scripted op, or resubmits the outstanding
    /// one. Returns `false` when the lane has nothing to do.
    fn submit(&mut self, node: NodeId, lane: u32) -> bool {
        if !self.slots.get(&node).is_some_and(|s| s.up) {
            return false;
        }
        let Some(state) = self.lanes.get_mut(&(node, lane)) else {
            return false;
        };
        let (session, seq, op, first_submission) = if let Some(p) = &state.outstanding {
            (state.session, p.seq, p.op.clone(), false)
        } else {
            if state.issued >= state.total {
                return false;
            }
            let i = state.issued;
            state.issued += 1;
            let op = script_op(&self.cfg, node, lane, i);
            let seq = u64::from(i) + 1;
            state.outstanding = Some(Pending {
                seq,
                op: op.clone(),
            });
            (state.session, seq, op, true)
        };
        if first_submission && matches!(op, ClientOp::Read(Consistency::Linearizable)) {
            self.safety.read_started(session, seq);
        }
        self.step_node(node, |n, out| {
            n.on_client_request(ClientRequest { session, seq, op }, out);
        });
        true
    }

    /// Routes a `ClientResponse` back to its lane.
    fn settle(&mut self, from: NodeId, session: SessionId, seq: u64, outcome: ClientOutcome) {
        let Some(&(gateway, lane)) = self.lane_of.get(&session) else {
            return;
        };
        if from != gateway {
            return; // late answer surfacing at a non-gateway replica
        }
        let state = self.lanes.get_mut(&(gateway, lane)).expect("lane exists");
        let matches_outstanding = state.outstanding.as_ref().is_some_and(|p| p.seq == seq);
        if !matches_outstanding || !outcome.is_terminal() {
            return; // stale answer, or a Retry/Redirect: keep waiting
        }
        let resolved = state.outstanding.take().expect("checked above");
        match outcome {
            ClientOutcome::Committed { index } => {
                self.safety.write_completed(self.cfg.ack_scope, index);
            }
            ClientOutcome::Duplicate { first_index } => {
                if first_index != wire::LogIndex::ZERO {
                    self.safety.write_completed(self.cfg.ack_scope, first_index);
                }
            }
            ClientOutcome::ReadOk {
                scope,
                commit_floor,
            } => {
                if matches!(resolved.op, ClientOp::Read(Consistency::Linearizable)) {
                    self.safety.read_completed(session, seq, scope, commit_floor);
                }
            }
            ClientOutcome::Registered { .. } | ClientOutcome::SessionExpired => {}
            ClientOutcome::Redirect { .. } | ClientOutcome::Retry => unreachable!("non-terminal"),
        }
    }

    /// Heals every fault, then drains the world to quiescence: delivers all
    /// messages, releases all gates, fires timers (advancing virtual time)
    /// up to a horizon, and periodically retries unresolved client ops.
    /// Returns the first violation — including the liveness verdict: at
    /// quiescence every placed op must have resolved and every gate
    /// continuation and decision reservation must have drained.
    pub fn quiesce(&mut self) -> Option<Violation> {
        self.cuts.clear();
        for node in self.stalled.iter().copied().collect::<Vec<_>>() {
            self.apply(&Choice::Unstall { node });
        }
        for node in self
            .slots
            .iter()
            .filter(|(_, s)| !s.up)
            .map(|(&id, _)| id)
            .collect::<Vec<_>>()
        {
            self.apply(&Choice::Recover { node });
        }

        let horizon = self.now + self.cfg.drain_horizon;
        let mut next_resubmit: BTreeMap<(NodeId, u32), SimTime> = self
            .lanes
            .keys()
            .map(|&key| (key, self.now))
            .collect();
        let mut drained = 0u64;

        loop {
            if let Some(v) = self.check_safety() {
                return Some(v);
            }
            drained += 1;
            if drained > self.cfg.max_drain_steps {
                return Some(Violation::Liveness(format!(
                    "drain exceeded {} steps without quiescing \
                     ({} messages in flight, {} lanes unresolved)",
                    self.cfg.max_drain_steps,
                    self.in_flight.len(),
                    self.unresolved_ops(),
                )));
            }

            if !self.in_flight.is_empty() {
                self.apply(&Choice::Deliver { slot: 0 });
                continue;
            }

            let gate = self.enabled().gates.first().copied();
            if let Some((node, token)) = gate {
                self.apply(&Choice::Release { node, token });
                continue;
            }

            let due_lane = self
                .lanes
                .iter()
                .find(|(key, lane)| lane.unresolved() && next_resubmit[key] <= self.now)
                .map(|(&key, _)| key);
            if let Some((node, lane)) = due_lane {
                next_resubmit.insert((node, lane), self.now + RESUBMIT_PERIOD);
                self.apply(&Choice::Client { node, lane });
                continue;
            }

            let next_timer = self
                .slots
                .iter()
                .flat_map(|(&id, slot)| {
                    slot.timers.iter().map(move |(&kind, &at)| (at, id, kind))
                })
                .min();
            if let Some((at, node, kind)) = next_timer {
                if at <= horizon {
                    self.apply(&Choice::Timer { node, kind });
                    continue;
                }
            }

            // Timers are past the horizon; if lanes are merely waiting out
            // their retry backoff, jump straight to it.
            let waiting = self
                .lanes
                .iter()
                .filter(|(_, lane)| lane.unresolved())
                .filter_map(|(key, _)| next_resubmit.get(key).copied())
                .min();
            if let Some(at) = waiting {
                if at <= horizon {
                    self.now = self.now.max(at);
                    continue;
                }
            }
            break;
        }

        if let Some(v) = self.check_safety() {
            return Some(v);
        }
        let mut wedged = Vec::new();
        let roster: Vec<(NodeId, &P)> = self.slots.iter().map(|(&id, s)| (id, &s.node)).collect();
        for ((node, lane), state) in &self.lanes {
            if let Some(p) = &state.outstanding {
                if !P::op_serviceable(&roster, &p.op) {
                    continue;
                }
                wedged.push(format!(
                    "client {node}/{lane} wedged at seq {} ({})",
                    p.seq,
                    op_name(&p.op),
                ));
            } else if state.issued < state.total {
                wedged.push(format!(
                    "client {node}/{lane} stuck before op {} of {}",
                    state.issued + 1,
                    state.total
                ));
            }
        }
        for (&id, slot) in &self.slots {
            let (pending, reserved) = slot.node.gate_debt();
            if pending > 0 || reserved > 0 {
                wedged.push(format!(
                    "node {id} gate debt: {pending} pending continuation(s), \
                     {reserved} leaked decision reservation(s)",
                ));
            }
        }
        if wedged.is_empty() {
            None
        } else {
            Some(Violation::Liveness(wedged.join("; ")))
        }
    }
}

fn op_name(op: &ClientOp) -> &'static str {
    match op {
        ClientOp::Write(_) => "write",
        ClientOp::Read(_) => "read",
        ClientOp::Register => "register",
    }
}

/// The lane's `i`-th scripted operation (deterministic, payload included).
fn script_op(cfg: &WorldConfig, node: NodeId, lane: u32, i: u32) -> ClientOp {
    if cfg.register_first {
        if i == 0 {
            return ClientOp::Register;
        }
        return data_op(cfg, node, lane, i - 1);
    }
    data_op(cfg, node, lane, i)
}

fn data_op(cfg: &WorldConfig, node: NodeId, lane: u32, j: u32) -> ClientOp {
    if cfg.read_every > 0 && (j + 1).is_multiple_of(cfg.read_every) {
        ClientOp::Read(Consistency::Linearizable)
    } else {
        ClientOp::Write(bytes::Bytes::from(format!("w{}-{lane}-{j}", node.as_u64())))
    }
}
