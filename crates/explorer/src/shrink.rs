//! Greedy schedule minimization (ddmin-lite).
//!
//! A failing exploration typically ends with thousands of decisions, most
//! of them irrelevant. The shrinker repeatedly deletes chunks of the
//! decision list — halving the chunk size from `len/2` down to single
//! choices — keeping a deletion whenever the replay still produces a
//! violation of the **same kind** (safety / lin / liveness). Choices whose
//! removal disables later choices are harmless: the world skips a choice
//! that names nothing currently enabled, so every candidate list is a valid
//! schedule.

use crate::oracle::Violation;
use crate::schedule::Choice;

/// Outcome of a shrink run.
#[derive(Clone, Debug)]
pub struct Shrunk {
    /// The minimized schedule.
    pub choices: Vec<Choice>,
    /// The violation the minimized schedule still produces.
    pub violation: Violation,
    /// Replays spent shrinking.
    pub replays: u32,
}

/// Minimizes `choices` under `replay`, which runs a candidate schedule
/// against a fresh world and returns its violation (if any). The initial
/// schedule must fail; its violation kind is the one preserved. At most
/// `max_replays` candidate replays are spent.
///
/// # Panics
///
/// Panics if the initial schedule does not produce a violation.
pub fn shrink(
    mut replay: impl FnMut(&[Choice]) -> Option<Violation>,
    choices: &[Choice],
    max_replays: u32,
) -> Shrunk {
    let mut spent = 0u32;
    let mut run = |candidate: &[Choice], spent: &mut u32| -> Option<Violation> {
        *spent += 1;
        replay(candidate)
    };
    let baseline = run(choices, &mut spent).expect("shrink needs a failing schedule");
    let kind = baseline.kind();
    let mut current: Vec<Choice> = choices.to_vec();
    let mut violation = baseline;

    let mut chunk = (current.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i < current.len() && spent < max_replays {
            let end = (i + chunk).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - i));
            candidate.extend_from_slice(&current[..i]);
            candidate.extend_from_slice(&current[end..]);
            match run(&candidate, &mut spent) {
                Some(v) if v.kind() == kind => {
                    current = candidate;
                    violation = v;
                    // Do not advance: the next chunk slid into place.
                }
                _ => i = end,
            }
        }
        if chunk == 1 || spent >= max_replays {
            break;
        }
        chunk = (chunk / 2).max(1);
    }

    Shrunk {
        choices: current,
        violation,
        replays: spent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wire::NodeId;

    /// A toy objective: the schedule "fails" iff it still contains both
    /// `Crash 1` and `Crash 2`, everything else is noise.
    fn toy_replay(candidate: &[Choice]) -> Option<Violation> {
        let has = |n: u64| {
            candidate
                .iter()
                .any(|c| matches!(c, Choice::Crash { node } if node.as_u64() == n))
        };
        (has(1) && has(2)).then(|| Violation::Liveness("crashed pair".into()))
    }

    #[test]
    fn shrinks_to_the_failing_core() {
        let mut noisy = Vec::new();
        for i in 0..40 {
            noisy.push(Choice::Deliver { slot: i });
            if i == 13 {
                noisy.push(Choice::Crash { node: NodeId(1) });
            }
            if i == 29 {
                noisy.push(Choice::Crash { node: NodeId(2) });
            }
        }
        let out = shrink(toy_replay, &noisy, 10_000);
        assert_eq!(
            out.choices,
            vec![
                Choice::Crash { node: NodeId(1) },
                Choice::Crash { node: NodeId(2) },
            ]
        );
        assert_eq!(out.violation.kind(), "liveness");
    }

    #[test]
    fn respects_the_replay_budget() {
        let noisy: Vec<Choice> = (0..64)
            .map(|i| Choice::Deliver { slot: i })
            .chain([
                Choice::Crash { node: NodeId(1) },
                Choice::Crash { node: NodeId(2) },
            ])
            .collect();
        let out = shrink(toy_replay, &noisy, 3);
        assert!(out.replays <= 3);
        // Whatever it managed, the result still fails.
        assert!(toy_replay(&out.choices).is_some());
    }
}
