//! The `explorer` CLI: hunt interleaving bugs, replay repro traces.
//!
//! ```text
//! explorer explore --proto gated --seeds 0..50 --steps 2000 \
//!     --strategy hammer --out crates/explorer/traces
//! explorer replay crates/explorer/traces/gated_noop_wedge.trace --expect-pass
//! ```
//!
//! `explore` runs one exploration per seed; on the first violation it
//! shrinks the schedule and (with `--out`) writes the minimized trace, then
//! exits non-zero. `replay` re-executes a trace bit-identically and reports
//! the verdict; `--expect-pass` / `--expect-fail` set the exit code for CI.

use explorer::{explore_setup, replay_setup, shrink_setup, strategy, Proto, Setup, Trace};

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("explore") => cmd_explore(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  explorer explore [--proto raft|fast|gated|craft|all] [--seeds A..B]
                   [--steps N] [--strategy random|delay|hammer|all]
                   [--sites N] [--clusters N] [--ops N] [--read-every N]
                   [--lanes N] [--register] [--shrink-budget N] [--out DIR]
  explorer replay FILE [--expect-pass|--expect-fail]";

fn parse_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_num(args: &[String], name: &str, default: u64) -> Result<u64, String> {
    match parse_flag(args, name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad {name} value {v:?}")),
    }
}

fn cmd_explore(args: &[String]) -> ExitCode {
    match run_explore(args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run_explore(args: &[String]) -> Result<ExitCode, String> {
    let protos: Vec<Proto> = match parse_flag(args, "--proto").as_deref() {
        None | Some("all") => vec![Proto::Raft, Proto::Fast, Proto::Gated, Proto::Craft],
        Some(p) => vec![Proto::parse(p).ok_or_else(|| format!("unknown proto {p:?}"))?],
    };
    let strategies: Vec<String> = match parse_flag(args, "--strategy").as_deref() {
        None | Some("all") => vec!["random".into(), "delay".into(), "hammer".into()],
        Some(s) => vec![s.to_string()],
    };
    let seeds = parse_flag(args, "--seeds").unwrap_or_else(|| "0..10".into());
    let (lo, hi) = seeds
        .split_once("..")
        .and_then(|(a, b)| Some((a.parse::<u64>().ok()?, b.parse::<u64>().ok()?)))
        .ok_or_else(|| format!("bad --seeds range {seeds:?} (want A..B)"))?;
    let steps = parse_num(args, "--steps", 1_000)?;
    let sites = parse_num(args, "--sites", 3)?;
    let clusters = parse_num(args, "--clusters", 2)?;
    let ops = parse_num(args, "--ops", 3)? as u32;
    let read_every = parse_num(args, "--read-every", 3)? as u32;
    let lanes = parse_num(args, "--lanes", 1)? as u32;
    let register = args.iter().any(|a| a == "--register");
    let shrink_budget = parse_num(args, "--shrink-budget", 3_000)? as u32;
    let out_dir = parse_flag(args, "--out");

    let mut explored = 0u64;
    for proto in &protos {
        let setup_base = Setup {
            proto: *proto,
            sites,
            clusters: if *proto == Proto::Craft { clusters } else { 0 },
            seed: 0,
            ops,
            read_every,
            lanes,
            register_first: register,
        };
        for strat_name in &strategies {
            for seed in lo..hi {
                let setup = Setup {
                    seed,
                    ..setup_base.clone()
                };
                let mut strat = strategy::by_name(strat_name, seed)
                    .ok_or_else(|| format!("unknown strategy {strat_name:?}"))?;
                let report = explore_setup(&setup, strat.as_mut(), steps);
                explored += 1;
                let Some(violation) = report.violation else {
                    continue;
                };
                println!(
                    "VIOLATION proto={} strategy={strat_name} seed={seed}: {violation}",
                    proto.name()
                );
                println!(
                    "  schedule: {} choices, {} commits checked — shrinking (budget {})...",
                    report.choices.len(),
                    report.commits_seen,
                    shrink_budget
                );
                let shrunk = shrink_setup(&setup, &report.choices, shrink_budget);
                println!(
                    "  minimized to {} choices in {} replays: {}",
                    shrunk.choices.len(),
                    shrunk.replays,
                    shrunk.violation
                );
                let trace = Trace {
                    setup: setup.clone(),
                    choices: shrunk.choices,
                };
                if let Some(dir) = &out_dir {
                    let file = format!(
                        "{dir}/{}_{}_{}_{}.trace",
                        proto.name(),
                        strat_name,
                        seed,
                        shrunk.violation.kind()
                    );
                    std::fs::write(&file, trace.to_text())
                        .map_err(|e| format!("writing {file}: {e}"))?;
                    println!("  wrote {file}");
                } else {
                    print!("{}", trace.to_text());
                }
                return Ok(ExitCode::FAILURE);
            }
        }
    }
    println!(
        "clean: {explored} exploration(s) across {} proto(s) x {} strategy(ies), seeds {lo}..{hi}, {steps} steps each — no violations",
        protos.len(),
        strategies.len()
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_replay(args: &[String]) -> ExitCode {
    let Some(file) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("replay: missing trace file\n{USAGE}");
        return ExitCode::from(2);
    };
    let expect_pass = args.iter().any(|a| a == "--expect-pass");
    let expect_fail = args.iter().any(|a| a == "--expect-fail");
    let text = match std::fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("replay: reading {file}: {e}");
            return ExitCode::from(2);
        }
    };
    let trace = match Trace::parse(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("replay: parsing {file}: {e}");
            return ExitCode::from(2);
        }
    };
    let verdict = replay_setup(&trace.setup, &trace.choices);
    match &verdict {
        Some(v) => println!(
            "{file}: {} choices on {} -> {v}",
            trace.choices.len(),
            trace.setup.proto.name()
        ),
        None => println!(
            "{file}: {} choices on {} -> pass (no violation)",
            trace.choices.len(),
            trace.setup.proto.name()
        ),
    }
    let failed = verdict.is_some();
    let ok = if expect_pass {
        !failed
    } else if expect_fail {
        failed
    } else {
        !failed
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
