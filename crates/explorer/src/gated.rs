//! Fast Raft with every log insert behind an explorer-controlled gate.
//!
//! [`GatedFastRaftNode`] runs the shared [`FastRaftEngine`] exactly the way
//! C-Raft's global level does — leader-forwarded proposals, every insert
//! deferred through a [`GateRecorder`] — but hands the *release* of each
//! deferred insert to the explorer instead of to intra-cluster consensus.
//! In C-Raft the gate resolves when a cluster locally commits a global state
//! entry; here it resolves when the schedule says so. That models the
//! intra-cluster replication delay as a fully adversarial scheduler, which
//! is precisely the setting where the gate-path liveness and double-assign
//! bugs live.

use consensus_core::{
    FastRaftEngine, FastRaftMessage, GateRecorder, GateToken, ProposalMode, TimerProfile,
};
use des::SimRng;
use raft::{Role, Timing};
use storage::StableState;
use wire::{
    Actions, ClientRequest, Configuration, ConsensusProtocol, LogScope, NodeId, TimerKind,
};

use std::collections::BTreeMap;

/// A Fast Raft site whose inserts all park until [`release_gate`] is called.
///
/// [`release_gate`]: GatedFastRaftNode::release_gate
#[derive(Debug)]
pub struct GatedFastRaftNode {
    engine: FastRaftEngine,
    gate: GateRecorder,
    /// Armed gate tokens, in token order (tokens are monotonically
    /// allocated, so token order is arming order).
    armed: BTreeMap<u64, ()>,
}

impl GatedFastRaftNode {
    /// Creates a member node; proposals use leader forwarding, like
    /// C-Raft's global level.
    pub fn new(id: NodeId, bootstrap: Configuration, timing: Timing, rng: SimRng) -> Self {
        let mut engine = FastRaftEngine::new(
            id,
            bootstrap,
            LogScope::Global,
            TimerProfile::Base,
            timing,
            rng,
        );
        engine.set_proposal_mode(ProposalMode::LeaderForward);
        GatedFastRaftNode {
            engine,
            gate: GateRecorder::new(),
            armed: BTreeMap::new(),
        }
    }

    /// Rebuilds a node from stable storage after a crash. Tokens armed
    /// before the crash die with the volatile state, exactly as a C-Raft
    /// leader's waiting map does.
    pub fn recover(
        id: NodeId,
        stable: &StableState,
        bootstrap: Configuration,
        timing: Timing,
        rng: SimRng,
    ) -> Self {
        let mut engine = FastRaftEngine::recover(
            id,
            stable.global.current_term,
            stable.global.voted_for,
            stable.global.log.clone(),
            stable.global.snapshot.clone(),
            bootstrap,
            LogScope::Global,
            TimerProfile::Base,
            timing,
            rng,
            stable.global.proposal_seq_floor,
        );
        engine.set_proposal_mode(ProposalMode::LeaderForward);
        GatedFastRaftNode {
            engine,
            gate: GateRecorder::new(),
            armed: BTreeMap::new(),
        }
    }

    /// Current role.
    pub fn role(&self) -> Role {
        self.engine.role()
    }

    /// Highest committed index.
    pub fn commit_index(&self) -> wire::LogIndex {
        self.engine.commit_index()
    }

    /// Direct engine access for assertions in tests.
    pub fn engine(&self) -> &FastRaftEngine {
        &self.engine
    }

    /// Tokens currently armed and awaiting release, oldest first.
    pub fn armed_tokens(&self) -> Vec<u64> {
        self.armed.keys().copied().collect()
    }

    /// Releases one armed gate: the parked insert resumes. Unknown or
    /// already-released tokens are ignored (a continuation may have been
    /// dropped by a role change since arming).
    pub fn release_gate(&mut self, token: u64, out: &mut Actions<FastRaftMessage>) {
        if self.armed.remove(&token).is_none() {
            return;
        }
        self.engine.gate_ready(GateToken(token), &mut self.gate, out);
        self.sync_armed();
    }

    /// `(pending gate continuations, outstanding decision reservations)` —
    /// both must be zero at quiescence.
    pub fn gate_debt(&self) -> (usize, usize) {
        (
            self.engine.pending_gate_count(),
            self.engine.gated_decision_count(),
        )
    }

    /// Moves freshly recorded deferrals into the armed set. Must run after
    /// every handler call (a release can itself defer further inserts).
    fn sync_armed(&mut self) {
        for req in self.gate.drain() {
            self.armed.insert(req.token.0, ());
        }
    }
}

impl ConsensusProtocol for GatedFastRaftNode {
    type Message = FastRaftMessage;

    fn id(&self) -> NodeId {
        self.engine.id()
    }

    fn on_message(
        &mut self,
        from: NodeId,
        msg: FastRaftMessage,
        out: &mut Actions<FastRaftMessage>,
    ) {
        self.engine.on_message(from, msg, &mut self.gate, out);
        self.sync_armed();
    }

    fn on_timer(&mut self, kind: TimerKind, out: &mut Actions<FastRaftMessage>) {
        if let Some(base) = TimerProfile::Base.unmap(kind) {
            self.engine.on_timer(base, &mut self.gate, out);
            self.sync_armed();
        }
    }

    fn on_client_request(&mut self, req: ClientRequest, out: &mut Actions<FastRaftMessage>) {
        self.engine.on_client_request(req, &mut self.gate, out);
        self.sync_armed();
    }

    fn bootstrap(&mut self, out: &mut Actions<FastRaftMessage>) {
        self.engine.bootstrap(out);
        self.sync_armed();
    }

    fn pending_applies(&self) -> u64 {
        self.engine.pending_applies()
    }

    fn drain_applies(&mut self, out: &mut Actions<FastRaftMessage>) {
        self.engine.drain_applies(out);
        self.sync_armed();
    }
}
