//! Deployment builders and the generic explore/replay/shrink drivers.
//!
//! A [`Setup`] fully names a deployment; this module turns it into a
//! [`World`] over the right protocol type and dispatches the three
//! operations every CLI command and test needs. Construction mirrors the
//! harness scenarios (same RNG split labels, same recovery wiring), so a
//! seed means the same thing here and there.

use consensus_core::{CRaftConfig, CRaftNode, FastRaftNode};
use des::SimRng;
use harness::SafetyChecker;
use raft::{RaftNode, Timing};
use wire::{ClusterId, Configuration, LogScope, NodeId};

use crate::gated::GatedFastRaftNode;
use crate::oracle::Violation;
use crate::schedule::{Choice, Proto, Setup};
use crate::shrink::{shrink, Shrunk};
use crate::strategy::Strategy;
use crate::world::{Explorable, World, WorldConfig};

/// What one exploration produced.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Every choice that actually applied, in order — the failing schedule
    /// when `violation` is set.
    pub choices: Vec<Choice>,
    /// The violation the run ended with, if any.
    pub violation: Option<Violation>,
    /// Commits the safety oracle checked.
    pub commits_seen: u64,
    /// Linearizable reads the lin oracle checked.
    pub reads_checked: u64,
}

/// Drives `strategy` against `world` for up to `max_steps` applied choices,
/// checking the safety oracle after every step, then runs the quiescence
/// drain and the liveness oracle.
pub fn explore_world<P: Explorable>(
    world: &mut World<P>,
    strategy: &mut dyn Strategy,
    max_steps: u64,
) -> RunReport {
    let mut choices = Vec::new();
    // Disabled picks burn attempts, not steps; the 4x margin keeps a
    // strategy that often picks disabled events from looping forever.
    let max_attempts = max_steps.saturating_mul(4);
    let mut attempts = 0u64;
    let mut violation = None;
    while (choices.len() as u64) < max_steps && attempts < max_attempts {
        attempts += 1;
        let view = world.enabled();
        let Some(choice) = strategy.choose(&view) else {
            break;
        };
        if world.apply(&choice) {
            choices.push(choice);
        }
        if let Some(v) = world.check_safety() {
            violation = Some(v);
            break;
        }
    }
    let violation = violation.or_else(|| world.quiesce());
    RunReport {
        choices,
        violation,
        commits_seen: world.safety().commits_seen(),
        reads_checked: world.safety().reads_checked(),
    }
}

/// Replays a schedule against `world`: applies each choice (silently
/// skipping ones no longer enabled), checking safety after every step, then
/// drains to quiescence under the liveness oracle.
pub fn replay_world<P: Explorable>(world: &mut World<P>, choices: &[Choice]) -> Option<Violation> {
    for choice in choices {
        world.apply(choice);
        if let Some(v) = world.check_safety() {
            return Some(v);
        }
    }
    world.quiesce()
}

fn world_cfg(s: &Setup, ack_scope: LogScope) -> WorldConfig {
    WorldConfig {
        ops: s.ops,
        read_every: s.read_every,
        lanes: s.lanes.max(1),
        register_first: s.register_first,
        ..WorldConfig::new(ack_scope)
    }
}

fn build_raft(s: &Setup) -> World<RaftNode> {
    let cfg: Configuration = (0..s.sites).map(NodeId).collect();
    let root = SimRng::seed_from_u64(s.seed);
    let timing = Timing::lan();
    let nodes: Vec<RaftNode> = (0..s.sites)
        .map(|i| RaftNode::new(NodeId(i), cfg.clone(), timing, root.split_indexed("raft-node", i)))
        .collect();
    let recover_rng = root.split("recover");
    World::new(
        nodes,
        world_cfg(s, LogScope::Global),
        SafetyChecker::new(),
        Box::new(move |id, stable| {
            RaftNode::recover(
                id,
                stable,
                cfg.clone(),
                timing,
                recover_rng.split_indexed("r", id.as_u64()),
            )
        }),
    )
}

fn build_fast(s: &Setup) -> World<FastRaftNode> {
    let cfg: Configuration = (0..s.sites).map(NodeId).collect();
    let root = SimRng::seed_from_u64(s.seed);
    let timing = Timing::lan();
    let nodes: Vec<FastRaftNode> = (0..s.sites)
        .map(|i| {
            FastRaftNode::new(NodeId(i), cfg.clone(), timing, root.split_indexed("fast-node", i))
        })
        .collect();
    let recover_rng = root.split("recover");
    World::new(
        nodes,
        world_cfg(s, LogScope::Global),
        SafetyChecker::new(),
        Box::new(move |id, stable| {
            FastRaftNode::recover(
                id,
                stable,
                cfg.clone(),
                timing,
                recover_rng.split_indexed("r", id.as_u64()),
            )
        }),
    )
}

fn build_gated(s: &Setup) -> World<GatedFastRaftNode> {
    let cfg: Configuration = (0..s.sites).map(NodeId).collect();
    let root = SimRng::seed_from_u64(s.seed);
    let timing = Timing::lan();
    let nodes: Vec<GatedFastRaftNode> = (0..s.sites)
        .map(|i| {
            GatedFastRaftNode::new(
                NodeId(i),
                cfg.clone(),
                timing,
                root.split_indexed("gated-node", i),
            )
        })
        .collect();
    let recover_rng = root.split("recover");
    World::new(
        nodes,
        world_cfg(s, LogScope::Global),
        SafetyChecker::new(),
        Box::new(move |id, stable| {
            GatedFastRaftNode::recover(
                id,
                stable,
                cfg.clone(),
                timing,
                recover_rng.split_indexed("r", id.as_u64()),
            )
        }),
    )
}

fn build_craft(s: &Setup) -> World<CRaftNode> {
    let clusters = s.clusters.max(1);
    assert_eq!(
        s.sites % clusters,
        0,
        "sites must divide evenly into clusters"
    );
    let per = s.sites / clusters;
    let (nodes, global_bootstrap) =
        consensus_core::build_deployment(clusters, per, CRaftConfig::paper, s.seed);
    let seed = s.seed;
    World::new(
        nodes,
        world_cfg(s, LogScope::Local),
        SafetyChecker::with_domains(move |n| n.as_u64() / per),
        Box::new(move |id, stable| {
            let cluster = id.as_u64() / per;
            let members: Configuration = (0..per).map(|i| NodeId(cluster * per + i)).collect();
            CRaftNode::recover(
                id,
                stable,
                members,
                global_bootstrap.clone(),
                CRaftConfig::paper(ClusterId(cluster)),
                SimRng::seed_from_u64(seed).split_indexed("craft-recover", id.as_u64()),
            )
        }),
    )
}

/// Explores the deployment named by `setup`.
pub fn explore_setup(setup: &Setup, strategy: &mut dyn Strategy, max_steps: u64) -> RunReport {
    match setup.proto {
        Proto::Raft => explore_world(&mut build_raft(setup), strategy, max_steps),
        Proto::Fast => explore_world(&mut build_fast(setup), strategy, max_steps),
        Proto::Gated => explore_world(&mut build_gated(setup), strategy, max_steps),
        Proto::Craft => explore_world(&mut build_craft(setup), strategy, max_steps),
    }
}

/// Replays `choices` against a fresh world built from `setup`.
pub fn replay_setup(setup: &Setup, choices: &[Choice]) -> Option<Violation> {
    match setup.proto {
        Proto::Raft => replay_world(&mut build_raft(setup), choices),
        Proto::Fast => replay_world(&mut build_fast(setup), choices),
        Proto::Gated => replay_world(&mut build_gated(setup), choices),
        Proto::Craft => replay_world(&mut build_craft(setup), choices),
    }
}

/// Minimizes a failing schedule for `setup`, preserving the violation kind.
pub fn shrink_setup(setup: &Setup, choices: &[Choice], max_replays: u32) -> Shrunk {
    shrink(|cand| replay_setup(setup, cand), choices, max_replays)
}
