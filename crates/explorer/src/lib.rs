//! # `explorer` — adversarial schedule exploration for the sans-IO protocols
//!
//! The harness (`crates/harness`) answers *"how fast is the protocol under
//! a realistic network?"*; this crate answers *"is there **any** feasible
//! interleaving that breaks it?"*. It drives the same sans-IO protocol
//! cores through explicitly chosen event orders:
//!
//! - a [`World`] holds the nodes plus explicit pools of pending messages,
//!   armed timers, armed insert gates, and client lanes — every step, a
//!   [`Strategy`] picks one enabled [`Choice`] (deliver/duplicate/drop a
//!   message, fire a timer, crash/recover a node, cut/heal a one-way link,
//!   stall/unstall a disk, release a gate, advance a client);
//! - three oracles watch every schedule ([`Violation`]): cross-site commit
//!   agreement and read linearizability after every step, and — once the
//!   schedule is drained to quiescence — a **liveness** oracle asserting
//!   every placed client op resolved and every gate continuation and
//!   decision reservation drained;
//! - a failing schedule is greedily minimized ([`shrink()`]) and written as a
//!   replayable text [`Trace`] that re-executes bit-identically (`explorer
//!   replay <file>`).
//!
//! Four deployments are explorable ([`Proto`]): classic Raft, Fast Raft,
//! full C-Raft, and *gated* Fast Raft — the engine in C-Raft's global-level
//! configuration with every insert parked behind an explorer-controlled
//! gate, putting the intra-cluster replication delay under adversarial
//! control. The gated world is where the historical gate-path bugs
//! (`traces/`) were found and is the sharpest tool for hunting new ones.
//!
//! # Examples
//!
//! ```
//! use explorer::{explore_setup, strategy::RandomWalk, Proto, Setup};
//!
//! let setup = Setup::small(Proto::Fast, 7);
//! let report = explore_setup(&setup, &mut RandomWalk::new(7), 300);
//! assert!(report.violation.is_none(), "{:?}", report.violation);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gated;
pub mod oracle;
pub mod schedule;
pub mod setup;
pub mod shrink;
pub mod strategy;
pub mod world;

pub use gated::GatedFastRaftNode;
pub use oracle::Violation;
pub use schedule::{Choice, Proto, Setup, Trace};
pub use setup::{explore_setup, explore_world, replay_setup, replay_world, shrink_setup, RunReport};
pub use shrink::{shrink, Shrunk};
pub use strategy::{by_name, DelayBounded, GateHammer, RandomWalk, Strategy};
pub use world::{Enabled, Envelope, Explorable, RecoveryFn, World, WorldConfig};
