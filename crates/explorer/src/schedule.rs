//! The schedule: a sequence of explorer decisions, serializable to a
//! replayable trace file.
//!
//! A trace is the complete recipe for one execution: a [`Setup`] header
//! naming the deployment (protocol, sites, seed, workload shape) followed by
//! one [`Choice`] per line. Replaying a trace rebuilds the world from the
//! header and applies the choices in order; because every source of
//! nondeterminism is either in the header's seed or in the choice list, the
//! replay is bit-identical to the run that produced it.
//!
//! The format is deliberately plain text — one decision per line, editable
//! by hand — so a minimized repro checked into the repository doubles as a
//! readable description of the failing interleaving.

use wire::{NodeId, TimerKind};

/// One explorer decision: which enabled event fires next.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Choice {
    /// Deliver the in-flight message at `slot` (any slot may be picked —
    /// delivering out of order *is* network reordering).
    Deliver {
        /// Index into the in-flight pool.
        slot: u32,
    },
    /// Clone the in-flight message at `slot` (bounded duplication).
    Duplicate {
        /// Index into the in-flight pool.
        slot: u32,
    },
    /// Silently discard the in-flight message at `slot` (message loss).
    Drop {
        /// Index into the in-flight pool.
        slot: u32,
    },
    /// Fire an armed timer: virtual time jumps to (at least) its deadline,
    /// so timers never fire early — late delivery of a timer is feasible
    /// (scheduling delay), early firing would be a clock violation.
    Timer {
        /// The timer's owner.
        node: NodeId,
        /// Which timer.
        kind: TimerKind,
    },
    /// Advance one client lane at its gateway: issue its next scripted
    /// operation, or resubmit the outstanding one (client-side retry).
    Client {
        /// The gateway node.
        node: NodeId,
        /// Which client lane at that gateway.
        lane: u32,
    },
    /// Crash a node (volatile state lost; stable storage survives).
    Crash {
        /// The victim.
        node: NodeId,
    },
    /// Recover a crashed node from stable storage.
    Recover {
        /// The node to rebuild.
        node: NodeId,
    },
    /// Cut the `from → to` direction only (asymmetric partition).
    Cut {
        /// Sender side of the cut.
        from: NodeId,
        /// Receiver side of the cut.
        to: NodeId,
    },
    /// Heal one directed cut.
    HealLink {
        /// Sender side.
        from: NodeId,
        /// Receiver side.
        to: NodeId,
    },
    /// Heal every partition.
    HealAll,
    /// Stall the node's disk: steps that persist hold their outgoing
    /// messages (write-ahead) until the stall lifts.
    Stall {
        /// The node whose disk stalls.
        node: NodeId,
    },
    /// Lift a persist stall, releasing the held messages.
    Unstall {
        /// The stalled node.
        node: NodeId,
    },
    /// Release an armed insert gate (the "intra-cluster replication
    /// finished" signal, delivered in an order of the explorer's choosing).
    Release {
        /// The gate's owner.
        node: NodeId,
        /// The gate token to release.
        token: u64,
    },
}

/// Which protocol deployment a trace drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Proto {
    /// Classic Raft.
    Raft,
    /// Fast Raft (ungated, broadcast proposals).
    Fast,
    /// Fast Raft with every insert behind an explorer-controlled gate and
    /// leader-forwarded proposals — C-Raft's global level in isolation,
    /// with the intra-cluster replication delay under adversarial control.
    Gated,
    /// Full two-level C-Raft.
    Craft,
}

impl Proto {
    /// Parse from the trace-header token.
    pub fn parse(s: &str) -> Option<Proto> {
        Some(match s {
            "raft" => Proto::Raft,
            "fast" => Proto::Fast,
            "gated" => Proto::Gated,
            "craft" => Proto::Craft,
            _ => return None,
        })
    }

    /// The trace-header token.
    pub fn name(self) -> &'static str {
        match self {
            Proto::Raft => "raft",
            Proto::Fast => "fast",
            Proto::Gated => "gated",
            Proto::Craft => "craft",
        }
    }
}

/// The deployment a schedule runs against — everything needed to rebuild
/// the world deterministically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Setup {
    /// Which protocol.
    pub proto: Proto,
    /// Number of sites (for [`Proto::Craft`]: total across clusters).
    pub sites: u64,
    /// Number of clusters (ignored except for [`Proto::Craft`]).
    pub clusters: u64,
    /// Seed for node RNGs.
    pub seed: u64,
    /// Scripted data operations per client lane.
    pub ops: u32,
    /// Every `read_every`-th data op is a linearizable read (0 = writes
    /// only).
    pub read_every: u32,
    /// Client lanes (independent sessions) per gateway node.
    pub lanes: u32,
    /// Each lane's first op is an explicit session registration.
    pub register_first: bool,
}

impl Setup {
    /// A 3-site deployment with 2 writes per client — the smallest
    /// interesting world.
    pub fn small(proto: Proto, seed: u64) -> Setup {
        Setup {
            proto,
            sites: 3,
            clusters: if proto == Proto::Craft { 1 } else { 0 },
            seed,
            ops: 2,
            read_every: 0,
            lanes: 1,
            register_first: false,
        }
    }
}

/// A complete replayable schedule: setup header plus decision list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// The deployment.
    pub setup: Setup,
    /// The decisions, in order.
    pub choices: Vec<Choice>,
}

const MAGIC: &str = "explorer-trace v1";

fn timer_name(kind: TimerKind) -> &'static str {
    match kind {
        TimerKind::Election => "election",
        TimerKind::Heartbeat => "heartbeat",
        TimerKind::LeaderTick => "leadertick",
        TimerKind::ProposalRetry => "proposalretry",
        TimerKind::JoinRetry => "joinretry",
        TimerKind::BatchFlush => "batchflush",
        TimerKind::GlobalElection => "gelection",
        TimerKind::GlobalHeartbeat => "gheartbeat",
        TimerKind::GlobalLeaderTick => "gleadertick",
        TimerKind::GlobalProposalRetry => "gproposalretry",
        TimerKind::GlobalJoinRetry => "gjoinretry",
    }
}

fn timer_from_name(s: &str) -> Option<TimerKind> {
    Some(match s {
        "election" => TimerKind::Election,
        "heartbeat" => TimerKind::Heartbeat,
        "leadertick" => TimerKind::LeaderTick,
        "proposalretry" => TimerKind::ProposalRetry,
        "joinretry" => TimerKind::JoinRetry,
        "batchflush" => TimerKind::BatchFlush,
        "gelection" => TimerKind::GlobalElection,
        "gheartbeat" => TimerKind::GlobalHeartbeat,
        "gleadertick" => TimerKind::GlobalLeaderTick,
        "gproposalretry" => TimerKind::GlobalProposalRetry,
        "gjoinretry" => TimerKind::GlobalJoinRetry,
        _ => return None,
    })
}

impl Trace {
    /// Serializes to the line-based trace format.
    pub fn to_text(&self) -> String {
        let s = &self.setup;
        let mut text = format!(
            "{MAGIC}\nproto={} sites={} clusters={} seed={} ops={} read-every={} lanes={} register={}\n",
            s.proto.name(),
            s.sites,
            s.clusters,
            s.seed,
            s.ops,
            s.read_every,
            s.lanes,
            u8::from(s.register_first),
        );
        for c in &self.choices {
            let line = match c {
                Choice::Deliver { slot } => format!("deliver {slot}"),
                Choice::Duplicate { slot } => format!("dup {slot}"),
                Choice::Drop { slot } => format!("drop {slot}"),
                Choice::Timer { node, kind } => {
                    format!("timer {} {}", node.as_u64(), timer_name(*kind))
                }
                Choice::Client { node, lane } => format!("client {} {lane}", node.as_u64()),
                Choice::Crash { node } => format!("crash {}", node.as_u64()),
                Choice::Recover { node } => format!("recover {}", node.as_u64()),
                Choice::Cut { from, to } => format!("cut {} {}", from.as_u64(), to.as_u64()),
                Choice::HealLink { from, to } => {
                    format!("heal {} {}", from.as_u64(), to.as_u64())
                }
                Choice::HealAll => "healall".to_string(),
                Choice::Stall { node } => format!("stall {}", node.as_u64()),
                Choice::Unstall { node } => format!("unstall {}", node.as_u64()),
                Choice::Release { node, token } => {
                    format!("release {} {token}", node.as_u64())
                }
            };
            text.push_str(&line);
            text.push('\n');
        }
        text
    }

    /// Parses the line-based trace format. Returns a description of the
    /// first malformed line on failure.
    pub fn parse(text: &str) -> Result<Trace, String> {
        let mut lines = text.lines().enumerate();
        let (_, magic) = lines.next().ok_or("empty trace")?;
        if magic.trim() != MAGIC {
            return Err(format!("bad magic: {magic:?} (want {MAGIC:?})"));
        }
        let (_, header) = lines.next().ok_or("missing setup header")?;
        let setup = parse_setup(header)?;
        let mut choices = Vec::new();
        for (n, line) in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            choices.push(parse_choice(line).ok_or_else(|| format!("line {}: {line:?}", n + 1))?);
        }
        Ok(Trace { setup, choices })
    }
}

fn parse_setup(header: &str) -> Result<Setup, String> {
    let mut proto = None;
    let (mut sites, mut clusters, mut seed) = (0u64, 0u64, 0u64);
    let (mut ops, mut read_every, mut lanes) = (0u32, 0u32, 1u32);
    let mut register_first = false;
    for kv in header.split_whitespace() {
        let (k, v) = kv.split_once('=').ok_or_else(|| format!("bad header token {kv:?}"))?;
        let bad = || format!("bad header value {kv:?}");
        match k {
            "proto" => proto = Some(Proto::parse(v).ok_or_else(bad)?),
            "sites" => sites = v.parse().map_err(|_| bad())?,
            "clusters" => clusters = v.parse().map_err(|_| bad())?,
            "seed" => seed = v.parse().map_err(|_| bad())?,
            "ops" => ops = v.parse().map_err(|_| bad())?,
            "read-every" => read_every = v.parse().map_err(|_| bad())?,
            "lanes" => lanes = v.parse().map_err(|_| bad())?,
            "register" => register_first = v == "1",
            _ => return Err(format!("unknown header key {k:?}")),
        }
    }
    Ok(Setup {
        proto: proto.ok_or("header missing proto")?,
        sites,
        clusters,
        seed,
        ops,
        read_every,
        lanes,
        register_first,
    })
}

fn parse_choice(line: &str) -> Option<Choice> {
    let mut parts = line.split_whitespace();
    let verb = parts.next()?;
    let mut num = || parts.next()?.parse::<u64>().ok();
    Some(match verb {
        "deliver" => Choice::Deliver {
            slot: num()? as u32,
        },
        "dup" => Choice::Duplicate {
            slot: num()? as u32,
        },
        "drop" => Choice::Drop {
            slot: num()? as u32,
        },
        "timer" => {
            let node = NodeId(num()?);
            let kind = timer_from_name(parts.next()?)?;
            Choice::Timer { node, kind }
        }
        "client" => Choice::Client {
            node: NodeId(num()?),
            lane: num()? as u32,
        },
        "crash" => Choice::Crash { node: NodeId(num()?) },
        "recover" => Choice::Recover { node: NodeId(num()?) },
        "cut" => Choice::Cut {
            from: NodeId(num()?),
            to: NodeId(num()?),
        },
        "heal" => Choice::HealLink {
            from: NodeId(num()?),
            to: NodeId(num()?),
        },
        "healall" => Choice::HealAll,
        "stall" => Choice::Stall { node: NodeId(num()?) },
        "unstall" => Choice::Unstall { node: NodeId(num()?) },
        "release" => Choice::Release {
            node: NodeId(num()?),
            token: num()?,
        },
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_round_trips() {
        let trace = Trace {
            setup: Setup {
                proto: Proto::Gated,
                sites: 3,
                clusters: 0,
                seed: 41,
                ops: 2,
                read_every: 2,
                lanes: 2,
                register_first: true,
            },
            choices: vec![
                Choice::Client { node: NodeId(0), lane: 1 },
                Choice::Deliver { slot: 3 },
                Choice::Duplicate { slot: 0 },
                Choice::Drop { slot: 1 },
                Choice::Timer { node: NodeId(2), kind: TimerKind::Election },
                Choice::Timer { node: NodeId(1), kind: TimerKind::GlobalHeartbeat },
                Choice::Crash { node: NodeId(1) },
                Choice::Recover { node: NodeId(1) },
                Choice::Cut { from: NodeId(0), to: NodeId(2) },
                Choice::HealLink { from: NodeId(0), to: NodeId(2) },
                Choice::HealAll,
                Choice::Stall { node: NodeId(2) },
                Choice::Unstall { node: NodeId(2) },
                Choice::Release { node: NodeId(0), token: 7 },
            ],
        };
        let text = trace.to_text();
        let back = Trace::parse(&text).expect("parse");
        assert_eq!(back, trace);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "explorer-trace v1\nproto=fast sites=3 clusters=0 seed=1 ops=1 read-every=0 lanes=1 register=0\n\n# a comment\ndeliver 0\n";
        let t = Trace::parse(text).expect("parse");
        assert_eq!(t.choices, vec![Choice::Deliver { slot: 0 }]);
    }

    #[test]
    fn malformed_lines_are_reported() {
        let text = "explorer-trace v1\nproto=fast sites=3 clusters=0 seed=1 ops=1 read-every=0 lanes=1 register=0\nfrobnicate 7\n";
        assert!(Trace::parse(text).is_err());
    }

    #[test]
    fn every_timer_kind_round_trips() {
        for kind in [
            TimerKind::Election,
            TimerKind::Heartbeat,
            TimerKind::LeaderTick,
            TimerKind::ProposalRetry,
            TimerKind::JoinRetry,
            TimerKind::BatchFlush,
            TimerKind::GlobalElection,
            TimerKind::GlobalHeartbeat,
            TimerKind::GlobalLeaderTick,
            TimerKind::GlobalProposalRetry,
            TimerKind::GlobalJoinRetry,
        ] {
            assert_eq!(timer_from_name(timer_name(kind)), Some(kind));
        }
    }
}
