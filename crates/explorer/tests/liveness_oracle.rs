//! The liveness oracle, tested against itself.
//!
//! A liveness oracle that never fires is worse than none — these tests
//! drive deliberately broken toy protocols through [`explorer::World`] and
//! assert the oracle trips for the right reason, then drive deliberately
//! *noisy but correct* protocols and assert quiescence detection is not
//! fooled by them (timer treadmills, far-future armed timers such as
//! lease expiries, gates that drain late).

use explorer::{explore_world, Explorable, World, WorldConfig};
use harness::SafetyChecker;
use wire::{
    Actions, ClientOutcome, ClientRequest, ConsensusProtocol, LogIndex, LogScope, Message, NodeId,
    Observation, TimerKind,
};

use des::SimDuration;

/// A trivially cloneable wire message for toy protocols.
#[derive(Clone, Debug)]
struct Ping;

impl Message for Ping {
    fn wire_size(&self) -> usize {
        1
    }
}

/// Answers every client op immediately — except, when `swallow_from` is
/// set, ops with `seq >= swallow_from`, which it silently drops forever:
/// a deliberate liveness wedge. Optionally re-arms an election timer on
/// every fire (a treadmill the drain must bound by its horizon) and arms
/// one far-future timer at bootstrap (an armed lease expiry must not be
/// mistaken for pending work).
struct Toy {
    id: NodeId,
    swallow_from: Option<u64>,
    treadmill: bool,
    far_timer: bool,
    committed: u64,
    leaked_reservations: usize,
}

impl Toy {
    fn answering(id: NodeId) -> Self {
        Toy {
            id,
            swallow_from: None,
            treadmill: false,
            far_timer: false,
            committed: 0,
            leaked_reservations: 0,
        }
    }

    fn swallowing(id: NodeId, from_seq: u64) -> Self {
        Toy {
            swallow_from: Some(from_seq),
            ..Toy::answering(id)
        }
    }
}

impl ConsensusProtocol for Toy {
    type Message = Ping;

    fn id(&self) -> NodeId {
        self.id
    }

    fn on_message(&mut self, _from: NodeId, _msg: Ping, _out: &mut Actions<Ping>) {}

    fn on_timer(&mut self, kind: TimerKind, out: &mut Actions<Ping>) {
        if self.treadmill && kind == TimerKind::Election {
            // Re-arms forever; quiescence must still be reached once the
            // deadline passes the drain horizon.
            out.set_timer(TimerKind::Election, SimDuration::from_millis(10));
        }
    }

    fn on_client_request(&mut self, req: ClientRequest, out: &mut Actions<Ping>) {
        if self.swallow_from.is_some_and(|from| req.seq >= from) {
            return; // The wedge: no response, ever.
        }
        self.committed += 1;
        out.observe(Observation::ClientResponse {
            session: req.session,
            seq: req.seq,
            outcome: ClientOutcome::Committed {
                index: LogIndex(self.committed),
            },
        });
    }

    fn bootstrap(&mut self, out: &mut Actions<Ping>) {
        if self.treadmill {
            out.set_timer(TimerKind::Election, SimDuration::from_millis(10));
        }
        if self.far_timer {
            // Models an armed lease: a deadline far past the drain horizon.
            out.set_timer(TimerKind::Heartbeat, SimDuration::from_secs(3_600));
        }
    }
}

impl Explorable for Toy {
    fn gate_debt(&self) -> (usize, usize) {
        (0, self.leaked_reservations)
    }
}

fn world_of(nodes: Vec<Toy>, ops: u32) -> World<Toy> {
    let cfg = WorldConfig {
        ops,
        read_every: u32::MAX, // writes only: toys have no read path
        ..WorldConfig::new(LogScope::Global)
    };
    World::new(
        nodes,
        cfg,
        SafetyChecker::new(),
        Box::new(|id, _stable| Toy::answering(id)),
    )
}

/// A no-op strategy: the oracle must fire from the drain alone.
struct Idle;

impl explorer::Strategy for Idle {
    fn choose(&mut self, _enabled: &explorer::Enabled) -> Option<explorer::Choice> {
        None
    }
}

#[test]
fn oracle_fires_on_swallowed_op() {
    let mut world = world_of(vec![Toy::swallowing(NodeId(0), 2)], 3);
    let report = explore_world(&mut world, &mut Idle, 10);
    let v = report.violation.expect("swallowed op must trip the oracle");
    assert_eq!(v.kind(), "liveness", "wrong oracle: {v}");
    assert!(
        v.message().contains("wedged at seq 2"),
        "verdict must name the wedged op: {v}"
    );
}

#[test]
fn oracle_names_every_wedged_lane() {
    let nodes = vec![Toy::swallowing(NodeId(0), 1), Toy::swallowing(NodeId(1), 2)];
    let mut world = world_of(nodes, 2);
    let report = explore_world(&mut world, &mut Idle, 10);
    let v = report.violation.expect("both lanes wedge");
    assert!(v.message().contains("client n0/0"), "{v}");
    assert!(v.message().contains("client n1/0"), "{v}");
}

#[test]
fn oracle_fires_on_leaked_gate_reservation() {
    let mut leaky = Toy::answering(NodeId(0));
    leaky.leaked_reservations = 1;
    let mut world = world_of(vec![leaky], 2);
    let report = explore_world(&mut world, &mut Idle, 10);
    let v = report.violation.expect("leaked reservation must trip");
    assert_eq!(v.kind(), "liveness");
    assert!(
        v.message().contains("1 leaked decision reservation"),
        "verdict must name the gate debt: {v}"
    );
}

#[test]
fn timer_treadmill_does_not_defeat_quiescence() {
    let mut node = Toy::answering(NodeId(0));
    node.treadmill = true;
    let mut world = world_of(vec![node], 2);
    let report = explore_world(&mut world, &mut Idle, 10);
    assert!(
        report.violation.is_none(),
        "a self-rearming timer is not pending work: {:?}",
        report.violation
    );
}

#[test]
fn far_future_armed_timer_is_not_pending_work() {
    let mut node = Toy::answering(NodeId(0));
    node.far_timer = true;
    let mut world = world_of(vec![node], 2);
    let report = explore_world(&mut world, &mut Idle, 10);
    assert!(
        report.violation.is_none(),
        "an armed lease-style deadline past the horizon must not wedge \
         or trip the oracle: {:?}",
        report.violation
    );
}

#[test]
fn clean_toy_is_clean() {
    let mut world = world_of(vec![Toy::answering(NodeId(0)), Toy::answering(NodeId(1))], 3);
    let report = explore_world(&mut world, &mut Idle, 10);
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert_eq!(world.unresolved_ops(), 0);
}
