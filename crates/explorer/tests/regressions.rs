//! Replays the checked-in minimized reproducer traces.
//!
//! Each trace in `crates/explorer/traces/` was found by the explorer
//! against a real bug, minimized by [`explorer::shrink`], and checked in
//! once the fix landed. Replays are bit-identical — same setup header,
//! same choice sequence, same virtual-time evolution — so a regression
//! flips the verdict from pass back to the original violation.

use explorer::{replay_setup, Trace};

fn replay_checked_in(name: &str) -> Option<explorer::Violation> {
    let path = format!("{}/traces/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    let trace = Trace::parse(&text).unwrap_or_else(|e| panic!("parsing {path}: {e}"));
    replay_setup(&trace.setup, &trace.choices)
}

/// The gated-no-op liveness wedge: a re-elected leader's gated term no-op
/// parked a `LeaderAppend` continuation whose release never drained its
/// `gated_decisions` reservation, holding `leader_log_settled()` false
/// forever — wedging reconfig, read nudges, and (under LeaderForward)
/// every forwarded proposal. Found by `explore --proto gated --strategy
/// hammer` at seed 1; fixed in `gate_ready`'s LeaderAppend arm.
#[test]
fn gated_noop_wedge_stays_fixed() {
    let v = replay_checked_in("gated_noop_wedge.trace");
    assert!(v.is_none(), "gated no-op wedge regressed: {}", v.unwrap());
}

/// The double-assign divergence the wedge masked: a forwarded proposal's
/// deferred insert reserved no slot, so `leader_log_settled()` stayed true
/// and the read nudge (or a reconfig) could claim the same index — two
/// same-term entries racing for one slot, the second release overwriting
/// the first after it replicated. Found by `explore --proto gated
/// --strategy random` at seed 39 (with the no-op fix already applied —
/// the wedge had to fall first); fixed by reserving the slot in
/// `leader_accept_forwarded`'s Defer arm.
#[test]
fn gated_double_assign_stays_fixed() {
    let v = replay_checked_in("gated_double_assign.trace");
    assert!(v.is_none(), "double-assign divergence regressed: {}", v.unwrap());
}

/// The hole-election divergence: gated inserts can complete out of order,
/// so a node's `lastLeaderIndex` advances past a slot whose insert is
/// still pending — a hole holding, at other nodes, a *committed* entry.
/// The §IV-C up-to-dateness check compared raw `lastLeaderIndex`, so such
/// a node could win an election and its decision loop would re-fill the
/// hole with a different entry: two entries committed at one index. Found
/// by `explore --proto gated --strategy hammer` at seed 4 (ops 3,
/// read-every 2 — the CI smoke shape, with both earlier gated fixes
/// applied); fixed by comparing votes on `leader_coverage()`, the top of
/// the dense leader-approved prefix that acked matchIndexes actually
/// certify.
#[test]
fn gated_hole_election_stays_fixed() {
    let v = replay_checked_in("gated_hole_election.trace");
    assert!(v.is_none(), "hole-election divergence regressed: {}", v.unwrap());
}
