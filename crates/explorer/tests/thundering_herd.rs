//! Thundering-herd session reconnect, under the liveness oracle.
//!
//! The shape: every client lane opens with an explicit `Register`, the
//! network is fully partitioned before any of them can land, leadership
//! churns behind the cuts, and then everything heals at once. All the
//! registrations and their first data ops retry together the moment the
//! partition lifts — the worst reconnect storm a session layer faces.
//! The quiescence drain's liveness oracle demands that every lane's
//! registration *and* every scripted op resolve; a session table that
//! loses a registration under the herd, or a dedup path that wedges a
//! resubmitted first op, fails these tests.

use explorer::{replay_setup, Choice, Proto, Setup};
use wire::{NodeId, TimerKind};

/// Scripts the herd: cut every directed link, churn elections behind the
/// cuts, fire every lane's opening op into the partitioned network, then
/// heal everything at once and let the drain resolve the storm.
fn herd_schedule(sites: u64, lanes: u32) -> Vec<Choice> {
    let mut choices = Vec::new();
    for from in 0..sites {
        for to in 0..sites {
            if from != to {
                choices.push(Choice::Cut {
                    from: NodeId(from),
                    to: NodeId(to),
                });
            }
        }
    }
    // Term churn behind the partition: candidacies that cannot win, so the
    // healed cluster must first converge on a term before serving the herd.
    for n in 0..sites {
        choices.push(Choice::Timer {
            node: NodeId(n),
            kind: TimerKind::Election,
        });
    }
    // Every lane at every gateway opens its session into the void.
    for n in 0..sites {
        for lane in 0..lanes {
            choices.push(Choice::Client {
                node: NodeId(n),
                lane,
            });
        }
    }
    choices.push(Choice::HealAll);
    choices
}

fn herd_setup(proto: Proto, seed: u64) -> Setup {
    Setup {
        proto,
        sites: 3,
        clusters: 0,
        seed,
        ops: 2,
        read_every: 0,
        lanes: 3,
        register_first: true,
    }
}

#[test]
fn fast_raft_herd_resolves_after_heal() {
    for seed in [1, 5, 9] {
        let setup = herd_setup(Proto::Fast, seed);
        let v = replay_setup(&setup, &herd_schedule(setup.sites, setup.lanes));
        assert!(
            v.is_none(),
            "seed {seed}: reconnect herd left unresolved work: {}",
            v.unwrap()
        );
    }
}

/// The same storm with every insert behind an explorer-controlled gate
/// (C-Raft's global level in isolation): the healed leader's term no-op,
/// the nine forwarded registrations, and their data ops all queue behind
/// gates that release in schedule order. Pre-fix, the no-op's leaked
/// reservation would have wedged the entire herd behind a
/// never-settling leader log.
#[test]
fn gated_herd_resolves_after_heal() {
    for seed in [1, 5] {
        let setup = herd_setup(Proto::Gated, seed);
        let v = replay_setup(&setup, &herd_schedule(setup.sites, setup.lanes));
        assert!(
            v.is_none(),
            "seed {seed}: gated reconnect herd left unresolved work: {}",
            v.unwrap()
        );
    }
}
