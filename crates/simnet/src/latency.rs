//! One-way message latency models.
//!
//! All models sample a per-message one-way delay. The paper's environment
//! (§VI) had sub-millisecond intra-region latency and 10–300 ms round trips
//! between AWS regions; [`RegionLatency::aws_global`] reproduces that
//! envelope.

use des::{SimDuration, SimRng};
use wire::NodeId;

use crate::{RegionId, Topology};

/// Samples one-way network delay for a message.
pub trait LatencyModel {
    /// The delay for a message from `from` to `to`.
    fn sample(&mut self, from: NodeId, to: NodeId, rng: &mut SimRng) -> SimDuration;
}

/// A fixed delay for every message.
#[derive(Clone, Copy, Debug)]
pub struct ConstantLatency(pub SimDuration);

impl LatencyModel for ConstantLatency {
    fn sample(&mut self, _from: NodeId, _to: NodeId, _rng: &mut SimRng) -> SimDuration {
        self.0
    }
}

/// Uniformly distributed delay in `[lo, hi]`, the same for every link.
#[derive(Clone, Copy, Debug)]
pub struct UniformLatency {
    /// Minimum one-way delay.
    pub lo: SimDuration,
    /// Maximum one-way delay.
    pub hi: SimDuration,
}

impl UniformLatency {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: SimDuration, hi: SimDuration) -> Self {
        assert!(lo <= hi, "empty latency range");
        UniformLatency { lo, hi }
    }
}

impl LatencyModel for UniformLatency {
    fn sample(&mut self, _from: NodeId, _to: NodeId, rng: &mut SimRng) -> SimDuration {
        rng.duration_between(self.lo, self.hi)
    }
}

/// Region-aware latency: a base one-way delay per region pair, multiplied by
/// symmetric jitter. Intra-region delays use a dedicated (much smaller) base.
#[derive(Clone, Debug)]
pub struct RegionLatency {
    topology: Topology,
    /// Base one-way delay between distinct regions, indexed `[from][to]`.
    inter_base: Vec<Vec<SimDuration>>,
    /// Base one-way delay within a region.
    intra_base: SimDuration,
    /// Symmetric jitter fraction applied to every sample (`0.0..=1.0`).
    jitter: f64,
    /// Delay used when either endpoint is unplaced (conservative default).
    unplaced: SimDuration,
}

impl RegionLatency {
    /// Creates a region-aware model.
    ///
    /// `inter_base[i][j]` is the base one-way delay from region `i` to
    /// region `j`; the diagonal is ignored in favour of `intra_base`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square with one row per region, or if
    /// `jitter` is outside `0.0..=1.0`.
    pub fn new(
        topology: Topology,
        inter_base: Vec<Vec<SimDuration>>,
        intra_base: SimDuration,
        jitter: f64,
    ) -> Self {
        let n = topology.region_count();
        assert_eq!(inter_base.len(), n, "matrix rows != region count");
        for row in &inter_base {
            assert_eq!(row.len(), n, "matrix not square");
        }
        assert!((0.0..=1.0).contains(&jitter), "jitter out of range");
        RegionLatency {
            topology,
            inter_base,
            intra_base,
            jitter,
            unplaced: SimDuration::from_millis(50),
        }
    }

    /// The paper's evaluation environment: four regions (North America,
    /// South America, Europe, Asia) with one-way delays chosen so round
    /// trips span roughly 10–300 ms, and sub-millisecond intra-region
    /// delay. `extra_regions` appends more regions (reusing the most
    /// distant row) so experiments can use up to 10 clusters as in Fig. 5.
    pub fn aws_global(topology: Topology) -> Self {
        let n = topology.region_count();
        let ms = SimDuration::from_millis;
        // One-way base delays between the four canonical regions (ms):
        //        NA   SA    EU    AS
        // NA  [   -,  60,   45,   85 ]
        // SA  [  60,   -,   95,  150 ]
        // EU  [  45,  95,    -,  120 ]
        // AS  [  85, 150,  120,    - ]
        let canon = [
            [0u64, 60, 45, 85],
            [60, 0, 95, 150],
            [45, 95, 0, 120],
            [85, 150, 120, 0],
        ];
        let mut matrix = vec![vec![SimDuration::ZERO; n]; n];
        for (i, row) in matrix.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                if i == j {
                    continue;
                }
                // Regions beyond the canonical four reuse the canonical
                // pattern shifted, keeping delays in the 45–150 ms band.
                let a = i % 4;
                let b = j % 4;
                let base = if a == b { 55 } else { canon[a][b] };
                *cell = ms(base);
            }
        }
        RegionLatency::new(topology, matrix, SimDuration::from_micros(250), 0.10)
    }

    /// The topology this model consults.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    fn base_for(&self, from: Option<RegionId>, to: Option<RegionId>) -> SimDuration {
        match (from, to) {
            (Some(a), Some(b)) if a == b => self.intra_base,
            (Some(a), Some(b)) => self.inter_base[a.as_usize()][b.as_usize()],
            _ => self.unplaced,
        }
    }
}

impl LatencyModel for RegionLatency {
    fn sample(&mut self, from: NodeId, to: NodeId, rng: &mut SimRng) -> SimDuration {
        let base = self.base_for(self.topology.region_of(from), self.topology.region_of(to));
        rng.jittered(base, self.jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(1)
    }

    #[test]
    fn constant_is_constant() {
        let mut m = ConstantLatency(SimDuration::from_millis(7));
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(
                m.sample(NodeId(1), NodeId(2), &mut r),
                SimDuration::from_millis(7)
            );
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let lo = SimDuration::from_millis(1);
        let hi = SimDuration::from_millis(3);
        let mut m = UniformLatency::new(lo, hi);
        let mut r = rng();
        for _ in 0..1000 {
            let d = m.sample(NodeId(1), NodeId(2), &mut r);
            assert!(d >= lo && d <= hi);
        }
    }

    #[test]
    fn region_model_intra_vs_inter() {
        let mut t = Topology::new();
        let na = t.add_region("na");
        let eu = t.add_region("eu");
        t.place(NodeId(1), na);
        t.place(NodeId(2), na);
        t.place(NodeId(3), eu);
        let mut m = RegionLatency::aws_global(t);
        let mut r = rng();
        for _ in 0..200 {
            let intra = m.sample(NodeId(1), NodeId(2), &mut r);
            let inter = m.sample(NodeId(1), NodeId(3), &mut r);
            assert!(
                intra < SimDuration::from_millis(1),
                "intra-region one-way must be sub-millisecond, got {intra}"
            );
            assert!(
                inter >= SimDuration::from_millis(5) && inter <= SimDuration::from_millis(170),
                "inter-region one-way out of the paper's envelope: {inter}"
            );
        }
    }

    #[test]
    fn aws_global_rtts_span_paper_envelope() {
        // Ten regions, one node each; every inter-region RTT (2x one-way
        // base) must fall within ~10-300ms as stated in §VI.
        let mut t = Topology::new();
        for i in 0..10 {
            let r = t.add_region(format!("r{i}"));
            t.place(NodeId(i as u64), r);
        }
        let mut m = RegionLatency::aws_global(t);
        let mut r = rng();
        for a in 0..10u64 {
            for b in 0..10u64 {
                if a == b {
                    continue;
                }
                let one_way = m.sample(NodeId(a), NodeId(b), &mut r);
                let rtt_ms = one_way.as_millis() * 2;
                assert!(
                    (10..=330).contains(&rtt_ms),
                    "rtt {rtt_ms}ms out of envelope for {a}->{b}"
                );
            }
        }
    }

    #[test]
    fn unplaced_endpoint_gets_default() {
        let t = Topology::single_region("r", [NodeId(1)]);
        let mut m = RegionLatency::aws_global(t);
        let mut r = rng();
        let d = m.sample(NodeId(1), NodeId(99), &mut r);
        assert!(d >= SimDuration::from_millis(40));
    }

    #[test]
    #[should_panic(expected = "matrix rows")]
    fn wrong_matrix_shape_panics() {
        let mut t = Topology::new();
        t.add_region("a");
        t.add_region("b");
        RegionLatency::new(t, vec![vec![SimDuration::ZERO; 2]], SimDuration::ZERO, 0.0);
    }
}
