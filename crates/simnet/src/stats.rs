//! Network traffic accounting.
//!
//! C-Raft's motivation is partly bandwidth: all-to-one wide-area
//! communication is "both time and bandwidth consuming" (§I). The stats here
//! let experiments report messages and bytes split by intra- vs inter-region
//! traffic, and why messages were dropped.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use wire::NodeId;

/// Why a message never arrived.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DropReason {
    /// Random loss (the loss model fired).
    Loss,
    /// An active partition blocked the link.
    Partition,
    /// The destination does not exist or is crashed/stopped.
    NodeDown,
}

/// Aggregate and per-link traffic counters.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct NetStats {
    /// Messages handed to the network.
    pub offered: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Bytes delivered.
    pub delivered_bytes: u64,
    /// Messages dropped by random loss.
    pub dropped_loss: u64,
    /// Messages dropped by partitions.
    pub dropped_partition: u64,
    /// Messages dropped because the destination was down.
    pub dropped_node_down: u64,
    /// Bytes offered on intra-region links.
    pub intra_region_bytes: u64,
    /// Bytes offered on inter-region links.
    pub inter_region_bytes: u64,
    per_link: HashMap<(NodeId, NodeId), LinkStats>,
}

/// Counters for one directed link.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct LinkStats {
    /// Messages offered on the link.
    pub offered: u64,
    /// Messages delivered on the link.
    pub delivered: u64,
    /// Bytes offered on the link.
    pub bytes: u64,
}

impl NetStats {
    /// Fresh counters.
    pub fn new() -> Self {
        NetStats::default()
    }

    /// Records an offered message and its routing class.
    pub(crate) fn record_offered(
        &mut self,
        from: NodeId,
        to: NodeId,
        bytes: usize,
        same_region: bool,
    ) {
        self.offered += 1;
        if same_region {
            self.intra_region_bytes += bytes as u64;
        } else {
            self.inter_region_bytes += bytes as u64;
        }
        let link = self.per_link.entry((from, to)).or_default();
        link.offered += 1;
        link.bytes += bytes as u64;
    }

    /// Records a delivery.
    pub(crate) fn record_delivered(&mut self, from: NodeId, to: NodeId, bytes: usize) {
        self.delivered += 1;
        self.delivered_bytes += bytes as u64;
        self.per_link.entry((from, to)).or_default().delivered += 1;
    }

    /// Records a drop.
    pub(crate) fn record_dropped(&mut self, reason: DropReason) {
        match reason {
            DropReason::Loss => self.dropped_loss += 1,
            DropReason::Partition => self.dropped_partition += 1,
            DropReason::NodeDown => self.dropped_node_down += 1,
        }
    }

    /// Counters for the directed link `from → to`.
    pub fn link(&self, from: NodeId, to: NodeId) -> LinkStats {
        self.per_link.get(&(from, to)).copied().unwrap_or_default()
    }

    /// The observed drop rate from random loss, over offered messages.
    pub fn observed_loss_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.dropped_loss as f64 / self.offered as f64
        }
    }

    /// Total dropped messages, all causes.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_loss + self.dropped_partition + self.dropped_node_down
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = NetStats::new();
        s.record_offered(NodeId(1), NodeId(2), 100, true);
        s.record_delivered(NodeId(1), NodeId(2), 100);
        s.record_offered(NodeId(1), NodeId(3), 50, false);
        s.record_dropped(DropReason::Loss);
        assert_eq!(s.offered, 2);
        assert_eq!(s.delivered, 1);
        assert_eq!(s.delivered_bytes, 100);
        assert_eq!(s.intra_region_bytes, 100);
        assert_eq!(s.inter_region_bytes, 50);
        assert_eq!(s.dropped_loss, 1);
        assert_eq!(s.dropped_total(), 1);
        assert_eq!(s.link(NodeId(1), NodeId(2)).delivered, 1);
        assert_eq!(s.link(NodeId(1), NodeId(3)).offered, 1);
        assert_eq!(s.link(NodeId(9), NodeId(9)).offered, 0);
    }

    #[test]
    fn loss_rate_over_offered() {
        let mut s = NetStats::new();
        assert_eq!(s.observed_loss_rate(), 0.0);
        for _ in 0..9 {
            s.record_offered(NodeId(1), NodeId(2), 1, true);
        }
        s.record_offered(NodeId(1), NodeId(2), 1, true);
        s.record_dropped(DropReason::Loss);
        assert!((s.observed_loss_rate() - 0.1).abs() < 1e-12);
    }
}
