//! Message-loss models.
//!
//! The paper forces loss rates with Linux `tc` (§VI), i.e. i.i.d. drops —
//! modelled by [`BernoulliLoss`]. [`GilbertElliott`] adds bursty loss (a
//! two-state Markov chain), used by the extension experiments to test Fast
//! Raft's sensitivity to correlated drops.

use std::collections::HashMap;

use des::SimRng;
use wire::NodeId;

/// Decides whether a message is dropped in transit.
pub trait LossModel {
    /// `true` if the message from `from` to `to` is lost.
    fn dropped(&mut self, from: NodeId, to: NodeId, rng: &mut SimRng) -> bool;
}

/// Never drops anything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoLoss;

impl LossModel for NoLoss {
    fn dropped(&mut self, _from: NodeId, _to: NodeId, _rng: &mut SimRng) -> bool {
        false
    }
}

/// Drops each message independently with probability `p` — the `tc netem`
/// style loss the paper uses.
#[derive(Clone, Copy, Debug)]
pub struct BernoulliLoss {
    /// Per-message drop probability.
    pub p: f64,
}

impl BernoulliLoss {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0.0..=1.0`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        BernoulliLoss { p }
    }
}

impl LossModel for BernoulliLoss {
    fn dropped(&mut self, _from: NodeId, _to: NodeId, rng: &mut SimRng) -> bool {
        rng.chance(self.p)
    }
}

/// Per-directed-link Bernoulli loss with a default rate for unlisted links.
#[derive(Clone, Debug, Default)]
pub struct PerLinkLoss {
    default: f64,
    links: HashMap<(NodeId, NodeId), f64>,
}

impl PerLinkLoss {
    /// Creates the model with a default drop rate.
    ///
    /// # Panics
    ///
    /// Panics if `default` is outside `0.0..=1.0`.
    pub fn new(default: f64) -> Self {
        assert!((0.0..=1.0).contains(&default), "loss out of range");
        PerLinkLoss {
            default,
            links: HashMap::new(),
        }
    }

    /// Sets the drop rate of the directed link `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0.0..=1.0`.
    pub fn set_link(&mut self, from: NodeId, to: NodeId, p: f64) -> &mut Self {
        assert!((0.0..=1.0).contains(&p), "loss out of range");
        self.links.insert((from, to), p);
        self
    }

    /// The configured rate for a link.
    pub fn rate(&self, from: NodeId, to: NodeId) -> f64 {
        self.links.get(&(from, to)).copied().unwrap_or(self.default)
    }
}

impl LossModel for PerLinkLoss {
    fn dropped(&mut self, from: NodeId, to: NodeId, rng: &mut SimRng) -> bool {
        rng.chance(self.rate(from, to))
    }
}

/// Bursty loss: the Gilbert–Elliott two-state Markov model. In the *good*
/// state messages are dropped with `p_good` (usually ~0); in the *bad* state
/// with `p_bad` (usually high). Transitions happen per message.
#[derive(Clone, Debug)]
pub struct GilbertElliott {
    /// P(good → bad) per message.
    pub p_gb: f64,
    /// P(bad → good) per message.
    pub p_bg: f64,
    /// Drop probability in the good state.
    pub p_good: f64,
    /// Drop probability in the bad state.
    pub p_bad: f64,
    in_bad: bool,
}

impl GilbertElliott {
    /// Creates the model starting in the good state.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `0.0..=1.0`.
    pub fn new(p_gb: f64, p_bg: f64, p_good: f64, p_bad: f64) -> Self {
        for (name, p) in [
            ("p_gb", p_gb),
            ("p_bg", p_bg),
            ("p_good", p_good),
            ("p_bad", p_bad),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} out of range: {p}");
        }
        GilbertElliott {
            p_gb,
            p_bg,
            p_good,
            p_bad,
            in_bad: false,
        }
    }

    /// The long-run average drop rate of this chain.
    pub fn stationary_loss(&self) -> f64 {
        if self.p_gb + self.p_bg == 0.0 {
            return self.p_good;
        }
        let pi_bad = self.p_gb / (self.p_gb + self.p_bg);
        pi_bad * self.p_bad + (1.0 - pi_bad) * self.p_good
    }

    /// `true` while the chain is in the bad state.
    pub fn is_bursting(&self) -> bool {
        self.in_bad
    }
}

impl LossModel for GilbertElliott {
    fn dropped(&mut self, _from: NodeId, _to: NodeId, rng: &mut SimRng) -> bool {
        // Transition first, then sample the (possibly new) state.
        let flip = if self.in_bad { self.p_bg } else { self.p_gb };
        if rng.chance(flip) {
            self.in_bad = !self.in_bad;
        }
        rng.chance(if self.in_bad { self.p_bad } else { self.p_good })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(2)
    }

    #[test]
    fn no_loss_never_drops() {
        let mut m = NoLoss;
        let mut r = rng();
        assert!((0..1000).all(|_| !m.dropped(NodeId(1), NodeId(2), &mut r)));
    }

    #[test]
    fn bernoulli_rate_plausible() {
        let mut m = BernoulliLoss::new(0.05);
        let mut r = rng();
        let drops = (0..20_000)
            .filter(|_| m.dropped(NodeId(1), NodeId(2), &mut r))
            .count();
        assert!((800..1200).contains(&drops), "drops={drops} expected ~1000");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = rng();
        let mut zero = BernoulliLoss::new(0.0);
        let mut one = BernoulliLoss::new(1.0);
        for _ in 0..100 {
            assert!(!zero.dropped(NodeId(1), NodeId(2), &mut r));
            assert!(one.dropped(NodeId(1), NodeId(2), &mut r));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bernoulli_rejects_bad_probability() {
        BernoulliLoss::new(1.5);
    }

    #[test]
    fn per_link_overrides_default() {
        let mut m = PerLinkLoss::new(0.0);
        m.set_link(NodeId(1), NodeId(2), 1.0);
        let mut r = rng();
        assert!(m.dropped(NodeId(1), NodeId(2), &mut r));
        assert!(!m.dropped(NodeId(2), NodeId(1), &mut r), "reverse direction unaffected");
        assert_eq!(m.rate(NodeId(3), NodeId(4)), 0.0);
    }

    #[test]
    fn gilbert_elliott_stationary_rate() {
        // pi_bad = 0.01 / (0.01 + 0.09) = 0.1; loss = 0.1 * 0.5 = 0.05.
        let m = GilbertElliott::new(0.01, 0.09, 0.0, 0.5);
        assert!((m.stationary_loss() - 0.05).abs() < 1e-12);
        let mut m = m;
        let mut r = rng();
        let n = 200_000;
        let drops = (0..n)
            .filter(|_| m.dropped(NodeId(1), NodeId(2), &mut r))
            .count();
        let rate = drops as f64 / n as f64;
        assert!((0.035..0.065).contains(&rate), "rate={rate} expected ~0.05");
    }

    #[test]
    fn gilbert_elliott_produces_bursts() {
        let mut m = GilbertElliott::new(0.02, 0.2, 0.0, 1.0);
        let mut r = rng();
        // Count runs of consecutive drops; with p_bad=1 inside bursts, the
        // mean burst length should be ~1/p_bg = 5, far above Bernoulli.
        let mut bursts = Vec::new();
        let mut current = 0u32;
        for _ in 0..100_000 {
            if m.dropped(NodeId(1), NodeId(2), &mut r) {
                current += 1;
            } else if current > 0 {
                bursts.push(current);
                current = 0;
            }
        }
        let mean = bursts.iter().map(|&b| b as f64).sum::<f64>() / bursts.len() as f64;
        assert!(mean > 2.5, "mean burst {mean} too short for bursty model");
    }
}
