//! # `simnet` — simulated unreliable datagram network
//!
//! Substitutes for the paper's AWS deployment (§VI): EC2 instances in
//! regions worldwide, UDP messaging, and `tc`-injected loss. Provides:
//!
//! - [`Topology`]: node-to-region placement;
//! - [`LatencyModel`]s: [`ConstantLatency`], [`UniformLatency`], and
//!   region-aware [`RegionLatency`] with an [`RegionLatency::aws_global`]
//!   preset matching the paper's 10–300 ms inter-region RTT envelope;
//! - [`LossModel`]s: [`NoLoss`], [`BernoulliLoss`] (`tc`-style i.i.d.),
//!   [`PerLinkLoss`], and bursty [`GilbertElliott`];
//! - [`PartitionSet`]: administratively blocked links, symmetric or
//!   asymmetric (one-way cuts);
//! - [`ChaosModel`]: bounded message duplication and reordering jitter, and
//!   [`PersistStalls`]: seed-driven slow-disk persistence stalls;
//! - [`Network`]: the façade that judges each send, producing a
//!   [`Verdict`] the harness turns into a delivery event, with full
//!   message/byte accounting in [`NetStats`].
//!
//! # Examples
//!
//! ```
//! use des::SimRng;
//! use simnet::{Network, Verdict};
//! use wire::NodeId;
//!
//! let mut net = Network::reliable_lan((0..5).map(NodeId));
//! let mut rng = SimRng::seed_from_u64(9);
//! assert!(matches!(
//!     net.judge(NodeId(0), NodeId(1), 128, &mut rng),
//!     Verdict::Deliver { .. }
//! ));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chaos;
mod latency;
mod loss;
mod net;
mod partition;
mod stats;
mod topology;

pub use chaos::{ChaosModel, PersistStalls};
pub use latency::{ConstantLatency, LatencyModel, RegionLatency, UniformLatency};
pub use loss::{BernoulliLoss, GilbertElliott, LossModel, NoLoss, PerLinkLoss};
pub use net::{Network, Verdict};
pub use partition::PartitionSet;
pub use stats::{DropReason, LinkStats, NetStats};
pub use topology::{RegionId, Topology};
