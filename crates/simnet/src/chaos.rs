//! Fault shapes beyond random loss: bounded message duplication, reordering
//! jitter, and slow-disk persist stalls. All are deterministic given the
//! caller's [`SimRng`] — the same seed replays the same chaos.
//!
//! Duplication and reordering compose with the [`crate::Network`] judge via
//! [`crate::Network::judge_chaos`]: the primary delivery verdict is
//! unchanged, and extra copies / delay jitter are layered on top only when a
//! [`ChaosModel`] is installed, so chaos-free runs draw exactly the same
//! random sequence as before the model existed.

use des::{SimDuration, SimRng};

/// Bounded duplication and reordering applied to delivered messages.
///
/// Real datagram networks duplicate (retransmitting middleboxes) and reorder
/// (multipath routing) — failure shapes a loss model cannot express. Both
/// are bounded: duplication mints at most `max_dup` extra copies per
/// message, and reordering adds at most `reorder_max` extra one-way delay.
///
/// # Examples
///
/// ```
/// use des::{SimDuration, SimRng};
/// use simnet::ChaosModel;
///
/// let chaos = ChaosModel::new(
///     0.5,
///     2,
///     0.5,
///     SimDuration::from_millis(1),
///     SimDuration::from_millis(5),
/// );
/// let mut rng = SimRng::seed_from_u64(7);
/// let base = SimDuration::from_micros(200);
/// let mut extras = Vec::new();
/// let primary = chaos.apply(base, &mut rng, &mut extras);
/// assert!(primary >= base);
/// assert!(extras.len() <= 2);
/// ```
#[derive(Clone, Debug)]
pub struct ChaosModel {
    dup_p: f64,
    max_dup: u8,
    reorder_p: f64,
    reorder_min: SimDuration,
    reorder_max: SimDuration,
}

impl ChaosModel {
    /// A model with both duplication and reordering.
    ///
    /// `dup_p` is the per-copy continuation probability (copy `i + 1` is
    /// minted only if copy `i` was, geometrically bounded by `max_dup`);
    /// `reorder_p` is the chance any given delivery — original or copy —
    /// picks up extra delay uniform in `[reorder_min, reorder_max]`.
    pub fn new(
        dup_p: f64,
        max_dup: u8,
        reorder_p: f64,
        reorder_min: SimDuration,
        reorder_max: SimDuration,
    ) -> Self {
        assert!((0.0..=1.0).contains(&dup_p), "dup_p out of range");
        assert!((0.0..=1.0).contains(&reorder_p), "reorder_p out of range");
        assert!(reorder_min <= reorder_max, "reorder_min > reorder_max");
        ChaosModel {
            dup_p,
            max_dup,
            reorder_p,
            reorder_min,
            reorder_max,
        }
    }

    /// Duplication only.
    pub fn duplicating(dup_p: f64, max_dup: u8) -> Self {
        ChaosModel::new(dup_p, max_dup, 0.0, SimDuration::ZERO, SimDuration::ZERO)
    }

    /// Reordering only.
    pub fn reordering(reorder_p: f64, min: SimDuration, max: SimDuration) -> Self {
        ChaosModel::new(0.0, 0, reorder_p, min, max)
    }

    fn jitter(&self, base: SimDuration, rng: &mut SimRng) -> SimDuration {
        if self.reorder_p > 0.0 && rng.chance(self.reorder_p) {
            base + rng.duration_between(self.reorder_min, self.reorder_max)
        } else {
            base
        }
    }

    /// Applies chaos to one delivered message with base one-way delay
    /// `base`: returns the (possibly jittered) primary delay and appends
    /// the delays of any duplicate copies to `extras` (which is **not**
    /// cleared — callers reuse one buffer across messages).
    pub fn apply(
        &self,
        base: SimDuration,
        rng: &mut SimRng,
        extras: &mut Vec<SimDuration>,
    ) -> SimDuration {
        for _ in 0..self.max_dup {
            if self.dup_p > 0.0 && rng.chance(self.dup_p) {
                extras.push(self.jitter(base, rng));
            } else {
                break;
            }
        }
        self.jitter(base, rng)
    }
}

/// Seed-driven slow-disk persist stalls: each persistence boundary may take
/// an extra fsync-spike delay, modeling a disk whose write latency is
/// usually negligible but occasionally spikes (ext4 journal flushes, EBS
/// hiccups). Deterministic given the caller's [`SimRng`].
///
/// # Examples
///
/// ```
/// use des::{SimDuration, SimRng};
/// use simnet::PersistStalls;
///
/// let stalls = PersistStalls::new(
///     1.0,
///     SimDuration::from_millis(2),
///     SimDuration::from_millis(8),
/// );
/// let mut rng = SimRng::seed_from_u64(3);
/// let d = stalls.sample(&mut rng);
/// assert!(d >= SimDuration::from_millis(2) && d <= SimDuration::from_millis(8));
/// ```
#[derive(Clone, Debug)]
pub struct PersistStalls {
    stall_p: f64,
    min: SimDuration,
    max: SimDuration,
}

impl PersistStalls {
    /// A stall model: with probability `stall_p` a persistence boundary
    /// stalls for a uniform duration in `[min, max]`, else it is instant.
    pub fn new(stall_p: f64, min: SimDuration, max: SimDuration) -> Self {
        assert!((0.0..=1.0).contains(&stall_p), "stall_p out of range");
        assert!(min <= max, "min > max");
        PersistStalls {
            stall_p,
            min,
            max,
        }
    }

    /// Samples the stall for one persistence boundary.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        if self.stall_p > 0.0 && rng.chance(self.stall_p) {
            rng.duration_between(self.min, self.max)
        } else {
            SimDuration::ZERO
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplication_is_bounded() {
        let chaos = ChaosModel::duplicating(1.0, 3);
        let mut rng = SimRng::seed_from_u64(1);
        let mut extras = Vec::new();
        chaos.apply(SimDuration::from_micros(100), &mut rng, &mut extras);
        assert_eq!(extras.len(), 3, "p=1 mints exactly max_dup copies");
    }

    #[test]
    fn no_dup_no_extras() {
        let chaos = ChaosModel::reordering(
            1.0,
            SimDuration::from_millis(1),
            SimDuration::from_millis(2),
        );
        let mut rng = SimRng::seed_from_u64(2);
        let mut extras = Vec::new();
        let after = chaos.apply(SimDuration::from_micros(100), &mut rng, &mut extras);
        assert!(extras.is_empty());
        assert!(after >= SimDuration::from_micros(100) + SimDuration::from_millis(1));
    }

    #[test]
    fn chaos_is_deterministic_per_seed() {
        let chaos = ChaosModel::new(
            0.5,
            2,
            0.5,
            SimDuration::from_millis(1),
            SimDuration::from_millis(4),
        );
        let run = |seed| {
            let mut rng = SimRng::seed_from_u64(seed);
            let mut extras = Vec::new();
            let mut primaries = Vec::new();
            for _ in 0..50 {
                primaries.push(chaos.apply(SimDuration::from_micros(150), &mut rng, &mut extras));
            }
            (primaries, extras)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn stalls_sample_zero_or_in_range() {
        let stalls = PersistStalls::new(
            0.5,
            SimDuration::from_millis(3),
            SimDuration::from_millis(6),
        );
        let mut rng = SimRng::seed_from_u64(4);
        let mut saw_zero = false;
        let mut saw_stall = false;
        for _ in 0..200 {
            let d = stalls.sample(&mut rng);
            if d == SimDuration::ZERO {
                saw_zero = true;
            } else {
                assert!(d >= SimDuration::from_millis(3) && d <= SimDuration::from_millis(6));
                saw_stall = true;
            }
        }
        assert!(saw_zero && saw_stall);
    }
}
