//! Node placement: which region each site lives in.
//!
//! The paper's C-Raft evaluation (§VI) places EC2 instances in AWS regions
//! across North America, South America, Europe, and Asia, with round-trip
//! latency "between 10 to 300 ms between AWS regions and less than 1 ms
//! within regions". [`Topology`] captures the placement; latency models
//! consult it.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use wire::NodeId;

/// A geographic region, an index into the topology's region table.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct RegionId(pub usize);

impl RegionId {
    /// The raw index.
    pub fn as_usize(self) -> usize {
        self.0
    }
}

/// Placement of sites into named regions.
///
/// # Examples
///
/// ```
/// use simnet::Topology;
/// use wire::NodeId;
///
/// let mut topo = Topology::new();
/// let na = topo.add_region("us-east-1");
/// let eu = topo.add_region("eu-west-1");
/// topo.place(NodeId(1), na);
/// topo.place(NodeId(2), eu);
/// assert_ne!(topo.region_of(NodeId(1)), topo.region_of(NodeId(2)));
/// assert!(!topo.same_region(NodeId(1), NodeId(2)));
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Topology {
    regions: Vec<String>,
    placement: HashMap<NodeId, RegionId>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// A single-region topology holding the given nodes — the paper's
    /// Fig. 3/4 setting (one cluster, one region).
    pub fn single_region(name: &str, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        let mut t = Topology::new();
        let r = t.add_region(name);
        for n in nodes {
            t.place(n, r);
        }
        t
    }

    /// Registers a region, returning its id. Duplicate names are allowed
    /// (they are distinct regions).
    pub fn add_region(&mut self, name: impl Into<String>) -> RegionId {
        self.regions.push(name.into());
        RegionId(self.regions.len() - 1)
    }

    /// Places (or moves) a node into a region.
    ///
    /// # Panics
    ///
    /// Panics if the region does not exist.
    pub fn place(&mut self, node: NodeId, region: RegionId) {
        assert!(
            region.0 < self.regions.len(),
            "unknown region {:?}",
            region
        );
        self.placement.insert(node, region);
    }

    /// The region a node lives in, if placed.
    pub fn region_of(&self, node: NodeId) -> Option<RegionId> {
        self.placement.get(&node).copied()
    }

    /// `true` if both nodes are placed in the same region.
    ///
    /// Unplaced nodes are conservatively treated as *not* co-located with
    /// anything (including other unplaced nodes).
    pub fn same_region(&self, a: NodeId, b: NodeId) -> bool {
        match (self.region_of(a), self.region_of(b)) {
            (Some(ra), Some(rb)) => ra == rb,
            _ => false,
        }
    }

    /// Name of a region.
    pub fn region_name(&self, region: RegionId) -> Option<&str> {
        self.regions.get(region.0).map(String::as_str)
    }

    /// Number of registered regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Number of placed nodes.
    pub fn node_count(&self) -> usize {
        self.placement.len()
    }

    /// Nodes placed in `region`, in ascending id order.
    pub fn nodes_in(&self, region: RegionId) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .placement
            .iter()
            .filter(|(_, &r)| r == region)
            .map(|(&n, _)| n)
            .collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_region_places_all() {
        let t = Topology::single_region("r", (0..5).map(NodeId));
        assert_eq!(t.region_count(), 1);
        assert_eq!(t.node_count(), 5);
        assert!(t.same_region(NodeId(0), NodeId(4)));
    }

    #[test]
    fn unplaced_nodes_are_not_colocated() {
        let t = Topology::new();
        assert!(!t.same_region(NodeId(1), NodeId(2)));
        assert_eq!(t.region_of(NodeId(1)), None);
    }

    #[test]
    fn nodes_in_is_sorted() {
        let mut t = Topology::new();
        let r = t.add_region("r");
        for n in [5u64, 1, 3] {
            t.place(NodeId(n), r);
        }
        assert_eq!(t.nodes_in(r), vec![NodeId(1), NodeId(3), NodeId(5)]);
    }

    #[test]
    fn moving_a_node_changes_region() {
        let mut t = Topology::new();
        let a = t.add_region("a");
        let b = t.add_region("b");
        t.place(NodeId(1), a);
        t.place(NodeId(1), b);
        assert_eq!(t.region_of(NodeId(1)), Some(b));
        assert_eq!(t.nodes_in(a), Vec::<NodeId>::new());
    }

    #[test]
    #[should_panic(expected = "unknown region")]
    fn placing_in_unknown_region_panics() {
        Topology::new().place(NodeId(1), RegionId(3));
    }

    #[test]
    fn region_names() {
        let mut t = Topology::new();
        let r = t.add_region("eu-west-1");
        assert_eq!(t.region_name(r), Some("eu-west-1"));
        assert_eq!(t.region_name(RegionId(9)), None);
    }
}
