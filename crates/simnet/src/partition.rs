//! Network partitions: administratively blocked links.
//!
//! Partitions are orthogonal to random loss: a blocked link drops *every*
//! message until healed. Supports pairwise blocks, full node isolation, and
//! group partitions (every cross-group link blocked).

use std::collections::HashSet;

use wire::NodeId;

/// The set of currently blocked communication links.
///
/// Blocks are **symmetric**: blocking `(a, b)` blocks both directions, which
/// matches how real partitions behave and keeps experiment configuration
/// simple.
///
/// # Examples
///
/// ```
/// use simnet::PartitionSet;
/// use wire::NodeId;
///
/// let mut parts = PartitionSet::new();
/// parts.block_pair(NodeId(1), NodeId(2));
/// assert!(parts.is_blocked(NodeId(2), NodeId(1)));
/// parts.heal_all();
/// assert!(!parts.is_blocked(NodeId(1), NodeId(2)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct PartitionSet {
    blocked_pairs: HashSet<(NodeId, NodeId)>,
    /// Directed cuts: `(from, to)` blocks only `from → to`.
    blocked_one_way: HashSet<(NodeId, NodeId)>,
    isolated: HashSet<NodeId>,
}

impl PartitionSet {
    /// No partitions.
    pub fn new() -> Self {
        PartitionSet::default()
    }

    fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Blocks the (symmetric) link between `a` and `b`.
    pub fn block_pair(&mut self, a: NodeId, b: NodeId) {
        self.blocked_pairs.insert(Self::key(a, b));
    }

    /// Unblocks the link between `a` and `b` (no-op if not blocked).
    pub fn heal_pair(&mut self, a: NodeId, b: NodeId) {
        self.blocked_pairs.remove(&Self::key(a, b));
    }

    /// Cuts a node off from everyone.
    pub fn isolate(&mut self, node: NodeId) {
        self.isolated.insert(node);
    }

    /// Reconnects an isolated node.
    pub fn reconnect(&mut self, node: NodeId) {
        self.isolated.remove(&node);
    }

    /// Blocks only the `from → to` direction (an asymmetric cut: `to` can
    /// still reach `from`). One-way cuts model routing asymmetries and
    /// half-open links — the failure shape where a node hears heartbeats it
    /// cannot answer, which symmetric partitions can never produce.
    pub fn block_one_way(&mut self, from: NodeId, to: NodeId) {
        self.blocked_one_way.insert((from, to));
    }

    /// Removes a directed cut (no-op if absent; does not affect symmetric
    /// blocks covering the same pair).
    pub fn heal_one_way(&mut self, from: NodeId, to: NodeId) {
        self.blocked_one_way.remove(&(from, to));
    }

    /// Splits the network into two sides, blocking every cross-side link.
    pub fn split(&mut self, side_a: &[NodeId], side_b: &[NodeId]) {
        for &a in side_a {
            for &b in side_b {
                self.block_pair(a, b);
            }
        }
    }

    /// Cuts only the `side_a → side_b` direction of every cross-side link.
    pub fn split_one_way(&mut self, side_a: &[NodeId], side_b: &[NodeId]) {
        for &a in side_a {
            for &b in side_b {
                self.block_one_way(a, b);
            }
        }
    }

    /// Removes all blocks and isolations.
    pub fn heal_all(&mut self) {
        self.blocked_pairs.clear();
        self.blocked_one_way.clear();
        self.isolated.clear();
    }

    /// `true` if traffic from `from` to `to` is currently blocked.
    pub fn is_blocked(&self, from: NodeId, to: NodeId) -> bool {
        self.isolated.contains(&from)
            || self.isolated.contains(&to)
            || self.blocked_pairs.contains(&Self::key(from, to))
            || self.blocked_one_way.contains(&(from, to))
    }

    /// `true` if no blocks are active.
    pub fn is_clear(&self) -> bool {
        self.blocked_pairs.is_empty()
            && self.blocked_one_way.is_empty()
            && self.isolated.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_is_symmetric() {
        let mut p = PartitionSet::new();
        p.block_pair(NodeId(2), NodeId(1));
        assert!(p.is_blocked(NodeId(1), NodeId(2)));
        assert!(p.is_blocked(NodeId(2), NodeId(1)));
        p.heal_pair(NodeId(1), NodeId(2));
        assert!(p.is_clear());
    }

    #[test]
    fn isolation_blocks_everything() {
        let mut p = PartitionSet::new();
        p.isolate(NodeId(3));
        assert!(p.is_blocked(NodeId(3), NodeId(1)));
        assert!(p.is_blocked(NodeId(1), NodeId(3)));
        assert!(!p.is_blocked(NodeId(1), NodeId(2)));
        p.reconnect(NodeId(3));
        assert!(p.is_clear());
    }

    #[test]
    fn split_blocks_cross_side_only() {
        let mut p = PartitionSet::new();
        let a = [NodeId(1), NodeId(2)];
        let b = [NodeId(3), NodeId(4)];
        p.split(&a, &b);
        assert!(p.is_blocked(NodeId(1), NodeId(3)));
        assert!(p.is_blocked(NodeId(2), NodeId(4)));
        assert!(!p.is_blocked(NodeId(1), NodeId(2)));
        assert!(!p.is_blocked(NodeId(3), NodeId(4)));
    }

    #[test]
    fn heal_all_clears_everything() {
        let mut p = PartitionSet::new();
        p.block_pair(NodeId(1), NodeId(2));
        p.isolate(NodeId(5));
        p.block_one_way(NodeId(1), NodeId(4));
        p.heal_all();
        assert!(p.is_clear());
        assert!(!p.is_blocked(NodeId(5), NodeId(1)));
    }

    #[test]
    fn one_way_cut_is_directional() {
        let mut p = PartitionSet::new();
        p.block_one_way(NodeId(1), NodeId(2));
        assert!(p.is_blocked(NodeId(1), NodeId(2)));
        assert!(!p.is_blocked(NodeId(2), NodeId(1)));
        assert!(!p.is_clear());
        p.heal_one_way(NodeId(1), NodeId(2));
        assert!(p.is_clear());
    }

    #[test]
    fn one_way_heal_preserves_symmetric_block() {
        let mut p = PartitionSet::new();
        p.block_pair(NodeId(1), NodeId(2));
        p.block_one_way(NodeId(1), NodeId(2));
        p.heal_one_way(NodeId(1), NodeId(2));
        assert!(p.is_blocked(NodeId(1), NodeId(2)));
        assert!(p.is_blocked(NodeId(2), NodeId(1)));
    }

    #[test]
    fn split_one_way_cuts_single_direction() {
        let mut p = PartitionSet::new();
        p.split_one_way(&[NodeId(1), NodeId(2)], &[NodeId(3)]);
        assert!(p.is_blocked(NodeId(1), NodeId(3)));
        assert!(p.is_blocked(NodeId(2), NodeId(3)));
        assert!(!p.is_blocked(NodeId(3), NodeId(1)));
        assert!(!p.is_blocked(NodeId(3), NodeId(2)));
    }
}
