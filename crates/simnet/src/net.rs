//! The network façade: judge each send, producing a delivery verdict.
//!
//! [`Network`] composes a latency model, a loss model, partitions, node
//! liveness, and traffic stats. It does **not** own the event queue — the
//! harness asks for a [`Verdict`] and schedules the delivery event itself,
//! keeping `simnet` independent of the event payload type.

use des::{SimDuration, SimRng};
use wire::NodeId;

use crate::{
    ChaosModel, DropReason, LatencyModel, LossModel, NetStats, NoLoss, PartitionSet, Topology,
    UniformLatency,
};

use std::collections::HashSet;

/// The network's decision about one message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver after the given one-way delay.
    Deliver {
        /// One-way latency to apply.
        after: SimDuration,
    },
    /// The message is lost.
    Drop {
        /// Why it was lost.
        reason: DropReason,
    },
}

/// A simulated unreliable datagram network.
///
/// # Examples
///
/// ```
/// use des::{SimDuration, SimRng};
/// use simnet::{Network, Verdict};
/// use wire::NodeId;
///
/// let mut rng = SimRng::seed_from_u64(1);
/// let mut net = Network::reliable_lan([NodeId(1), NodeId(2)]);
/// match net.judge(NodeId(1), NodeId(2), 64, &mut rng) {
///     Verdict::Deliver { after } => assert!(after > SimDuration::ZERO),
///     Verdict::Drop { .. } => unreachable!("reliable network"),
/// }
/// ```
pub struct Network {
    latency: Box<dyn LatencyModel + Send>,
    loss: Box<dyn LossModel + Send>,
    partitions: PartitionSet,
    topology: Topology,
    /// Nodes currently unable to receive (crashed or silently departed).
    down: HashSet<NodeId>,
    stats: NetStats,
    /// Delay applied to self-addressed messages (process-local loopback).
    loopback: SimDuration,
    /// Optional duplication/reordering layered over delivered messages.
    chaos: Option<ChaosModel>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("partitions", &self.partitions)
            .field("down", &self.down)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Network {
    /// Builds a network from explicit models.
    pub fn new(
        topology: Topology,
        latency: Box<dyn LatencyModel + Send>,
        loss: Box<dyn LossModel + Send>,
    ) -> Self {
        Network {
            latency,
            loss,
            partitions: PartitionSet::new(),
            topology,
            down: HashSet::new(),
            stats: NetStats::new(),
            loopback: SimDuration::from_micros(20),
            chaos: None,
        }
    }

    /// A lossless single-region LAN: uniform 100–500 µs one-way delay —
    /// sub-millisecond RTT as in the paper's intra-region measurements.
    pub fn reliable_lan(nodes: impl IntoIterator<Item = NodeId>) -> Self {
        let topology = Topology::single_region("lan", nodes);
        Network::new(
            topology,
            Box::new(UniformLatency::new(
                SimDuration::from_micros(100),
                SimDuration::from_micros(500),
            )),
            Box::new(NoLoss),
        )
    }

    /// The topology used for region-aware accounting.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Mutable access to the partition set.
    pub fn partitions_mut(&mut self) -> &mut PartitionSet {
        &mut self.partitions
    }

    /// Marks a node as unable to receive messages (crash / silent leave).
    pub fn set_down(&mut self, node: NodeId) {
        self.down.insert(node);
    }

    /// Marks a node as receiving again.
    pub fn set_up(&mut self, node: NodeId) {
        self.down.remove(&node);
    }

    /// `true` if the node is currently down.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.down.contains(&node)
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Judges one message of `bytes` encoded size from `from` to `to`.
    ///
    /// Applies, in order: destination liveness, partitions, random loss,
    /// then latency sampling. Self-addressed messages use the loopback
    /// delay and bypass loss and partitions (a process talking to itself).
    pub fn judge(&mut self, from: NodeId, to: NodeId, bytes: usize, rng: &mut SimRng) -> Verdict {
        let same_region = from == to || self.topology.same_region(from, to);
        self.stats.record_offered(from, to, bytes, same_region);

        if from == to {
            self.stats.record_delivered(from, to, bytes);
            return Verdict::Deliver {
                after: self.loopback,
            };
        }
        if self.down.contains(&to) {
            self.stats.record_dropped(DropReason::NodeDown);
            return Verdict::Drop {
                reason: DropReason::NodeDown,
            };
        }
        if self.partitions.is_blocked(from, to) {
            self.stats.record_dropped(DropReason::Partition);
            return Verdict::Drop {
                reason: DropReason::Partition,
            };
        }
        if self.loss.dropped(from, to, rng) {
            self.stats.record_dropped(DropReason::Loss);
            return Verdict::Drop {
                reason: DropReason::Loss,
            };
        }
        let after = self.latency.sample(from, to, rng);
        self.stats.record_delivered(from, to, bytes);
        Verdict::Deliver { after }
    }

    /// Installs (or removes) a duplication/reordering model. `None` — the
    /// default — makes [`Network::judge_chaos`] behave exactly like
    /// [`Network::judge`], drawing the identical random sequence.
    pub fn set_chaos(&mut self, chaos: Option<ChaosModel>) {
        self.chaos = chaos;
    }

    /// `true` if a chaos model is installed.
    pub fn has_chaos(&self) -> bool {
        self.chaos.is_some()
    }

    /// [`Network::judge`] plus chaos: when a [`ChaosModel`] is installed
    /// and the message is delivered, the returned delay may carry reorder
    /// jitter and the delays of any duplicate copies are appended to
    /// `extras` (a caller-reused buffer, **not** cleared here; one
    /// scheduled delivery per element). Loopback sends bypass chaos like
    /// they bypass loss. Duplicate copies are free of charge in the traffic
    /// stats — accounting tracks what the protocol offered, not what the
    /// network invented.
    pub fn judge_chaos(
        &mut self,
        from: NodeId,
        to: NodeId,
        bytes: usize,
        rng: &mut SimRng,
        extras: &mut Vec<SimDuration>,
    ) -> Verdict {
        match self.judge(from, to, bytes, rng) {
            Verdict::Deliver { after } if from != to => match &self.chaos {
                Some(chaos) => Verdict::Deliver {
                    after: chaos.apply(after, rng, extras),
                },
                None => Verdict::Deliver { after },
            },
            verdict => verdict,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BernoulliLoss;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(3)
    }

    #[test]
    fn reliable_lan_always_delivers() {
        let mut net = Network::reliable_lan((0..3).map(NodeId));
        let mut r = rng();
        for _ in 0..500 {
            match net.judge(NodeId(0), NodeId(1), 32, &mut r) {
                Verdict::Deliver { after } => {
                    assert!(after >= SimDuration::from_micros(100));
                    assert!(after <= SimDuration::from_micros(500));
                }
                Verdict::Drop { .. } => panic!("reliable lan dropped"),
            }
        }
        assert_eq!(net.stats().dropped_total(), 0);
        assert_eq!(net.stats().offered, 500);
    }

    #[test]
    fn loopback_bypasses_loss() {
        let topo = Topology::single_region("r", [NodeId(1)]);
        let mut net = Network::new(
            topo,
            Box::new(UniformLatency::new(
                SimDuration::from_micros(100),
                SimDuration::from_micros(200),
            )),
            Box::new(BernoulliLoss::new(1.0)),
        );
        let mut r = rng();
        assert!(matches!(
            net.judge(NodeId(1), NodeId(1), 8, &mut r),
            Verdict::Deliver { .. }
        ));
        // But a real link with p=1 always drops.
        assert!(matches!(
            net.judge(NodeId(1), NodeId(2), 8, &mut r),
            Verdict::Drop {
                reason: DropReason::Loss
            }
        ));
    }

    #[test]
    fn down_nodes_black_hole() {
        let mut net = Network::reliable_lan((0..2).map(NodeId));
        let mut r = rng();
        net.set_down(NodeId(1));
        assert!(matches!(
            net.judge(NodeId(0), NodeId(1), 8, &mut r),
            Verdict::Drop {
                reason: DropReason::NodeDown
            }
        ));
        net.set_up(NodeId(1));
        assert!(matches!(
            net.judge(NodeId(0), NodeId(1), 8, &mut r),
            Verdict::Deliver { .. }
        ));
    }

    #[test]
    fn partitions_block_before_loss() {
        let mut net = Network::reliable_lan((0..2).map(NodeId));
        let mut r = rng();
        net.partitions_mut().block_pair(NodeId(0), NodeId(1));
        assert!(matches!(
            net.judge(NodeId(0), NodeId(1), 8, &mut r),
            Verdict::Drop {
                reason: DropReason::Partition
            }
        ));
        net.partitions_mut().heal_all();
        assert!(matches!(
            net.judge(NodeId(0), NodeId(1), 8, &mut r),
            Verdict::Deliver { .. }
        ));
    }

    #[test]
    fn observed_loss_tracks_model() {
        let topo = Topology::single_region("r", (0..2).map(NodeId));
        let mut net = Network::new(
            topo,
            Box::new(UniformLatency::new(
                SimDuration::from_micros(100),
                SimDuration::from_micros(200),
            )),
            Box::new(BernoulliLoss::new(0.10)),
        );
        let mut r = rng();
        for _ in 0..20_000 {
            let _ = net.judge(NodeId(0), NodeId(1), 8, &mut r);
        }
        let rate = net.stats().observed_loss_rate();
        assert!((0.08..0.12).contains(&rate), "rate={rate}");
    }

    #[test]
    fn byte_accounting_by_region() {
        let mut topo = Topology::new();
        let a = topo.add_region("a");
        let b = topo.add_region("b");
        topo.place(NodeId(1), a);
        topo.place(NodeId(2), a);
        topo.place(NodeId(3), b);
        let mut net = Network::new(
            topo,
            Box::new(UniformLatency::new(
                SimDuration::from_micros(100),
                SimDuration::from_micros(200),
            )),
            Box::new(NoLoss),
        );
        let mut r = rng();
        net.judge(NodeId(1), NodeId(2), 100, &mut r);
        net.judge(NodeId(1), NodeId(3), 40, &mut r);
        assert_eq!(net.stats().intra_region_bytes, 100);
        assert_eq!(net.stats().inter_region_bytes, 40);
    }
}
