//! Roundtrip property tests: every wire type survives encode → decode for
//! arbitrary values, and `encoded_len` always matches the actual encoding.

use bytes::Bytes;
use proptest::prelude::*;
use wire::{
    Approval, Batch, BatchItem, ClusterId, Configuration, EntryId, GlobalState, LogEntry,
    LogIndex, NodeId, Payload, SessionId, SparseLog, Term, Wire,
};

fn arb_node_id() -> impl Strategy<Value = NodeId> {
    any::<u64>().prop_map(NodeId)
}

fn arb_entry_id() -> impl Strategy<Value = EntryId> {
    (arb_node_id(), any::<u64>()).prop_map(|(n, s)| EntryId::new(n, s))
}

fn arb_config() -> impl Strategy<Value = Configuration> {
    proptest::collection::btree_set(any::<u64>(), 0..12)
        .prop_map(|s| Configuration::new(s.into_iter().map(NodeId)))
}

fn arb_approval() -> impl Strategy<Value = Approval> {
    prop_oneof![
        Just(Approval::SelfApproved),
        Just(Approval::LeaderApproved)
    ]
}

fn arb_bytes() -> impl Strategy<Value = Bytes> {
    proptest::collection::vec(any::<u8>(), 0..128).prop_map(Bytes::from)
}

fn arb_batch() -> impl Strategy<Value = Batch> {
    (
        any::<u64>().prop_map(ClusterId),
        any::<u64>(),
        proptest::collection::vec(
            (arb_entry_id(), arb_bytes(), any::<bool>(), any::<u64>(), any::<u64>()).prop_map(
                |(id, data, keyed, s, q)| BatchItem {
                    id,
                    key: keyed.then_some((SessionId(s), q)),
                    data,
                },
            ),
            0..8,
        ),
    )
        .prop_map(|(cluster, batch_seq, items)| Batch::new(cluster, batch_seq, items))
}

fn arb_flat_payload() -> impl Strategy<Value = Payload> {
    prop_oneof![
        Just(Payload::Noop),
        arb_bytes().prop_map(Payload::Data),
        (any::<u64>(), any::<u64>(), arb_bytes()).prop_map(|(s, seq, data)| Payload::Write {
            session: SessionId(s),
            seq,
            data,
        }),
        arb_config().prop_map(Payload::Config),
        arb_batch().prop_map(Payload::Batch),
    ]
}

fn arb_session_table() -> impl Strategy<Value = wire::SessionTable> {
    proptest::collection::vec(
        (any::<u64>(), proptest::collection::btree_set(1..64u64, 1..6)),
        0..5,
    )
    .prop_map(|sessions| {
        let mut t = wire::SessionTable::new();
        for (s, seqs) in sessions {
            for (i, seq) in seqs.into_iter().enumerate() {
                t.apply(SessionId(s), seq, LogIndex(100 + i as u64));
            }
        }
        t
    })
}

fn arb_flat_entry() -> impl Strategy<Value = LogEntry> {
    (
        any::<u64>().prop_map(Term),
        arb_entry_id(),
        arb_flat_payload(),
        arb_approval(),
    )
        .prop_map(|(term, id, payload, approval)| LogEntry {
            term,
            id,
            payload,
            approval,
        })
}

/// Entries possibly wrapping another entry as C-Raft global state.
fn arb_entry() -> impl Strategy<Value = LogEntry> {
    prop_oneof![
        arb_flat_entry(),
        (
            arb_flat_entry(),
            any::<u64>().prop_map(LogIndex),
            any::<u64>().prop_map(LogIndex),
            any::<u64>().prop_map(Term),
            arb_entry_id(),
            arb_approval(),
        )
            .prop_map(|(inner, index, gc, term, id, approval)| LogEntry {
                term,
                id,
                payload: Payload::GlobalState(GlobalState {
                    index,
                    entry: std::sync::Arc::new(inner),
                    global_commit: gc,
                }),
                approval,
            })
    ]
}

proptest! {
    #[test]
    fn entry_roundtrip(e in arb_entry()) {
        let bytes = e.to_bytes();
        prop_assert_eq!(bytes.len(), e.encoded_len());
        let back = LogEntry::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, e);
    }

    #[test]
    fn entry_list_roundtrip(entries in proptest::collection::vec(
        (any::<u64>().prop_map(LogIndex), arb_entry()), 0..8)
    ) {
        let list = wire::EntryList::from_vec(entries);
        let bytes = list.to_bytes();
        prop_assert_eq!(bytes.len(), list.encoded_len());
        prop_assert_eq!(wire::EntryList::from_bytes(&bytes).unwrap(), list);
    }

    #[test]
    fn config_roundtrip(c in arb_config()) {
        let back = Configuration::from_bytes(&c.to_bytes()).unwrap();
        prop_assert_eq!(back, c);
    }

    #[test]
    fn session_table_roundtrip(t in arb_session_table()) {
        let bytes = t.to_bytes();
        prop_assert_eq!(bytes.len(), t.encoded_len());
        prop_assert_eq!(wire::SessionTable::from_bytes(&bytes).unwrap(), t);
    }

    #[test]
    fn ids_roundtrip(n in any::<u64>(), t in any::<u64>(), i in any::<u64>(), e in arb_entry_id()) {
        prop_assert_eq!(NodeId::from_bytes(&NodeId(n).to_bytes()).unwrap(), NodeId(n));
        prop_assert_eq!(Term::from_bytes(&Term(t).to_bytes()).unwrap(), Term(t));
        prop_assert_eq!(LogIndex::from_bytes(&LogIndex(i).to_bytes()).unwrap(), LogIndex(i));
        prop_assert_eq!(EntryId::from_bytes(&e.to_bytes()).unwrap(), e);
    }

    /// Decoding any prefix shorter than the full encoding must error, never
    /// panic and never succeed.
    #[test]
    fn truncation_always_errors(e in arb_entry(), frac in 0.0f64..1.0) {
        let bytes = e.to_bytes();
        let cut = ((bytes.len() as f64) * frac) as usize;
        if cut < bytes.len() {
            prop_assert!(LogEntry::from_bytes(&bytes[..cut]).is_err());
        }
    }

    /// SparseLog invariants: last_index is max occupied, first_gap is the
    /// lowest hole, dense logs report themselves dense.
    #[test]
    fn sparse_log_invariants(indices in proptest::collection::btree_set(1u64..200, 0..40)) {
        let mut log = SparseLog::new();
        let template = LogEntry::noop(Term(1), EntryId::new(NodeId(1), 0));
        for &i in &indices {
            log.insert(LogIndex(i), template.clone());
        }
        prop_assert_eq!(log.len(), indices.len());
        let expect_last = indices.iter().max().copied().unwrap_or(0);
        prop_assert_eq!(log.last_index(), LogIndex(expect_last));
        let mut gap = 1u64;
        while indices.contains(&gap) {
            gap += 1;
        }
        prop_assert_eq!(log.first_gap(), LogIndex(gap));
        let dense = indices.len() as u64 == expect_last;
        prop_assert_eq!(log.is_dense(), dense);
    }
}
