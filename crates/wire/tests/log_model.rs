//! Model-based property test for the dense-prefix `SparseLog`.
//!
//! The dense `VecDeque`-of-slots representation must be observationally
//! identical to the `BTreeMap<u64, LogEntry>` it replaced. A reference
//! model reimplementing the old tree semantics is driven through random
//! `append` / `insert` / `remove` / `truncate_from` / `compact_to` /
//! `install_snapshot` sequences in lockstep with the real log, asserting
//! every observable after every step: `get`, `term_at`, `first_gap`,
//! `front_gap`, `last_index`, iteration order, and budgeted range
//! collection. Plus the regression the compaction invariant hinges on: a
//! hole at the compaction boundary still clamps compaction.

use std::collections::BTreeMap;

use bytes::Bytes;
use proptest::prelude::*;
use wire::{
    AppendBudget, Approval, EntryId, LogEntry, LogIndex, NodeId, SparseLog, Term, Wire,
};

/// The previous `SparseLog` representation, kept as the reference model.
#[derive(Default)]
struct TreeModel {
    entries: BTreeMap<u64, LogEntry>,
    compacted_through: u64,
    compacted_term: Term,
}

impl TreeModel {
    fn get(&self, i: LogIndex) -> Option<&LogEntry> {
        self.entries.get(&i.as_u64())
    }

    fn insert(&mut self, i: LogIndex, e: LogEntry) -> Option<LogEntry> {
        assert!(!i.is_zero() && i.as_u64() > self.compacted_through);
        self.entries.insert(i.as_u64(), e)
    }

    fn append(&mut self, e: LogEntry) -> LogIndex {
        let i = self.last_index().next();
        self.entries.insert(i.as_u64(), e);
        i
    }

    fn remove(&mut self, i: LogIndex) -> Option<LogEntry> {
        self.entries.remove(&i.as_u64())
    }

    fn truncate_from(&mut self, from: LogIndex) -> usize {
        let removed: Vec<u64> = self
            .entries
            .range(from.as_u64()..)
            .map(|(&i, _)| i)
            .collect();
        for i in &removed {
            self.entries.remove(i);
        }
        removed.len()
    }

    fn last_index(&self) -> LogIndex {
        self.entries
            .keys()
            .next_back()
            .map_or(LogIndex(self.compacted_through), |&i| LogIndex(i))
    }

    fn term_at(&self, i: LogIndex) -> Term {
        if i.as_u64() == self.compacted_through && self.compacted_through > 0 {
            return self.compacted_term;
        }
        self.get(i).map_or(Term::ZERO, |e| e.term)
    }

    fn first_gap(&self) -> LogIndex {
        let mut expect = self.compacted_through + 1;
        for (&i, _) in self.entries.range(expect..) {
            if i != expect {
                break;
            }
            expect += 1;
        }
        LogIndex(expect)
    }

    fn front_gap(&self) -> Option<(LogIndex, LogIndex)> {
        let first = *self.entries.keys().next()?;
        (first > self.compacted_through + 1)
            .then_some((LogIndex(self.compacted_through), LogIndex(first)))
    }

    fn compact_to(&mut self, through: LogIndex) -> LogIndex {
        let bound = self.first_gap().as_u64().saturating_sub(1);
        let target = through.as_u64().min(bound);
        if target <= self.compacted_through {
            return LogIndex(self.compacted_through);
        }
        self.compacted_term = self.entries.get(&target).map(|e| e.term).expect("occupied");
        self.entries = self.entries.split_off(&(target + 1));
        self.compacted_through = target;
        LogIndex(self.compacted_through)
    }

    fn install_snapshot(&mut self, last_index: LogIndex, last_term: Term) -> bool {
        if last_index.as_u64() <= self.compacted_through {
            return false;
        }
        let consistent = self
            .entries
            .get(&last_index.as_u64())
            .is_some_and(|e| e.term == last_term);
        if consistent {
            self.entries = self.entries.split_off(&(last_index.as_u64() + 1));
        } else {
            self.entries.clear();
        }
        self.compacted_through = last_index.as_u64();
        self.compacted_term = last_term;
        true
    }

    fn collect_range_budgeted(
        &self,
        from: LogIndex,
        to: LogIndex,
        budget: AppendBudget,
    ) -> Vec<(LogIndex, LogEntry)> {
        let mut out = Vec::new();
        let mut bytes = 0usize;
        for (&i, e) in self.entries.range(from.as_u64()..=to.as_u64()) {
            let sz = 8 + e.encoded_len();
            if !budget.admits(out.len(), bytes, sz) {
                break;
            }
            bytes += sz;
            out.push((LogIndex(i), e.clone()));
        }
        out
    }
}

#[derive(Clone, Debug)]
enum Op {
    Append { term: u64, self_approved: bool },
    Insert { index: u64, term: u64, self_approved: bool },
    Remove { index: u64 },
    Truncate { from: u64 },
    Compact { through: u64 },
    InstallSnapshot { last_index: u64, term: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    // Appends and inserts listed twice: mutation-heavy sequences explore
    // deeper logs before the rarer structural ops (truncate/compact/
    // install) reshape them.
    prop_oneof![
        (1..6u64, any::<bool>()).prop_map(|(term, sa)| Op::Append {
            term,
            self_approved: sa
        }),
        (2..5u64, any::<bool>()).prop_map(|(term, sa)| Op::Append {
            term,
            self_approved: sa
        }),
        (1..48u64, 1..6u64, any::<bool>()).prop_map(|(index, term, sa)| Op::Insert {
            index,
            term,
            self_approved: sa
        }),
        (1..32u64, 2..6u64, any::<bool>()).prop_map(|(index, term, sa)| Op::Insert {
            index,
            term,
            self_approved: sa
        }),
        (1..48u64).prop_map(|index| Op::Remove { index }),
        (1..48u64).prop_map(|from| Op::Truncate { from }),
        (1..48u64).prop_map(|through| Op::Compact { through }),
        (1..32u64, 1..6u64).prop_map(|(last_index, term)| Op::InstallSnapshot {
            last_index,
            term
        }),
    ]
}

fn entry(term: u64, seq: u64, self_approved: bool) -> LogEntry {
    let e = LogEntry::data(
        Term(term),
        EntryId::new(NodeId(1), seq),
        Bytes::from_static(b"model"),
    );
    if self_approved {
        e.with_approval(Approval::SelfApproved)
    } else {
        e
    }
}

/// Asserts every observable agrees between the dense log and the model.
fn assert_equivalent(log: &SparseLog, model: &TreeModel, probe_to: u64) {
    assert_eq!(log.last_index(), model.last_index(), "last_index");
    assert_eq!(log.first_gap(), model.first_gap(), "first_gap");
    assert_eq!(log.front_gap(), model.front_gap(), "front_gap");
    assert_eq!(
        log.compacted_through().as_u64(),
        model.compacted_through,
        "compacted_through"
    );
    assert_eq!(log.compacted_term(), model.compacted_term, "compacted_term");
    assert_eq!(log.len(), model.entries.len(), "len");
    assert_eq!(log.is_empty(), model.entries.is_empty(), "is_empty");
    for i in 0..=probe_to {
        let i = LogIndex(i);
        assert_eq!(log.get(i), model.get(i), "get({i})");
        assert_eq!(log.term_at(i), model.term_at(i), "term_at({i})");
    }
    let got: Vec<(LogIndex, &LogEntry)> = log.iter().collect();
    let want: Vec<(LogIndex, &LogEntry)> =
        model.entries.iter().map(|(&i, e)| (LogIndex(i), e)).collect();
    assert_eq!(got, want, "iteration order");
    // Budgeted collection over a few representative windows and budgets.
    for (from, to, max_entries, max_bytes) in [
        (1u64, probe_to, usize::MAX, usize::MAX),
        (1, probe_to, 3, usize::MAX),
        (2, probe_to / 2 + 1, usize::MAX, 64),
        (probe_to / 2, probe_to, 5, 128),
    ] {
        let budget = AppendBudget::new(max_entries, max_bytes);
        let got = log.collect_range_budgeted(LogIndex(from), LogIndex(to), budget);
        let want = model.collect_range_budgeted(LogIndex(from), LogIndex(to), budget);
        assert_eq!(got.as_slice(), want.as_slice(), "budgeted [{from},{to}]");
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 256,
        ..ProptestConfig::default()
    })]

    #[test]
    fn dense_log_matches_btreemap_model(ops in proptest::collection::vec(arb_op(), 1..80)) {
        let mut log = SparseLog::new();
        let mut model = TreeModel::default();
        let mut seq = 0u64;
        for op in ops {
            seq += 1;
            match op {
                Op::Append { term, self_approved } => {
                    let e = entry(term, seq, self_approved);
                    prop_assert_eq!(log.append(e.clone()), model.append(e));
                }
                Op::Insert { index, term, self_approved } => {
                    let i = LogIndex(index);
                    if index <= model.compacted_through {
                        continue; // both reprs panic below the horizon
                    }
                    let e = entry(term, seq, self_approved);
                    prop_assert_eq!(log.insert(i, e.clone()), model.insert(i, e));
                }
                Op::Remove { index } => {
                    let i = LogIndex(index);
                    prop_assert_eq!(log.remove(i), model.remove(i));
                }
                Op::Truncate { from } => {
                    let i = LogIndex(from);
                    prop_assert_eq!(log.truncate_from(i), model.truncate_from(i));
                }
                Op::Compact { through } => {
                    let i = LogIndex(through);
                    prop_assert_eq!(log.compact_to(i), model.compact_to(i));
                }
                Op::InstallSnapshot { last_index, term } => {
                    let i = LogIndex(last_index);
                    prop_assert_eq!(
                        log.install_snapshot(i, Term(term)),
                        model.install_snapshot(i, Term(term))
                    );
                }
            }
            assert_equivalent(&log, &model, 56);
        }
        // Observational equality implies structural equality of a rebuilt
        // twin: replaying the model's surviving state into a fresh dense
        // log (same horizon, same entries) compares equal to the original.
        let mut twin = SparseLog::new();
        twin.install_snapshot(LogIndex(model.compacted_through), model.compacted_term);
        for (&i, e) in &model.entries {
            twin.insert(LogIndex(i), e.clone());
        }
        if model.compacted_through > 0 {
            prop_assert_eq!(&twin, &log);
        }
    }
}

#[test]
fn regression_hole_at_compaction_boundary_clamps() {
    // The exact shape the compaction invariant protects: a hole directly at
    // the requested boundary. compact_to(4) must clamp at 2 (the end of the
    // contiguous occupied prefix), never swallow index 3's hole, and leave
    // the entry above the hole untouched — on both representations.
    let mut log = SparseLog::new();
    let mut model = TreeModel::default();
    for (i, e) in [
        (1u64, entry(1, 0, false)),
        (2, entry(1, 1, false)),
        (4, entry(1, 2, true)),
    ] {
        log.insert(LogIndex(i), e.clone());
        model.insert(LogIndex(i), e);
    }
    assert_eq!(log.compact_to(LogIndex(4)), LogIndex(2));
    assert_eq!(model.compact_to(LogIndex(4)), LogIndex(2));
    assert_equivalent(&log, &model, 8);
    assert_eq!(log.first_gap(), LogIndex(3), "the hole survives");
    assert!(log.get(LogIndex(4)).is_some(), "suffix above the hole survives");
    // Filling the hole afterwards makes the full prefix compactable.
    log.insert(LogIndex(3), entry(2, 9, false));
    model.insert(LogIndex(3), entry(2, 9, false));
    assert_eq!(log.compact_to(LogIndex(4)), LogIndex(4));
    assert_eq!(model.compact_to(LogIndex(4)), LogIndex(4));
    assert_equivalent(&log, &model, 8);
}
