//! Log entries and their payloads.
//!
//! ## Shared-payload ownership
//!
//! Replication fans the same bytes out to many recipients, so the bulky
//! parts of an entry are reference-counted and **immutable once shared**:
//! [`Bytes`] data, [`Batch`] item lists, [`GlobalState`] inner entries, and
//! whole [`EntryList`] append batches all clone in O(1) by bumping a
//! refcount. A producer must treat an entry as frozen from the moment it is
//! handed to `Actions::send`/`send_many` — the same allocation may now be
//! referenced by every in-flight copy. Site-local bookkeeping that *does*
//! change per copy (the `approval` field) lives outside the shared
//! allocations, in the [`LogEntry`] value itself, so stamping a received
//! entry's approval never touches the shared buffers.

use core::fmt;
use std::sync::Arc;

use bytes::Bytes;

use crate::{ClusterId, Configuration, EntryId, LogIndex, SessionId, Term};

/// Who made an entry durable at a site: the site itself (fast track) or the
/// leader (classic track). §IV-A, the `insertedBy` field.
///
/// Only **leader-approved** entries count towards up-to-dateness in leader
/// election; **self-approved** entries must be resent to a new leader during
/// recovery.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Approval {
    /// Inserted directly from a proposer broadcast (fast track).
    SelfApproved,
    /// Inserted or confirmed by the leader (classic track / AppendEntries).
    LeaderApproved,
}

impl fmt::Display for Approval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Approval::SelfApproved => write!(f, "self"),
            Approval::LeaderApproved => write!(f, "leader"),
        }
    }
}

/// One entry of a C-Raft global-log batch: a locally committed value being
/// replicated globally.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BatchItem {
    /// Original proposal id (for deduplication and client notification).
    pub id: EntryId,
    /// The originating client write's `(session, seq)`, when the value came
    /// through the session API: the **global** log applies batches
    /// item-wise through its own session table, so a value whose item lands
    /// in two batches (successor leader re-batching after a crash, a batch
    /// retry racing global compaction) still applies globally exactly once.
    pub key: Option<(SessionId, u64)>,
    /// The replicated value.
    pub data: Bytes,
}

/// A batch of locally committed entries proposed to the global log by a
/// cluster leader (§V-A).
///
/// The item list is `Arc`-shared: cloning a batch (e.g. when the entry
/// holding it is re-broadcast, voted on, or replicated to every cluster
/// member) bumps a refcount instead of copying the values.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Batch {
    /// The cluster whose local log produced this batch.
    pub cluster: ClusterId,
    /// Sequence number of this batch within the cluster (for dedup).
    pub batch_seq: u64,
    /// The batched values, in local-log order (immutable once built).
    pub items: Arc<[BatchItem]>,
}

impl Batch {
    /// Builds a batch from its items.
    pub fn new(cluster: ClusterId, batch_seq: u64, items: Vec<BatchItem>) -> Self {
        Batch {
            cluster,
            batch_seq,
            items: items.into(),
        }
    }

    /// Number of values in the batch.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if the batch carries no values.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A C-Raft *global state entry*: a local-log entry that replicates, within a
/// cluster, the fact that the cluster leader inserted `entry` at `index` of
/// its **global** log (§V-B). Committing this locally before acting ensures a
/// successor local leader inherits the inter-cluster state.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct GlobalState {
    /// The global-log index the entry was inserted at.
    pub index: LogIndex,
    /// The global-log entry itself (`Arc`-shared: a global-state entry is
    /// replicated to every cluster member, and cloning it must not copy the
    /// wrapped global entry).
    pub entry: Arc<LogEntry>,
    /// The global commit index known to the local leader when proposing,
    /// so cluster members track global commits across leader changes.
    pub global_commit: LogIndex,
}

/// What a log entry carries.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Payload {
    /// A leader no-op, appended on election to commit an entry of the new
    /// term (standard Raft practice; enables commit-index advancement).
    Noop,
    /// Application data.
    Data(Bytes),
    /// A session-tagged client write (exactly-once semantics): replicas
    /// apply it through their `SessionTable`, so a retried `seq` that
    /// commits at a second index is recognized and skipped.
    Write {
        /// The issuing client session.
        session: SessionId,
        /// The session-local sequence number (retries reuse it).
        seq: u64,
        /// The written value.
        data: Bytes,
    },
    /// A membership change: the complete new configuration (§IV-D).
    Config(Configuration),
    /// A batch of locally committed entries (C-Raft global log).
    Batch(Batch),
    /// Replicated inter-cluster consensus state (C-Raft local log).
    GlobalState(GlobalState),
    /// An explicit session registration (`ClientOp::Register`): a committed
    /// no-value op that opens `session`, consuming seq **1** under
    /// exactly-once semantics so the session's first real write carries
    /// seq 2 (see `SessionTable::is_expired_retry` for why that closes the
    /// expiry re-apply window).
    Register {
        /// The session being opened.
        session: SessionId,
    },
}

impl Payload {
    /// Short tag for traces.
    pub fn kind(&self) -> &'static str {
        match self {
            Payload::Noop => "noop",
            Payload::Data(_) => "data",
            Payload::Write { .. } => "write",
            Payload::Config(_) => "config",
            Payload::Batch(_) => "batch",
            Payload::GlobalState(_) => "gstate",
            Payload::Register { .. } => "register",
        }
    }

    /// The `(session, seq)` this payload applies under exactly-once
    /// semantics, if any. Batches dedup **item-wise** (each
    /// [`BatchItem::key`]), not as a whole.
    pub fn session_key(&self) -> Option<(SessionId, u64)> {
        match self {
            Payload::Write { session, seq, .. } => Some((*session, *seq)),
            Payload::Register { session } => Some((*session, 1)),
            _ => None,
        }
    }

    /// `true` for configuration entries.
    pub fn is_config(&self) -> bool {
        matches!(self, Payload::Config(_))
    }
}

/// A replicated log entry (§IV-A "Contents of a log entry").
///
/// Identity for vote-counting purposes is the [`EntryId`]: a re-proposal of
/// the same value carries the same id, while two different proposals always
/// differ. The `approval` field is site-local bookkeeping and is excluded
/// from identity (two sites can hold the same entry with different approval).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct LogEntry {
    /// Term in which the entry was created.
    pub term: Term,
    /// Unique id of the proposal that created the entry.
    pub id: EntryId,
    /// The replicated value.
    pub payload: Payload,
    /// How this site obtained the entry (site-local, not replicated).
    pub approval: Approval,
}

impl LogEntry {
    /// Creates a data entry.
    pub fn data(term: Term, id: EntryId, data: Bytes) -> Self {
        LogEntry {
            term,
            id,
            payload: Payload::Data(data),
            approval: Approval::LeaderApproved,
        }
    }

    /// Creates a session-tagged client write entry.
    pub fn write(term: Term, id: EntryId, session: SessionId, seq: u64, data: Bytes) -> Self {
        LogEntry {
            term,
            id,
            payload: Payload::Write { session, seq, data },
            approval: Approval::LeaderApproved,
        }
    }

    /// Creates an explicit session-registration entry (consumes seq 1 of
    /// the session — see [`crate::ClientOp::Register`]).
    pub fn register(term: Term, id: EntryId, session: SessionId) -> Self {
        LogEntry {
            term,
            id,
            payload: Payload::Register { session },
            approval: Approval::LeaderApproved,
        }
    }

    /// Creates a leader no-op entry.
    pub fn noop(term: Term, id: EntryId) -> Self {
        LogEntry {
            term,
            id,
            payload: Payload::Noop,
            approval: Approval::LeaderApproved,
        }
    }

    /// Creates a configuration entry.
    pub fn config(term: Term, id: EntryId, config: Configuration) -> Self {
        LogEntry {
            term,
            id,
            payload: Payload::Config(config),
            approval: Approval::LeaderApproved,
        }
    }

    /// Returns a copy with the given approval.
    #[must_use]
    pub fn with_approval(&self, approval: Approval) -> LogEntry {
        let mut e = self.clone();
        e.approval = approval;
        e
    }

    /// Returns a copy with the given term (used when a leader adopts a
    /// recovered entry into its own term).
    #[must_use]
    pub fn with_term(&self, term: Term) -> LogEntry {
        let mut e = self.clone();
        e.term = term;
        e
    }

    /// `true` if both refer to the same proposed value (identity by id),
    /// regardless of term or approval.
    pub fn same_proposal(&self, other: &LogEntry) -> bool {
        self.id == other.id
    }

    /// The configuration carried by this entry, if it is a config entry.
    pub fn as_config(&self) -> Option<&Configuration> {
        match &self.payload {
            Payload::Config(c) => Some(c),
            _ => None,
        }
    }
}

impl fmt::Display for LogEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{} {} {}]",
            self.payload.kind(),
            self.term,
            self.id,
            self.approval
        )
    }
}

/// An immutable, `Arc`-shared batch of explicitly indexed log entries — the
/// payload of an `AppendEntries` message.
///
/// A leader assembling one replication batch for several followers builds
/// the list **once** and clones the handle per recipient; every in-flight
/// copy then references the same allocation (the zero-copy fabric). The
/// entries are frozen: consumers clone individual [`LogEntry`] values out of
/// the list before mutating site-local fields such as `approval`.
///
/// The list is a **window** `[start, start + len)` over its backing
/// allocation. [`EntryList::from_vec`] covers the whole vector (the common
/// construction), while `SparseLog::collect_range_budgeted` can hand out a
/// sub-slice of one of its sealed segments directly — an AppendEntries
/// payload assembled without copying a single entry. Equality, hashing, and
/// iteration all see only the window, never the backing storage.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use wire::{EntryId, EntryList, LogEntry, LogIndex, NodeId, Term};
///
/// let e = LogEntry::data(Term(1), EntryId::new(NodeId(1), 0), Bytes::from_static(b"v"));
/// let list = EntryList::from_vec(vec![(LogIndex(3), e)]);
/// let shared = list.clone(); // O(1): same allocation
/// assert_eq!(shared.len(), 1);
/// assert_eq!(shared[0].0, LogIndex(3));
/// ```
#[derive(Clone)]
pub struct EntryList {
    seg: Arc<Vec<(LogIndex, LogEntry)>>,
    start: usize,
    len: usize,
}

impl EntryList {
    /// Freezes a vector of indexed entries into a shareable list. O(1): the
    /// vector is moved behind the refcount, not copied element-wise.
    pub fn from_vec(entries: Vec<(LogIndex, LogEntry)>) -> Self {
        let len = entries.len();
        EntryList {
            seg: Arc::new(entries),
            start: 0,
            len,
        }
    }

    /// A window onto an existing shared allocation: `len` pairs starting at
    /// `start`. O(1) and allocation-free — the log's segment-sliced
    /// collection path. Crate-internal so every public list is known valid.
    pub(crate) fn view(seg: Arc<Vec<(LogIndex, LogEntry)>>, start: usize, len: usize) -> Self {
        debug_assert!(start.checked_add(len).is_some_and(|end| end <= seg.len()));
        EntryList { seg, start, len }
    }

    /// The empty list (pure heartbeat).
    pub fn empty() -> Self {
        EntryList::from_vec(Vec::new())
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the list carries no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates the `(index, entry)` pairs in order.
    pub fn iter(&self) -> core::slice::Iter<'_, (LogIndex, LogEntry)> {
        self.as_slice().iter()
    }

    /// The entries as a slice.
    pub fn as_slice(&self) -> &[(LogIndex, LogEntry)] {
        &self.seg[self.start..self.start + self.len]
    }
}

impl fmt::Debug for EntryList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl PartialEq for EntryList {
    /// Window contents, not backing identity: a full-vector list and a
    /// segment view holding the same pairs compare equal.
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for EntryList {}

impl core::hash::Hash for EntryList {
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl Default for EntryList {
    fn default() -> Self {
        EntryList::empty()
    }
}

impl core::ops::Deref for EntryList {
    type Target = [(LogIndex, LogEntry)];
    fn deref(&self) -> &Self::Target {
        self.as_slice()
    }
}

impl From<Vec<(LogIndex, LogEntry)>> for EntryList {
    fn from(entries: Vec<(LogIndex, LogEntry)>) -> Self {
        EntryList::from_vec(entries)
    }
}

impl FromIterator<(LogIndex, LogEntry)> for EntryList {
    fn from_iter<I: IntoIterator<Item = (LogIndex, LogEntry)>>(iter: I) -> Self {
        EntryList::from_vec(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a EntryList {
    type Item = &'a (LogIndex, LogEntry);
    type IntoIter = core::slice::Iter<'a, (LogIndex, LogEntry)>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn id(n: u64, s: u64) -> EntryId {
        EntryId::new(NodeId(n), s)
    }

    #[test]
    fn constructors_set_expected_payloads() {
        let d = LogEntry::data(Term(1), id(1, 0), Bytes::from_static(b"x"));
        assert_eq!(d.payload.kind(), "data");
        let n = LogEntry::noop(Term(2), id(1, 1));
        assert_eq!(n.payload.kind(), "noop");
        let c = LogEntry::config(Term(3), id(1, 2), Configuration::new([NodeId(1)]));
        assert!(c.payload.is_config());
        assert!(c.as_config().is_some());
        assert!(d.as_config().is_none());
    }

    #[test]
    fn same_proposal_ignores_term_and_approval() {
        let a = LogEntry::data(Term(1), id(1, 0), Bytes::from_static(b"x"));
        let b = a.with_term(Term(5)).with_approval(Approval::SelfApproved);
        assert!(a.same_proposal(&b));
        let c = LogEntry::data(Term(1), id(1, 1), Bytes::from_static(b"x"));
        assert!(!a.same_proposal(&c));
    }

    #[test]
    fn with_approval_does_not_mutate_original() {
        let a = LogEntry::data(Term(1), id(1, 0), Bytes::from_static(b"x"));
        let b = a.with_approval(Approval::SelfApproved);
        assert_eq!(a.approval, Approval::LeaderApproved);
        assert_eq!(b.approval, Approval::SelfApproved);
    }

    #[test]
    fn batch_len() {
        let batch = Batch::new(
            ClusterId(1),
            0,
            vec![BatchItem {
                id: id(1, 0),
                key: None,
                data: Bytes::from_static(b"v"),
            }],
        );
        assert_eq!(batch.len(), 1);
        assert!(!batch.is_empty());
        assert!(Batch::new(ClusterId(1), 1, vec![]).is_empty());
    }

    #[test]
    fn batch_clone_shares_items() {
        let batch = Batch::new(
            ClusterId(1),
            0,
            vec![BatchItem {
                id: id(1, 0),
                key: None,
                data: Bytes::from_static(b"v"),
            }],
        );
        let copy = batch.clone();
        assert!(Arc::ptr_eq(&batch.items, &copy.items));
    }

    #[test]
    fn entry_list_shares_allocation() {
        let e = LogEntry::data(Term(1), id(1, 0), Bytes::from_static(b"v"));
        let list = EntryList::from_vec(vec![(LogIndex(2), e.clone()), (LogIndex(5), e)]);
        let shared = list.clone();
        assert_eq!(shared.len(), 2);
        assert_eq!(shared.as_slice()[1].0, LogIndex(5));
        assert!(std::ptr::eq(list.as_slice(), shared.as_slice()));
        assert!(EntryList::empty().is_empty());
        assert_eq!(EntryList::default(), EntryList::empty());
        let collected: EntryList = list.iter().cloned().collect();
        assert_eq!(collected, list);
    }

    #[test]
    fn entry_list_view_is_window_equal_to_copy() {
        let pairs: Vec<(LogIndex, LogEntry)> = (0..5)
            .map(|i| {
                (
                    LogIndex(i + 1),
                    LogEntry::data(Term(1), id(1, i), Bytes::from_static(b"v")),
                )
            })
            .collect();
        let backing = Arc::new(pairs.clone());
        let view = EntryList::view(Arc::clone(&backing), 1, 3);
        assert_eq!(view.len(), 3);
        assert_eq!(view.as_slice()[0].0, LogIndex(2));
        // Content equality against an owned copy of the same window.
        let copy = EntryList::from_vec(pairs[1..4].to_vec());
        assert_eq!(view, copy);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |l: &EntryList| {
            let mut s = DefaultHasher::new();
            l.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&view), h(&copy));
        // The view shares the backing allocation, never copies it.
        assert!(std::ptr::eq(view.as_slice(), &backing[1..4]));
        assert_eq!(format!("{view:?}"), format!("{copy:?}"));
    }

    #[test]
    fn display_is_informative() {
        let e = LogEntry::data(Term(1), id(2, 3), Bytes::from_static(b"x"));
        let s = e.to_string();
        assert!(s.contains("data"));
        assert!(s.contains("T1"));
        assert!(s.contains("n2:3"));
    }
}
