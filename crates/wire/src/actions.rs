//! The sans-IO protocol interface.
//!
//! Protocol cores (classic Raft, Fast Raft, C-Raft) are pure state machines:
//! every input — a received message, a timer firing, a client proposal — is
//! handled by a method that mutates the node and records its effects into an
//! [`Actions`] buffer. The embedding (the simulation harness here; a real
//! network runtime in production) then performs the effects: sends the
//! messages, (re)arms the timers, applies the persistence commands to stable
//! storage, and surfaces commits to the application.
//!
//! This split keeps every protocol step deterministic and unit-testable, and
//! lets one harness drive all three protocols identically.

use des::{SimDuration, SimTime};

use crate::{ClientOutcome, ClientRequest, EntryId, LogEntry, LogIndex, NodeId, SessionId, Term};

/// The kinds of timers a protocol node can arm. Setting a timer of a kind
/// **replaces** any pending timer of the same kind on the same node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TimerKind {
    /// Follower/candidate election timeout (§III-A).
    Election,
    /// Leader heartbeat + AppendEntries dispatch period.
    Heartbeat,
    /// Leader's periodic commit-decision loop (Fast Raft §IV-B).
    LeaderTick,
    /// Proposer-side proposal timeout: resend if not committed (§IV-B).
    ProposalRetry,
    /// Joining site's join-request retry (§IV-D).
    JoinRetry,
    /// C-Raft batch flush timer (§V-A).
    BatchFlush,
    /// Election timeout for the **global** level of C-Raft.
    GlobalElection,
    /// Heartbeat for the **global** level of C-Raft.
    GlobalHeartbeat,
    /// Leader tick for the **global** level of C-Raft.
    GlobalLeaderTick,
    /// Proposal retry at the **global** level of C-Raft.
    GlobalProposalRetry,
    /// Global-level join retry (new cluster formation, §V-C).
    GlobalJoinRetry,
}

impl TimerKind {
    /// Number of timer kinds; the valid range of [`TimerKind::index`].
    /// Embeddings use it to size dense per-node timer tables (a fixed
    /// array beats a `HashMap` on the arm/cancel hot path).
    pub const COUNT: usize = 11;

    /// Dense discriminant in `0..Self::COUNT`, stable across a process.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// The kind with dense discriminant `i`, the inverse of
    /// [`TimerKind::index`].
    pub const fn from_index(i: usize) -> Option<TimerKind> {
        match i {
            0 => Some(TimerKind::Election),
            1 => Some(TimerKind::Heartbeat),
            2 => Some(TimerKind::LeaderTick),
            3 => Some(TimerKind::ProposalRetry),
            4 => Some(TimerKind::JoinRetry),
            5 => Some(TimerKind::BatchFlush),
            6 => Some(TimerKind::GlobalElection),
            7 => Some(TimerKind::GlobalHeartbeat),
            8 => Some(TimerKind::GlobalLeaderTick),
            9 => Some(TimerKind::GlobalProposalRetry),
            10 => Some(TimerKind::GlobalJoinRetry),
            _ => None,
        }
    }
}

/// A timer instruction emitted by a protocol node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimerCmd {
    /// Arm (or re-arm) the timer to fire `after` from now.
    Set {
        /// Which timer.
        kind: TimerKind,
        /// Delay from the current instant.
        after: SimDuration,
    },
    /// Disarm the timer if pending.
    Cancel {
        /// Which timer.
        kind: TimerKind,
    },
}

/// Which replicated log a commit belongs to. Single-level protocols commit
/// only to [`LogScope::Global`]; C-Raft commits to both levels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LogScope {
    /// A cluster-local log (C-Raft intra-cluster consensus).
    Local,
    /// The system-wide totally ordered log.
    Global,
}

/// Notification that an entry became committed at this site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Commit {
    /// Which log.
    pub scope: LogScope,
    /// The committed index.
    pub index: LogIndex,
    /// The committed entry.
    pub entry: LogEntry,
}

/// A write-ahead persistence command. The embedding **must** apply these to
/// stable storage before releasing the accompanying outgoing messages;
/// recovery rebuilds a node from the accumulated state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PersistCmd {
    /// Persist the current term and vote (§IV-A persistent state).
    ///
    /// C-Raft sites participate in two consensus levels with independent
    /// terms, so the command is scoped like log writes.
    SetTermVote {
        /// Which consensus level's term.
        scope: LogScope,
        /// Latest term seen.
        term: Term,
        /// Vote cast in that term, if any.
        voted_for: Option<NodeId>,
    },
    /// Persist an entry at an index (insert or overwrite).
    Insert {
        /// Which log.
        scope: LogScope,
        /// Position written.
        index: LogIndex,
        /// The entry written.
        entry: LogEntry,
    },
    /// Remove all entries at `from` and beyond.
    Truncate {
        /// Which log.
        scope: LogScope,
        /// First index removed.
        from: LogIndex,
    },
    /// Replace the decided prefix through `snapshot.last_index` with the
    /// snapshot (leader-side compaction and follower-side snapshot install
    /// alike): storage records the snapshot and drops the covered entries,
    /// keeping any consistent suffix. Recovery rebuilds from snapshot + log
    /// suffix.
    InstallSnapshot {
        /// The snapshot; its `scope` names the log it compacts.
        snapshot: crate::Snapshot,
    },
    /// Reserve [`crate::EntryId`] sequence numbers below `through` for this
    /// proposer: recovery restarts the proposal counter at the highest
    /// reserved ceiling instead of 0. Without the reservation, a recovered
    /// gateway re-mints ids it used before the crash, and every peer's
    /// id-dedup answers "already committed" **for the old entry** — the new
    /// proposal is silently dropped and its client retries forever.
    /// Reserving in blocks keeps this to one stable write per block rather
    /// than per proposal; the ids skipped by a crash are never observed.
    ReserveProposalSeqs {
        /// Which consensus level's proposal counter.
        scope: LogScope,
        /// One past the highest sequence number covered.
        through: u64,
    },
}

/// Observable protocol transitions, consumed by metrics and tests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Observation {
    /// Node became candidate and started an election.
    ElectionStarted {
        /// The new term.
        term: Term,
    },
    /// Node won an election.
    BecameLeader {
        /// The term led.
        term: Term,
    },
    /// Node reverted to (or confirmed) follower state.
    BecameFollower {
        /// The current term.
        term: Term,
    },
    /// A proposal issued *by this node* was acknowledged committed.
    ProposalCommitted {
        /// The proposal.
        id: EntryId,
        /// Where it landed.
        index: LogIndex,
        /// Which log it landed in.
        scope: LogScope,
    },
    /// The leader committed via the fast track (fast quorum of identical
    /// votes, §IV-B).
    FastTrackCommit {
        /// Committed index.
        index: LogIndex,
    },
    /// The leader committed via the classic track.
    ClassicTrackCommit {
        /// Committed index.
        index: LogIndex,
    },
    /// Leader suspects a member left silently (member timeout, §IV-D).
    MemberSuspected {
        /// The unresponsive member.
        node: NodeId,
    },
    /// A configuration entry committed; quorum sizes now follow it.
    ConfigCommitted {
        /// New voting-member count.
        members: usize,
    },
    /// A joining site finished catch-up and was proposed into the config.
    JoinAccepted {
        /// The joining site.
        node: NodeId,
    },
    /// New-leader recovery finished (self-approved entries replayed).
    RecoveryCompleted {
        /// Number of self-approved entries received from voters.
        entries: usize,
    },
    /// The leader's liveness guard fired: the classic track stalled for
    /// `hole_fill_ticks` decision ticks on a log hole and a no-op was
    /// re-proposed at the blocked index. Counted by the harness to measure
    /// how often hole repair triggers under churn. Proactive repairs (an
    /// append ack revealed the stall before the tick guard elapsed) emit
    /// the same observation.
    HoleRepairTriggered {
        /// The blocked index being repaired.
        index: LogIndex,
    },
    /// A site compacted its log prefix into a snapshot.
    LogCompacted {
        /// Which log was compacted.
        scope: LogScope,
        /// The new compaction horizon.
        through: LogIndex,
        /// Entries still retained after compaction.
        retained: usize,
    },
    /// A site replaced its log prefix with a snapshot received from the
    /// leader (catch-up past the leader's compaction horizon).
    SnapshotInstalled {
        /// Which log the snapshot covers.
        scope: LogScope,
        /// The snapshot's last covered index.
        last_index: LogIndex,
    },
    /// The typed answer to a [`ClientRequest`] submitted *at this node*
    /// (the gateway): the embedding relays it to the caller.
    ClientResponse {
        /// The issuing session.
        session: SessionId,
        /// The request's sequence number.
        seq: u64,
        /// What happened.
        outcome: ClientOutcome,
    },
    /// A committed session-tagged operation took effect (first application)
    /// at this site. Emitted by every applying replica; tests use it to
    /// prove exactly-once semantics (per `(session, seq)` and scope, all
    /// emissions name the same index).
    SessionApplied {
        /// Which log the entry committed in.
        scope: LogScope,
        /// The applying session.
        session: SessionId,
        /// The applied sequence number.
        seq: u64,
        /// Where it took effect.
        index: LogIndex,
    },
    /// A committed entry was recognized as a session duplicate and its
    /// application skipped (the retry-suppression path working as designed).
    SessionDuplicate {
        /// Which log the duplicate committed in.
        scope: LogScope,
        /// The session.
        session: SessionId,
        /// The duplicated sequence number.
        seq: u64,
        /// Where the first application landed (ZERO if unknown).
        first_index: LogIndex,
    },
    /// An idle session was garbage-collected from the applied
    /// [`crate::SessionTable`]: its last activity lies more than the
    /// configured `session_ttl` committed indices below the commit floor.
    /// Emitted by every applying replica (eviction is deterministic, a pure
    /// function of the committed sequence) and folded into the commit
    /// digest via [`crate::fold_session_evicted`]. Writes from the evicted
    /// session are answered with the terminal
    /// [`crate::ClientOutcome::SessionExpired`] from now on (never
    /// `Duplicate`, and never re-applied — the apply-time check skips a
    /// committed duplicate that outlived the eviction).
    SessionEvicted {
        /// Which log's applied state evicted the session.
        scope: LogScope,
        /// The expired session.
        session: SessionId,
        /// The commit index at which the eviction took effect.
        at: LogIndex,
    },
    /// C-Raft invariant probe (ROADMAP snapshot item b): a (re)activating
    /// cluster leader found its reconstructed global log view
    /// **front-gapped** — entries exist above a hole that starts right
    /// after the snapshot horizon, because local compaction discarded
    /// global-state entries the cached global snapshot does not cover. The
    /// view is safe to hold (commits never cross the gap and §IV-B slot
    /// voting protects decided indices) but the site must catch up via the
    /// global leader's resend or snapshot before the gap region is usable.
    GlobalViewGap {
        /// The snapshot horizon the view is contiguous up to.
        horizon: LogIndex,
        /// The first retained entry above the gap.
        first_retained: LogIndex,
    },
    /// A linearizable read was answered locally from a live leader lease —
    /// zero messages on the wire (see `wire::LeaseState` and
    /// `docs/CONSISTENCY.md`).
    LeaseRead {
        /// The issuing session.
        session: SessionId,
        /// The request's sequence number.
        seq: u64,
        /// The commit floor the answer carried.
        floor: LogIndex,
    },
    /// A linearizable read was confirmed through the ReadIndex quorum round
    /// (the lease was lapsed, disabled, or not yet enabled).
    ReadIndexRead {
        /// The issuing session.
        session: SessionId,
        /// The request's sequence number.
        seq: u64,
        /// The commit floor the answer carried.
        floor: LogIndex,
    },
    /// An incoming message was ignored, with the reason (not-in-config,
    /// stale term, duplicate, ...). Useful in tests.
    MessageIgnored {
        /// Why it was dropped.
        reason: &'static str,
    },
}

/// Effect buffer filled by protocol handlers.
///
/// # Examples
///
/// ```
/// use wire::{Actions, NodeId, TimerKind};
/// use des::SimDuration;
///
/// let mut out: Actions<&'static str> = Actions::new();
/// out.send(NodeId(2), "hello");
/// out.set_timer(TimerKind::Election, SimDuration::from_millis(150));
/// assert_eq!(out.sends.len(), 1);
/// assert_eq!(out.timers.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Actions<M> {
    /// Messages to transmit, in emission order.
    pub sends: Vec<(NodeId, M)>,
    /// Timer commands, in emission order.
    pub timers: Vec<TimerCmd>,
    /// Entries that became committed during this step.
    pub commits: Vec<Commit>,
    /// Persistence commands; must be applied before releasing `sends`.
    pub persists: Vec<PersistCmd>,
    /// Observability events.
    pub observations: Vec<Observation>,
}

impl<M> Default for Actions<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Actions<M> {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Actions {
            sends: Vec::new(),
            timers: Vec::new(),
            commits: Vec::new(),
            persists: Vec::new(),
            observations: Vec::new(),
        }
    }

    /// Queues a message to `to`.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.sends.push((to, msg));
    }

    /// Queues the same message to every node in `to` (cloning per recipient).
    pub fn send_many(&mut self, to: impl IntoIterator<Item = NodeId>, msg: M)
    where
        M: Clone,
    {
        for n in to {
            self.sends.push((n, msg.clone()));
        }
    }

    /// Arms (or re-arms) a timer.
    pub fn set_timer(&mut self, kind: TimerKind, after: SimDuration) {
        self.timers.push(TimerCmd::Set { kind, after });
    }

    /// Disarms a timer.
    pub fn cancel_timer(&mut self, kind: TimerKind) {
        self.timers.push(TimerCmd::Cancel { kind });
    }

    /// Records a commit notification.
    pub fn commit(&mut self, scope: LogScope, index: LogIndex, entry: LogEntry) {
        self.commits.push(Commit {
            scope,
            index,
            entry,
        });
    }

    /// Records a persistence command.
    pub fn persist(&mut self, cmd: PersistCmd) {
        self.persists.push(cmd);
    }

    /// Records an observation.
    pub fn observe(&mut self, obs: Observation) {
        self.observations.push(obs);
    }

    /// `true` if the step produced no effects at all.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty()
            && self.timers.is_empty()
            && self.commits.is_empty()
            && self.persists.is_empty()
            && self.observations.is_empty()
    }

    /// Clears all buffered effects (for buffer reuse).
    pub fn clear(&mut self) {
        self.sends.clear();
        self.timers.clear();
        self.commits.clear();
        self.persists.clear();
        self.observations.clear();
    }

    /// Moves all effects from `other` into `self`, preserving order.
    pub fn absorb(&mut self, other: &mut Actions<M>) {
        self.sends.append(&mut other.sends);
        self.timers.append(&mut other.timers);
        self.commits.append(&mut other.commits);
        self.persists.append(&mut other.persists);
        self.observations.append(&mut other.observations);
    }
}

/// A message that knows its encoded size, for bandwidth accounting.
pub trait Message: Clone + core::fmt::Debug {
    /// Exact bytes this message occupies on the wire.
    fn wire_size(&self) -> usize;
}

/// The uniform driving interface implemented by every protocol node.
///
/// The harness calls these handlers from the event loop; nodes must never
/// block, sleep, or read clocks — time reaches them only through timers and
/// the embedding-stamped local clock of
/// [`ConsensusProtocol::set_local_clock`].
pub trait ConsensusProtocol {
    /// The protocol's message type.
    type Message: Message;

    /// This node's id.
    fn id(&self) -> NodeId;

    /// Informs the node of its **local** wall clock before a handler runs.
    /// The value is an input like any message — different nodes' clocks may
    /// disagree by up to the modeled skew bound, and nothing in a protocol
    /// core may treat it as shared truth. Used only by the leader-lease
    /// read path; the default no-op leaves a node *clockless*, in which
    /// case all lease logic is inert and linearizable reads always take the
    /// ReadIndex quorum round (exactly the pre-lease behavior — this is
    /// what keeps purely event-driven tests deterministic).
    fn set_local_clock(&mut self, _now: SimTime) {}

    /// Handles a message received from `from`.
    fn on_message(&mut self, from: NodeId, msg: Self::Message, out: &mut Actions<Self::Message>);

    /// Handles a timer of `kind` firing.
    fn on_timer(&mut self, kind: TimerKind, out: &mut Actions<Self::Message>);

    /// Submits a typed client request at this node (the gateway). The
    /// request is answered asynchronously through
    /// [`Observation::ClientResponse`] carrying a [`ClientOutcome`]; the
    /// caller retries the same `(session, seq)` on `Redirect`/`Retry`
    /// outcomes or after a timeout — writes are exactly-once under retry by
    /// the session dedup table.
    fn on_client_request(&mut self, req: ClientRequest, out: &mut Actions<Self::Message>);

    /// Called once when the node starts (or restarts after a crash) to arm
    /// initial timers.
    fn bootstrap(&mut self, out: &mut Actions<Self::Message>);

    /// Number of committed-but-unapplied entries queued for pipelined apply.
    ///
    /// Zero for protocols (or configurations) that apply inline at the
    /// commit point — the default. When non-zero, the embedding must call
    /// [`ConsensusProtocol::drain_applies`] as a separate stage before
    /// handing the node its next event, so apply work overlaps message
    /// I/O instead of extending the protocol step.
    fn pending_applies(&self) -> u64 {
        0
    }

    /// Drains the pipelined-apply queue: applies every queued committed
    /// entry (in commit order) to the state machine, emitting the same
    /// [`Actions`] the inline path would have produced at the commit point
    /// (commit notifications, client responses, snapshot persists). A
    /// no-op when the queue is empty or the protocol applies inline.
    fn drain_applies(&mut self, _out: &mut Actions<Self::Message>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_many_clones_per_recipient() {
        let mut a: Actions<u32> = Actions::new();
        a.send_many([NodeId(1), NodeId(2), NodeId(3)], 9);
        assert_eq!(a.sends.len(), 3);
        assert!(a.sends.iter().all(|(_, m)| *m == 9));
    }

    #[test]
    fn is_empty_and_clear() {
        let mut a: Actions<u32> = Actions::new();
        assert!(a.is_empty());
        a.observe(Observation::MessageIgnored { reason: "test" });
        assert!(!a.is_empty());
        a.clear();
        assert!(a.is_empty());
    }

    #[test]
    fn absorb_preserves_order() {
        let mut a: Actions<u32> = Actions::new();
        let mut b: Actions<u32> = Actions::new();
        a.send(NodeId(1), 1);
        b.send(NodeId(2), 2);
        b.set_timer(TimerKind::Election, SimDuration::from_millis(1));
        a.absorb(&mut b);
        assert_eq!(a.sends, vec![(NodeId(1), 1), (NodeId(2), 2)]);
        assert_eq!(a.timers.len(), 1);
        assert!(b.is_empty());
    }

    #[test]
    fn commit_records_scope() {
        use crate::{EntryId, LogEntry, Term};
        let mut a: Actions<u32> = Actions::new();
        let e = LogEntry::noop(Term(1), EntryId::new(NodeId(1), 0));
        a.commit(LogScope::Global, LogIndex(1), e.clone());
        a.commit(LogScope::Local, LogIndex(2), e);
        assert_eq!(a.commits[0].scope, LogScope::Global);
        assert_eq!(a.commits[1].scope, LogScope::Local);
    }
}
