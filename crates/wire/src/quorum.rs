//! Quorum arithmetic for classic and fast tracks.
//!
//! Fast Raft (following Fast Paxos as analysed by Zhao, *Fast Paxos Made
//! Easy*) uses two quorum sizes over a configuration of `m` voting members:
//!
//! - **classic quorum**: a strict majority, `⌊m/2⌋ + 1`;
//! - **fast quorum**: `⌈3m/4⌉`.
//!
//! These sizes guarantee the two intersection properties safety rests on:
//!
//! 1. any two classic quorums intersect (standard Raft);
//! 2. for any fast quorum `R` and classic quorum `Q`, the votes from `R∩Q`
//!    form a *strict majority of possible conflicts* inside `Q` — formally
//!    `2·fq + cq ≥ 2m + 1` — so an entry voted by a fast quorum has the
//!    most votes in *every* classic quorum the leader might gather.
//!
//! Property tests at the bottom of this module check both inequalities for
//! all configuration sizes up to 4096.

/// Size of a classic (majority) quorum for `m` voting members.
///
/// # Panics
///
/// Panics if `m == 0`; an empty configuration has no quorums.
///
/// # Examples
///
/// ```
/// assert_eq!(wire::classic_quorum(5), 3);
/// assert_eq!(wire::classic_quorum(4), 3);
/// assert_eq!(wire::classic_quorum(1), 1);
/// ```
pub fn classic_quorum(m: usize) -> usize {
    assert!(m > 0, "no quorum exists for an empty configuration");
    m / 2 + 1
}

/// Size of a fast quorum, `⌈3m/4⌉`, for `m` voting members.
///
/// # Panics
///
/// Panics if `m == 0`.
///
/// # Examples
///
/// ```
/// assert_eq!(wire::fast_quorum(5), 4); // the paper's 5-site setup
/// assert_eq!(wire::fast_quorum(4), 3);
/// assert_eq!(wire::fast_quorum(1), 1);
/// ```
pub fn fast_quorum(m: usize) -> usize {
    assert!(m > 0, "no quorum exists for an empty configuration");
    (3 * m).div_ceil(4)
}

/// `true` if `count` acknowledgements reach a classic quorum of `m` members.
pub fn is_classic_quorum(count: usize, m: usize) -> bool {
    m > 0 && count >= classic_quorum(m)
}

/// `true` if `count` identical votes reach a fast quorum of `m` members.
pub fn is_fast_quorum(count: usize, m: usize) -> bool {
    m > 0 && count >= fast_quorum(m)
}

/// The number of conflicting votes that can coexist with a fast-quorum vote
/// inside a classic quorum: `m - fast_quorum(m)` sites can have voted for
/// something else, so within a classic quorum `Q` the chosen entry holds at
/// least `classic_quorum(m) - (m - fast_quorum(m))` votes.
///
/// Fast Raft's leader decision rule ("insert the entry with the most votes")
/// is safe exactly because this lower bound exceeds the conflict bound.
pub fn min_chosen_votes_in_classic_quorum(m: usize) -> usize {
    classic_quorum(m).saturating_sub(m - fast_quorum(m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_quorum_sizes() {
        // §III-B and §VI-B: five sites, classic quorum 3, fast quorum 4.
        assert_eq!(classic_quorum(5), 3);
        assert_eq!(fast_quorum(5), 4);
        // After two silent leaves (fig 4): three sites.
        assert_eq!(classic_quorum(3), 2);
        assert_eq!(fast_quorum(3), 3);
    }

    #[test]
    fn small_configurations() {
        for (m, cq, fq) in [
            (1, 1, 1),
            (2, 2, 2),
            (3, 2, 3),
            (4, 3, 3),
            (5, 3, 4),
            (6, 4, 5),
            (7, 4, 6),
            (8, 5, 6),
            (9, 5, 7),
            (10, 6, 8),
        ] {
            assert_eq!(classic_quorum(m), cq, "classic m={m}");
            assert_eq!(fast_quorum(m), fq, "fast m={m}");
        }
    }

    #[test]
    fn predicates() {
        assert!(is_classic_quorum(3, 5));
        assert!(!is_classic_quorum(2, 5));
        assert!(is_fast_quorum(4, 5));
        assert!(!is_fast_quorum(3, 5));
        assert!(!is_classic_quorum(0, 0));
        assert!(!is_fast_quorum(0, 0));
    }

    #[test]
    #[should_panic(expected = "empty configuration")]
    fn zero_members_panics() {
        classic_quorum(0);
    }

    proptest! {
        /// Two classic quorums always intersect: 2·cq ≥ m + 1.
        #[test]
        fn classic_quorums_intersect(m in 1usize..4096) {
            prop_assert!(2 * classic_quorum(m) > m);
        }

        /// A fast and a classic quorum always intersect: fq + cq ≥ m + 1.
        #[test]
        fn fast_and_classic_intersect(m in 1usize..4096) {
            prop_assert!(fast_quorum(m) + classic_quorum(m) > m);
        }

        /// Zhao's plurality condition: 2·fq + cq ≥ 2m + 1, which makes the
        /// fast-quorum entry a strict plurality in every classic quorum.
        #[test]
        fn chosen_entry_dominates_every_classic_quorum(m in 1usize..4096) {
            prop_assert!(2 * fast_quorum(m) + classic_quorum(m) > 2 * m);
            // Equivalent statement in vote counts: the minimum number of
            // chosen-entry votes in any classic quorum strictly exceeds the
            // maximum number of votes any conflicting entry can have there.
            let conflicts = m - fast_quorum(m);
            prop_assert!(min_chosen_votes_in_classic_quorum(m) > conflicts);
        }

        /// Fast quorums are never smaller than classic quorums.
        #[test]
        fn fast_at_least_classic(m in 1usize..4096) {
            prop_assert!(fast_quorum(m) >= classic_quorum(m));
            prop_assert!(fast_quorum(m) <= m);
        }

        /// Exhaustive simulation of the example in §III-B: if a fast quorum
        /// votes for entry `e`, then in any classic quorum of received votes
        /// `e` has strictly more votes than any other single entry.
        #[test]
        fn plurality_holds_under_arbitrary_vote_loss(
            m in 1usize..64,
            seed in any::<u64>(),
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let fq = fast_quorum(m);
            let cq = classic_quorum(m);
            // Sites 0..fq voted e; the rest voted for distinct conflicting
            // entries (worst case: all conflicts differ, or all the same —
            // try the adversarial case where all conflicts agree on f).
            // Pick a random classic quorum of sites whose votes arrive.
            let mut sites: Vec<usize> = (0..m).collect();
            for i in (1..sites.len()).rev() {
                let j = rng.gen_range(0..=i);
                sites.swap(i, j);
            }
            let received = &sites[..cq];
            let e_votes = received.iter().filter(|&&s| s < fq).count();
            let f_votes = received.len() - e_votes; // all conflicts collude
            prop_assert!(e_votes > f_votes,
                "m={m} fq={fq} cq={cq}: e={e_votes} f={f_votes}");
        }
    }
}
