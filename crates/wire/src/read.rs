//! Shared leader-side ReadIndex machinery.
//!
//! Every protocol answers [`crate::Consistency::Linearizable`] reads the
//! same way: the leader captures its commit floor, tags its next
//! AppendEntries round with a fresh **probe** number, and releases the
//! answer only once a classic quorum of acks echoes a probe at least that
//! fresh — proving it was still the leader *after* the read was issued, so
//! the captured floor reflects every completed operation. This module holds
//! the machinery that used to be duplicated (and slowly diverging) between
//! `raft::RaftNode` and `consensus_core::FastRaftEngine`: the pending-read
//! queue, the probe counter, retry-idempotent registration, and the
//! quorum-counting ack sweep.
//!
//! The queue is deliberately **message-agnostic**: it never constructs or
//! sends protocol messages. Callers embed [`ReadIndexQueue::probe`] into
//! their own AppendEntries variant, feed echoed probes back through
//! [`ReadIndexQueue::note_ack`], and answer the returned confirmed reads
//! (or the [`ReadIndexQueue::drain`]ed ones, with `Retry`, on leadership
//! loss) through their own reply path — that is the whole surface the two
//! protocols actually differed in.

use std::collections::BTreeSet;

use crate::{Configuration, LogIndex, NodeId, SessionId};

/// A linearizable read awaiting its ReadIndex leadership confirmation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PendingRead {
    /// The issuing session.
    pub session: SessionId,
    /// The request's sequence number.
    pub seq: u64,
    /// Who to answer (`self` for reads registered at the leader-gateway).
    pub reply_to: NodeId,
    /// The commit floor captured at registration; returned once confirmed.
    pub floor: LogIndex,
    /// Probe the confirmation round must reach (acks echoing an older probe
    /// prove nothing about leadership at read time).
    probe: u64,
    /// Members that acked a sufficiently fresh probe.
    acks: BTreeSet<NodeId>,
}

/// The leader's queue of in-flight ReadIndex rounds plus the monotone probe
/// counter its heartbeats carry.
#[derive(Clone, Debug, Default)]
pub struct ReadIndexQueue {
    pending: Vec<PendingRead>,
    probe: u64,
}

impl ReadIndexQueue {
    /// An empty queue.
    pub fn new() -> Self {
        ReadIndexQueue::default()
    }

    /// The probe value heartbeats must carry so their acks count toward
    /// every registered round.
    pub fn probe(&self) -> u64 {
        self.probe
    }

    /// `true` when no read awaits confirmation.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Number of reads awaiting confirmation.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// `true` when this exact read is already being confirmed. Client
    /// resubmissions must not stack a second round (it would grow unbounded
    /// while the leader lacks an ack quorum, then answer in duplicate);
    /// the caller just re-probes for liveness instead.
    pub fn is_pending(&self, session: SessionId, seq: u64, reply_to: NodeId) -> bool {
        self.pending
            .iter()
            .any(|r| r.session == session && r.seq == seq && r.reply_to == reply_to)
    }

    /// Registers a read at the captured commit `floor` under a fresh probe.
    /// The caller dispatches a heartbeat round immediately afterwards so
    /// confirmation does not wait out the heartbeat period.
    pub fn register(&mut self, session: SessionId, seq: u64, reply_to: NodeId, floor: LogIndex) {
        self.probe += 1;
        self.pending.push(PendingRead {
            session,
            seq,
            reply_to,
            floor,
            probe: self.probe,
            acks: BTreeSet::new(),
        });
    }

    /// Counts a follower's current-term heartbeat ack (echoing `probe`)
    /// toward every pending round, returning the reads whose confirmation
    /// quorum is now complete; the caller answers them at their floor. The
    /// leader's own (implicit) vote is counted iff it is a voting member of
    /// `config`; acks from non-members are ignored, and an ack `from` the
    /// leader itself never lands in the explicit set (the implicit self
    /// vote already covers it — counting both would let a self-addressed
    /// heartbeat confirm a read without proving anything about the rest of
    /// the quorum).
    pub fn note_ack(
        &mut self,
        from: NodeId,
        probe: u64,
        config: &Configuration,
        leader: NodeId,
    ) -> Vec<PendingRead> {
        if self.pending.is_empty() || !config.contains(from) {
            return Vec::new();
        }
        let quorum = config.classic_quorum();
        let self_vote = usize::from(config.contains(leader));
        let mut confirmed = Vec::new();
        self.pending.retain_mut(|r| {
            if probe >= r.probe && from != leader {
                r.acks.insert(from);
            }
            if r.acks.len() + self_vote >= quorum {
                confirmed.push(r.clone());
                false
            } else {
                true
            }
        });
        confirmed
    }

    /// Takes every pending round out of the queue (leadership lost or
    /// re-confirmed under a different term): the caller must answer each
    /// with `Retry` — the captured floors prove nothing anymore.
    pub fn drain(&mut self) -> Vec<PendingRead> {
        std::mem::take(&mut self.pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: u64) -> Configuration {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn confirmation_needs_fresh_probe_quorum() {
        let mut q = ReadIndexQueue::new();
        let c = cfg(5); // classic quorum 3: leader + 2 acks
        q.register(SessionId(1), 1, NodeId(0), LogIndex(7));
        let p = q.probe();
        // A stale probe never counts.
        assert!(q.note_ack(NodeId(1), p - 1, &c, NodeId(0)).is_empty());
        assert!(q.note_ack(NodeId(1), p, &c, NodeId(0)).is_empty());
        let confirmed = q.note_ack(NodeId(2), p, &c, NodeId(0));
        assert_eq!(confirmed.len(), 1);
        assert_eq!(confirmed[0].floor, LogIndex(7));
        assert!(q.is_empty());
    }

    #[test]
    fn duplicate_acks_do_not_double_count() {
        let mut q = ReadIndexQueue::new();
        let c = cfg(5);
        q.register(SessionId(1), 1, NodeId(0), LogIndex(1));
        let p = q.probe();
        assert!(q.note_ack(NodeId(1), p, &c, NodeId(0)).is_empty());
        assert!(q.note_ack(NodeId(1), p, &c, NodeId(0)).is_empty());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn leader_self_ack_never_double_counts() {
        let mut q = ReadIndexQueue::new();
        let c = cfg(3); // quorum 2: implicit self vote + 1 follower ack
        q.register(SessionId(1), 1, NodeId(0), LogIndex(3));
        let p = q.probe();
        // A self-addressed ack must not stack on the implicit self vote
        // and confirm without any follower having echoed the probe.
        assert!(q.note_ack(NodeId(0), p, &c, NodeId(0)).is_empty());
        assert!(q.note_ack(NodeId(0), p, &c, NodeId(0)).is_empty());
        assert_eq!(q.len(), 1);
        assert_eq!(q.note_ack(NodeId(1), p, &c, NodeId(0)).len(), 1);
    }

    #[test]
    fn non_member_acks_are_ignored() {
        let mut q = ReadIndexQueue::new();
        let c = cfg(3); // quorum 2: leader + 1
        q.register(SessionId(1), 1, NodeId(0), LogIndex(1));
        let p = q.probe();
        assert!(q.note_ack(NodeId(9), p, &c, NodeId(0)).is_empty());
        assert_eq!(q.note_ack(NodeId(1), p, &c, NodeId(0)).len(), 1);
    }

    #[test]
    fn retry_idempotence_via_is_pending() {
        let mut q = ReadIndexQueue::new();
        q.register(SessionId(1), 4, NodeId(2), LogIndex(1));
        assert!(q.is_pending(SessionId(1), 4, NodeId(2)));
        assert!(!q.is_pending(SessionId(1), 4, NodeId(3)));
        assert!(!q.is_pending(SessionId(1), 5, NodeId(2)));
    }

    #[test]
    fn drain_fails_everything() {
        let mut q = ReadIndexQueue::new();
        q.register(SessionId(1), 1, NodeId(0), LogIndex(1));
        q.register(SessionId(2), 1, NodeId(3), LogIndex(2));
        let drained = q.drain();
        assert_eq!(drained.len(), 2);
        assert!(q.is_empty());
        // The probe counter survives the drain: later rounds stay fresher
        // than anything acked before the leadership change.
        assert_eq!(q.probe(), 2);
    }

    #[test]
    fn later_probe_confirms_earlier_round() {
        let mut q = ReadIndexQueue::new();
        let c = cfg(3);
        q.register(SessionId(1), 1, NodeId(0), LogIndex(5));
        let p1 = q.probe();
        q.register(SessionId(2), 1, NodeId(0), LogIndex(6));
        let p2 = q.probe();
        assert!(p2 > p1);
        // One ack at the newest probe confirms both rounds.
        let confirmed = q.note_ack(NodeId(1), p2, &c, NodeId(0));
        assert_eq!(confirmed.len(), 2);
    }
}
