//! # `wire` — consensus types and binary wire codec
//!
//! The shared vocabulary of the whole stack:
//!
//! - identifiers: [`NodeId`], [`ClusterId`], [`Term`], [`LogIndex`],
//!   [`EntryId`];
//! - quorum arithmetic: [`classic_quorum`], [`fast_quorum`] with the
//!   intersection properties Fast Raft's safety proof rests on;
//! - membership: [`Configuration`] (deterministically ordered);
//! - the log: [`LogEntry`], [`Payload`], [`Approval`], and [`SparseLog`]
//!   (Fast Raft logs may contain holes, and a decided prefix may be
//!   compacted into a [`Snapshot`]);
//! - the sans-IO protocol interface: [`Actions`], [`ConsensusProtocol`],
//!   [`TimerKind`], [`PersistCmd`], [`Observation`];
//! - the typed client contract: [`ClientRequest`] (sessioned writes and
//!   reads with a [`Consistency`] level), [`ClientOutcome`], and the
//!   exactly-once [`SessionTable`] carried inside snapshots;
//! - a compact binary codec ([`Wire`], [`Encoder`], [`Decoder`]) used for
//!   exact bandwidth accounting and verified by roundtrip property tests.
//!
//! # Examples
//!
//! ```
//! use wire::{classic_quorum, fast_quorum, Configuration, NodeId};
//!
//! let cfg: Configuration = (0..5).map(NodeId).collect();
//! assert_eq!(cfg.classic_quorum(), classic_quorum(5));
//! assert_eq!(cfg.fast_quorum(), fast_quorum(5));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actions;
mod client;
mod codec;
mod config;
mod entry;
mod envelope;
mod ids;
mod lease;
mod log;
mod quorum;
mod read;
mod snapshot;

pub use actions::{
    Actions, Commit, ConsensusProtocol, LogScope, Message, Observation, PersistCmd, TimerCmd,
    TimerKind,
};
pub use client::{
    session_state_current, ClientOp, ClientOutcome, ClientRequest, Consistency, SessionApply,
    SessionId, SessionSlot, SessionTable,
};
pub use codec::{DecodeError, Decoder, Encoder, Wire};
pub use config::{AppendBudget, Configuration};
pub use entry::{Approval, Batch, BatchItem, EntryList, GlobalState, LogEntry, Payload};
pub use envelope::{GroupFrame, ShardEnvelope};
pub use ids::{ClusterId, EntryId, GroupId, LogIndex, NodeId, Term};
pub use lease::{LeaseState, VoteHold};
pub use log::{SparseLog, MAX_INSERT_WINDOW};
pub use quorum::{
    classic_quorum, fast_quorum, is_classic_quorum, is_fast_quorum,
    min_chosen_votes_in_classic_quorum,
};
pub use read::{PendingRead, ReadIndexQueue};
pub use snapshot::{
    fold_commit_digest, fold_session_digest, fold_session_evicted, Snapshot,
    SNAPSHOT_FORMAT_VERSION,
};
