//! Membership configurations and replication budgets.
//!
//! A configuration is the set of voting members of a consensus group. It is
//! replicated through the log itself (a configuration entry); each site obeys
//! the configuration most recently *inserted* into its log (§III-A, §IV-D of
//! the paper). Safety requires configurations change by **one site at a
//! time**, which [`Configuration::diff_is_single_change`] lets callers check.
//!
//! [`AppendBudget`] caps how much one `AppendEntries` dispatch may carry —
//! by entry count *and* by encoded bytes, because in the wide-area regimes
//! the paper targets the binding constraint is link capacity, not entry
//! count.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::{classic_quorum, fast_quorum, NodeId};

/// The set of voting members of a consensus group.
///
/// Internally ordered (a `BTreeSet`) so iteration — and therefore message
/// emission order, and therefore whole-simulation traces — is deterministic.
///
/// # Examples
///
/// ```
/// use wire::{Configuration, NodeId};
///
/// let cfg = Configuration::new([NodeId(1), NodeId(2), NodeId(3)]);
/// assert_eq!(cfg.len(), 3);
/// assert_eq!(cfg.classic_quorum(), 2);
/// assert_eq!(cfg.fast_quorum(), 3);
/// assert!(cfg.contains(NodeId(2)));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Configuration {
    members: BTreeSet<NodeId>,
}

impl Configuration {
    /// Creates a configuration from any collection of members.
    pub fn new(members: impl IntoIterator<Item = NodeId>) -> Self {
        Configuration {
            members: members.into_iter().collect(),
        }
    }

    /// The empty configuration (used only as a pre-bootstrap placeholder).
    pub fn empty() -> Self {
        Configuration::default()
    }

    /// Number of voting members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` if there are no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// `true` if `node` is a voting member.
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.contains(&node)
    }

    /// Iterates members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.members.iter().copied()
    }

    /// Members other than `me`, in ascending id order.
    pub fn peers(&self, me: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.members.iter().copied().filter(move |&n| n != me)
    }

    /// Classic (majority) quorum size for this configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is empty.
    pub fn classic_quorum(&self) -> usize {
        classic_quorum(self.members.len())
    }

    /// Fast quorum size (`⌈3m/4⌉`) for this configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is empty.
    pub fn fast_quorum(&self) -> usize {
        fast_quorum(self.members.len())
    }

    /// A new configuration with `node` added.
    #[must_use]
    pub fn with_member(&self, node: NodeId) -> Configuration {
        let mut members = self.members.clone();
        members.insert(node);
        Configuration { members }
    }

    /// A new configuration with `node` removed.
    #[must_use]
    pub fn without_member(&self, node: NodeId) -> Configuration {
        let mut members = self.members.clone();
        members.remove(&node);
        Configuration { members }
    }

    /// `true` if `next` differs from `self` by at most one added **or**
    /// removed member — the precondition for safe reconfiguration (§IV-D).
    pub fn diff_is_single_change(&self, next: &Configuration) -> bool {
        let added = next.members.difference(&self.members).count();
        let removed = self.members.difference(&next.members).count();
        added + removed <= 1
    }

    /// Members as a sorted `Vec`, for wire encoding and display.
    pub fn to_vec(&self) -> Vec<NodeId> {
        self.members.iter().copied().collect()
    }
}

/// Byte- and entry-count budget for one replication batch.
///
/// Batch assembly admits entries until **either** cap is reached, but always
/// admits at least one entry so an over-sized single entry cannot wedge
/// replication: a batch with one entry is valid regardless of its size, and
/// the follower's ack lets the window advance past it.
///
/// # Examples
///
/// ```
/// use wire::AppendBudget;
///
/// let budget = AppendBudget::new(128, 1024);
/// assert!(budget.admits(0, 0, 4096));      // first entry always fits
/// assert!(!budget.admits(1, 900, 200));    // would exceed the byte cap
/// assert!(!budget.admits(128, 0, 1));      // entry cap reached
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AppendBudget {
    /// Maximum entries per batch.
    pub max_entries: usize,
    /// Maximum encoded payload bytes per batch.
    pub max_bytes: usize,
}

impl AppendBudget {
    /// Creates a budget from both caps.
    ///
    /// # Panics
    ///
    /// Panics if either cap is zero (a zero budget could never replicate).
    pub fn new(max_entries: usize, max_bytes: usize) -> Self {
        assert!(max_entries > 0, "entry budget must be positive");
        assert!(max_bytes > 0, "byte budget must be positive");
        AppendBudget {
            max_entries,
            max_bytes,
        }
    }

    /// `true` if a batch already holding `entries` entries of `bytes` total
    /// encoded size may admit one more entry of `next_bytes`.
    pub fn admits(&self, entries: usize, bytes: usize, next_bytes: usize) -> bool {
        if entries == 0 {
            return true; // guarantee progress
        }
        entries < self.max_entries && bytes.saturating_add(next_bytes) <= self.max_bytes
    }
}

impl FromIterator<NodeId> for Configuration {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        Configuration::new(iter)
    }
}

impl Extend<NodeId> for Configuration {
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, iter: I) {
        self.members.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Configuration {
    type Item = NodeId;
    type IntoIter = std::iter::Copied<std::collections::btree_set::Iter<'a, NodeId>>;
    fn into_iter(self) -> Self::IntoIter {
        self.members.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(ids: impl IntoIterator<Item = u64>) -> Configuration {
        Configuration::new(ids.into_iter().map(NodeId))
    }

    #[test]
    fn quorum_sizes_track_membership() {
        let five = cfg(0..5);
        assert_eq!(five.classic_quorum(), 3);
        assert_eq!(five.fast_quorum(), 4);
        let three = five.without_member(NodeId(0)).without_member(NodeId(1));
        assert_eq!(three.classic_quorum(), 2);
        assert_eq!(three.fast_quorum(), 3);
    }

    #[test]
    fn peers_excludes_self() {
        let c = cfg(0..3);
        let peers: Vec<NodeId> = c.peers(NodeId(1)).collect();
        assert_eq!(peers, vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn with_and_without_member() {
        let c = cfg(0..2);
        let grown = c.with_member(NodeId(9));
        assert!(grown.contains(NodeId(9)));
        assert_eq!(grown.len(), 3);
        // Adding an existing member is a no-op.
        assert_eq!(grown.with_member(NodeId(9)), grown);
        let shrunk = grown.without_member(NodeId(0));
        assert!(!shrunk.contains(NodeId(0)));
        assert_eq!(shrunk.len(), 2);
    }

    #[test]
    fn single_change_detection() {
        let c = cfg(0..3);
        assert!(c.diff_is_single_change(&c));
        assert!(c.diff_is_single_change(&c.with_member(NodeId(7))));
        assert!(c.diff_is_single_change(&c.without_member(NodeId(0))));
        // Replacing one member is two changes.
        let swapped = c.without_member(NodeId(0)).with_member(NodeId(7));
        assert!(!c.diff_is_single_change(&swapped));
        // Adding two at once is two changes.
        let grown2 = c.with_member(NodeId(7)).with_member(NodeId(8));
        assert!(!c.diff_is_single_change(&grown2));
    }

    #[test]
    fn iteration_is_sorted_and_deterministic() {
        let c = Configuration::new([NodeId(5), NodeId(1), NodeId(3)]);
        let order: Vec<u64> = c.iter().map(NodeId::as_u64).collect();
        assert_eq!(order, vec![1, 3, 5]);
        assert_eq!(c.to_vec().len(), 3);
    }

    #[test]
    fn collect_and_extend() {
        let c: Configuration = (0..4).map(NodeId).collect();
        assert_eq!(c.len(), 4);
        let mut c2 = c.clone();
        c2.extend([NodeId(10)]);
        assert_eq!(c2.len(), 5);
    }
}
