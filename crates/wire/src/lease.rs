//! Shared leader-lease machinery for quorum-free linearizable reads.
//!
//! A ReadIndex round (see [`crate::ReadIndexQueue`]) proves leadership *per
//! read* with a quorum round trip. Leases amortize that proof over time: a
//! follower that acks an AppendEntries at local time `T` **grants** its
//! leader a promise not to vote for a different leader before
//! `T + lease_duration` on the follower's own clock, and a leader holding
//! live grants from a classic quorum answers linearizable reads locally with
//! zero messages — nobody who could depose it can be elected while the
//! grants last.
//!
//! Clocks in the sans-IO stack are *local inputs*, not a shared oracle: the
//! embedding stamps each node's view of "now" before every handler (see
//! [`crate::ConsensusProtocol::set_local_clock`]) and different nodes' clocks
//! may disagree by up to a modeled `max_clock_skew`. All comparisons here are
//! therefore either same-clock (a granter checks its own promise against its
//! own clock — exact) or cross-clock with the skew margin applied in the
//! pessimistic direction. Two guards keep beyond-bound skew *unavailable*
//! rather than unsafe:
//!
//! 1. **Grant admission** ([`LeaseState::record_grant`]): a message cannot
//!    arrive before it was sent, so a grant stamped at follower time `T`
//!    arriving at leader time `now` with `T > now + max_clock_skew` proves
//!    the follower's clock runs ahead beyond the modeled bound — the grant
//!    is rejected and the leader falls back to ReadIndex.
//! 2. **Validity margin** ([`LeaseState::valid_at`]): a counted grant must
//!    satisfy `granted_until − max_clock_skew > now`, covering granter
//!    clocks running *behind* by up to the bound.
//!
//! The full safety argument (including the new-leader wait and the
//! deposed-leader case) lives in `docs/CONSISTENCY.md`.

use std::collections::BTreeMap;

use des::{SimDuration, SimTime};

use crate::{Configuration, NodeId};

/// Leader-side lease bookkeeping: one grant per follower plus the
/// enable-time barrier a fresh leader must wait out.
///
/// A default-constructed `LeaseState` is **inert** (`enabled_at` is
/// [`SimTime::MAX`]): it never validates until the owner explicitly calls
/// [`LeaseState::enable_after`] with a live local clock. This is what keeps
/// purely event-driven embeddings (unit tests that never stamp clocks)
/// byte-identical to the pre-lease behavior even with leases configured on.
#[derive(Clone, Debug)]
pub struct LeaseState {
    /// Per-follower `granted_until`, on the **granter's** clock.
    grants: BTreeMap<NodeId, SimTime>,
    /// Leader-clock instant before which no lease may be served (fresh
    /// leaders wait out a predecessor's worst-case lease + skew).
    enabled_at: SimTime,
}

impl Default for LeaseState {
    fn default() -> Self {
        LeaseState {
            grants: BTreeMap::new(),
            enabled_at: SimTime::MAX,
        }
    }
}

impl LeaseState {
    /// An inert lease (never valid until [`LeaseState::enable_after`]).
    pub fn new() -> Self {
        LeaseState::default()
    }

    /// Arms the lease starting `wait` after `now` on the leader's clock.
    /// Called at election win with `wait = lease_duration + max_clock_skew`:
    /// any lease the *previous* leader could still be serving under expires
    /// within that window, so waiting it out makes the handover safe even if
    /// every other guard failed. A `now` of [`SimTime::ZERO`] (the embedding
    /// never stamped a clock) leaves the lease inert.
    pub fn enable_after(&mut self, now: SimTime, wait: SimDuration) {
        self.enabled_at = if now == SimTime::ZERO {
            SimTime::MAX
        } else {
            now.saturating_add(wait)
        };
    }

    /// Records a follower's grant (`granted_until` on the follower's clock,
    /// received at leader-clock `now`), returning `false` if the grant was
    /// rejected by the skew guard: the grant was stamped `lease_duration`
    /// before `granted_until`, and a stamp provably in the receiver's future
    /// beyond `max_clock_skew` means the granter's clock violates the
    /// modeled bound — counting it could validate a lease a quorum no
    /// longer backs. Zero grants (clockless followers) are ignored; a
    /// fresher grant from the same follower extends, never shortens.
    pub fn record_grant(
        &mut self,
        from: NodeId,
        granted_until: SimTime,
        now: SimTime,
        lease_duration: SimDuration,
        max_clock_skew: SimDuration,
    ) -> bool {
        if granted_until == SimTime::ZERO {
            return true; // not a grant, nothing to record
        }
        // stamped_at > now + skew  ⟺  granted_until > now + skew + duration
        if granted_until
            > now
                .saturating_add(max_clock_skew)
                .saturating_add(lease_duration)
        {
            return false;
        }
        let slot = self.grants.entry(from).or_insert(SimTime::ZERO);
        if granted_until > *slot {
            *slot = granted_until;
        }
        true
    }

    /// `true` when the lease covers leader-clock instant `now`: the enable
    /// barrier has passed and a classic quorum of `config` (counting the
    /// leader's implicit self-grant, and discounting every follower grant by
    /// `max_clock_skew` for granter clocks running behind) is still
    /// promising not to elect anyone else.
    pub fn valid_at(
        &self,
        now: SimTime,
        config: &Configuration,
        leader: NodeId,
        max_clock_skew: SimDuration,
    ) -> bool {
        if now == SimTime::ZERO || now < self.enabled_at {
            return false;
        }
        let horizon = now.saturating_add(max_clock_skew);
        let live = config
            .iter()
            .filter(|&m| m != leader)
            .filter(|m| self.grants.get(m).is_some_and(|&until| until > horizon))
            .count();
        live + usize::from(config.contains(leader)) >= config.classic_quorum()
    }

    /// Drops every grant and disarms the lease (step-down, term change,
    /// deactivation). The next leadership must re-arm and re-collect.
    pub fn clear(&mut self) {
        self.grants.clear();
        self.enabled_at = SimTime::MAX;
    }
}

/// Follower-side vote hold: the other half of the lease promise.
///
/// Granting a lease is only sound because the granter *enforces* it against
/// itself: while `now < until` on its own clock (a same-clock comparison —
/// no skew margin needed), it refuses `RequestVote`s from any candidate
/// other than the leader it granted to. Its own election timer cannot fire
/// inside the window either (`Timing::validate` pins
/// `lease_duration + max_clock_skew ≤ election_min`, and the hold is
/// stamped when the election timer is reset).
#[derive(Clone, Copy, Debug, Default)]
pub struct VoteHold {
    leader: Option<NodeId>,
    until: SimTime,
}

impl VoteHold {
    /// No hold.
    pub fn new() -> Self {
        VoteHold::default()
    }

    /// Records a grant of `until` to `leader` (replacing any previous hold —
    /// a follower acks appends from one leader at a time).
    pub fn note_grant(&mut self, leader: NodeId, until: SimTime) {
        self.leader = Some(leader);
        self.until = until;
    }

    /// `true` when a vote for `candidate` at local time `now` would break a
    /// live promise. Never blocks with a frozen clock (`now` ZERO), the
    /// promised leader itself, or after expiry.
    pub fn blocks(&self, candidate: NodeId, now: SimTime) -> bool {
        now != SimTime::ZERO
            && now < self.until
            && self.leader.is_some_and(|l| l != candidate)
    }

    /// Releases the hold (crash recovery: promises do not survive restarts
    /// because the granted acks were stamped by the pre-crash process; the
    /// election timeout the recovering node waits anyway dominates any
    /// lease it could have granted).
    pub fn clear(&mut self) {
        *self = VoteHold::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DUR: SimDuration = SimDuration::from_millis(300);
    const SKEW: SimDuration = SimDuration::from_millis(50);

    fn cfg(n: u64) -> Configuration {
        (0..n).map(NodeId).collect()
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn default_lease_is_inert() {
        let l = LeaseState::new();
        assert!(!l.valid_at(t(1_000_000), &cfg(1), NodeId(0), SKEW));
    }

    #[test]
    fn frozen_clock_never_validates_or_enables() {
        let mut l = LeaseState::new();
        l.enable_after(SimTime::ZERO, DUR + SKEW);
        l.record_grant(NodeId(1), t(10_000), SimTime::ZERO, DUR, SKEW);
        assert!(!l.valid_at(SimTime::ZERO, &cfg(3), NodeId(0), SKEW));
        assert!(!l.valid_at(t(10_000), &cfg(3), NodeId(0), SKEW));
    }

    #[test]
    fn quorum_of_live_grants_validates() {
        let mut l = LeaseState::new();
        l.enable_after(t(1000), SimDuration::ZERO);
        let c = cfg(5); // quorum 3: self + 2 grants
        let now = t(1000);
        assert!(l.record_grant(NodeId(1), t(1300), now, DUR, SKEW));
        assert!(!l.valid_at(now, &c, NodeId(0), SKEW), "one grant short");
        assert!(l.record_grant(NodeId(2), t(1300), now, DUR, SKEW));
        assert!(l.valid_at(now, &c, NodeId(0), SKEW));
        // At 1250, grants-minus-skew cover exactly to 1250 — not beyond.
        assert!(!l.valid_at(t(1250), &c, NodeId(0), SKEW));
        assert!(l.valid_at(t(1249), &c, NodeId(0), SKEW));
    }

    #[test]
    fn enable_barrier_blocks_until_waited_out() {
        let mut l = LeaseState::new();
        l.enable_after(t(1000), DUR + SKEW); // enabled at 1350
        let c = cfg(3);
        let now = t(1300);
        // Stamped at follower time 1350 (at the skew bound): admissible.
        assert!(l.record_grant(NodeId(1), t(1350) + DUR, now, DUR, SKEW));
        assert!(!l.valid_at(t(1349), &c, NodeId(0), SKEW));
        assert!(l.valid_at(t(1350), &c, NodeId(0), SKEW));
    }

    #[test]
    fn skew_guard_rejects_clocks_ahead_beyond_bound() {
        let mut l = LeaseState::new();
        l.enable_after(t(1000), SimDuration::ZERO);
        let now = t(1000);
        // Stamped at 1051 on the follower's clock: 51ms ahead > 50ms bound.
        assert!(!l.record_grant(NodeId(1), t(1051) + DUR, now, DUR, SKEW));
        // Exactly at the bound is admissible.
        assert!(l.record_grant(NodeId(2), t(1050) + DUR, now, DUR, SKEW));
        let c = cfg(5); // quorum 3: self + 2 grants needed
        assert!(
            !l.valid_at(now, &c, NodeId(0), SKEW),
            "rejected grant must not count"
        );
        assert!(l.record_grant(NodeId(1), t(1040) + DUR, now, DUR, SKEW));
        assert!(l.valid_at(now, &c, NodeId(0), SKEW));
    }

    #[test]
    fn fresher_grants_extend_and_stale_ones_do_not_shorten() {
        let mut l = LeaseState::new();
        l.enable_after(t(1000), SimDuration::ZERO);
        let c = cfg(3);
        l.record_grant(NodeId(1), t(2000), t(1800), DUR, SKEW);
        assert!(l.valid_at(t(1900), &c, NodeId(0), SKEW));
        // A reordered older grant must not pull the window back.
        l.record_grant(NodeId(1), t(1500), t(1800), DUR, SKEW);
        assert!(l.valid_at(t(1900), &c, NodeId(0), SKEW));
    }

    #[test]
    fn zero_grant_is_ignored_not_rejected() {
        let mut l = LeaseState::new();
        l.enable_after(t(1000), SimDuration::ZERO);
        assert!(l.record_grant(NodeId(1), SimTime::ZERO, t(1000), DUR, SKEW));
        assert!(!l.valid_at(t(1000), &cfg(3), NodeId(0), SKEW));
    }

    #[test]
    fn clear_disarms() {
        let mut l = LeaseState::new();
        l.enable_after(t(1000), SimDuration::ZERO);
        let c = cfg(3);
        l.record_grant(NodeId(1), t(1300), t(1000), DUR, SKEW);
        assert!(l.valid_at(t(1000), &c, NodeId(0), SKEW));
        l.clear();
        assert!(!l.valid_at(t(1000), &c, NodeId(0), SKEW));
    }

    #[test]
    fn non_member_grants_do_not_count() {
        let mut l = LeaseState::new();
        l.enable_after(t(1000), SimDuration::ZERO);
        let c = cfg(3); // members 0,1,2; quorum 2
        l.record_grant(NodeId(9), t(1300), t(1000), DUR, SKEW);
        assert!(!l.valid_at(t(1000), &c, NodeId(0), SKEW));
    }

    #[test]
    fn single_voter_self_grants() {
        let mut l = LeaseState::new();
        l.enable_after(t(1000), SimDuration::ZERO);
        assert!(l.valid_at(t(1000), &cfg(1), NodeId(0), SKEW));
    }

    #[test]
    fn vote_hold_blocks_rivals_only_while_live() {
        let mut h = VoteHold::new();
        assert!(!h.blocks(NodeId(2), t(100)));
        h.note_grant(NodeId(1), t(400));
        assert!(h.blocks(NodeId(2), t(399)));
        assert!(!h.blocks(NodeId(1), t(399)), "promised leader never blocked");
        assert!(!h.blocks(NodeId(2), t(400)), "expired");
        assert!(!h.blocks(NodeId(2), SimTime::ZERO), "frozen clock");
        h.clear();
        assert!(!h.blocks(NodeId(2), t(399)));
    }
}
