//! Multi-group fabric envelopes.
//!
//! A sharded process hosts replicas of many consensus groups, and every
//! group's peers live in the *same* small set of peer processes. Sending
//! each group's `AppendEntries` as its own fabric frame would charge one
//! header, one latency sample, and one delivery event per group per tick —
//! O(active groups) fixed cost on the shared fabric. Instead, all messages
//! one process emits toward one peer during a single scheduling step
//! coalesce into one [`ShardEnvelope`]: one frame on the wire, one delivery
//! event, with per-group demultiplexing by [`GroupId`] tag at the receiver.
//!
//! The envelope is generic over the inner protocol message, so classic
//! Raft groups and Fast Raft groups ride the same fabric type.

use crate::{DecodeError, Decoder, Encoder, GroupId, Message, Wire};

/// One group's message inside a coalesced fabric frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupFrame<M> {
    /// The consensus group the message belongs to.
    pub group: GroupId,
    /// The group-level protocol message.
    pub msg: M,
}

/// A coalesced fabric frame: every message one process sends to one peer
/// process within a single scheduling step, tagged by group.
///
/// # Examples
///
/// ```
/// use wire::{GroupId, Message, ShardEnvelope};
///
/// let mut env: ShardEnvelope<&'static str> = ShardEnvelope::new();
/// env.push(GroupId(3), "append");
/// env.push(GroupId(9), "vote");
/// assert_eq!(env.len(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardEnvelope<M> {
    /// The coalesced per-group messages, in emission order.
    pub frames: Vec<GroupFrame<M>>,
}

impl<M> Default for ShardEnvelope<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> ShardEnvelope<M> {
    /// Fixed per-envelope header: the `u32` frame count.
    pub const HEADER_BYTES: usize = 4;
    /// Fixed per-frame overhead: the `u32` group tag.
    pub const FRAME_TAG_BYTES: usize = 4;

    /// An empty envelope.
    pub fn new() -> Self {
        ShardEnvelope { frames: Vec::new() }
    }

    /// An envelope built from collected frames.
    pub fn from_frames(frames: Vec<GroupFrame<M>>) -> Self {
        ShardEnvelope { frames }
    }

    /// Appends one group's message.
    pub fn push(&mut self, group: GroupId, msg: M) {
        self.frames.push(GroupFrame { group, msg });
    }

    /// Number of coalesced messages.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` when no message was coalesced.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Consumes the envelope, yielding `(group, message)` pairs in
    /// emission order.
    pub fn into_frames(self) -> impl Iterator<Item = (GroupId, M)> {
        self.frames.into_iter().map(|f| (f.group, f.msg))
    }
}

impl<M: Message> Message for ShardEnvelope<M> {
    /// Header + per-frame group tag + inner sizes — pure arithmetic, no
    /// encode pass (the fabric charges this on every send).
    fn wire_size(&self) -> usize {
        Self::HEADER_BYTES
            + self
                .frames
                .iter()
                .map(|f| Self::FRAME_TAG_BYTES + f.msg.wire_size())
                .sum::<usize>()
    }
}

impl<M: Wire> Wire for ShardEnvelope<M> {
    fn encode(&self, e: &mut Encoder) {
        e.put_u32(self.frames.len() as u32);
        for f in &self.frames {
            e.put_u32(f.group.as_u32());
            f.msg.encode(e);
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let n = d.u32()? as usize;
        if n > 1 << 20 {
            return Err(DecodeError::LengthOverflow { declared: n });
        }
        let mut frames = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let group = GroupId(d.u32()?);
            let msg = M::decode(d)?;
            frames.push(GroupFrame { group, msg });
        }
        Ok(ShardEnvelope { frames })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn wire_size_matches_encoded_len() {
        let mut env: ShardEnvelope<Bytes> = ShardEnvelope::new();
        env.push(GroupId(1), Bytes::from_static(b"hello"));
        env.push(GroupId(70_000), Bytes::from_static(b""));
        // Bytes encodes as u32 length + payload, and wire::Message for the
        // envelope charges header + tags + inner; for Bytes the inner
        // Message impl is not defined, so compare against encoded_len of
        // the Wire impl directly.
        assert_eq!(env.encoded_len(), 4 + (4 + 4 + 5) + (4 + 4));
    }

    #[test]
    fn roundtrips() {
        let mut env: ShardEnvelope<Bytes> = ShardEnvelope::new();
        env.push(GroupId(0), Bytes::from_static(b"a"));
        env.push(GroupId(42), Bytes::from_static(b"bc"));
        let bytes = env.to_bytes();
        let back = ShardEnvelope::<Bytes>::from_bytes(&bytes).unwrap();
        assert_eq!(back, env);
    }

    #[test]
    fn rejects_absurd_frame_counts() {
        let mut e = Encoder::new();
        e.put_u32(u32::MAX);
        let err = ShardEnvelope::<Bytes>::from_bytes(&e.finish()).unwrap_err();
        assert!(matches!(err, DecodeError::LengthOverflow { .. }));
    }

    #[test]
    fn into_frames_preserves_order() {
        let mut env: ShardEnvelope<Bytes> = ShardEnvelope::new();
        for g in [5u32, 1, 9] {
            env.push(GroupId(g), Bytes::new());
        }
        let order: Vec<u32> = env.into_frames().map(|(g, _)| g.as_u32()).collect();
        assert_eq!(order, vec![5, 1, 9]);
    }
}
