//! The replicated log, allowing holes.
//!
//! Classic Raft treats the log as a dense, append-only list. Fast Raft lets
//! proposers address specific indices directly, so a follower can hold an
//! entry at index `i` while index `j < i` is still empty (§III-B). The log is
//! therefore a sparse map from index to entry; classic Raft simply maintains
//! the invariant that it never creates holes.

use std::collections::BTreeMap;

use crate::{Approval, AppendBudget, EntryList, LogEntry, LogIndex, Term, Wire};

/// A 1-indexed replicated log that may contain holes, with an optionally
/// **compacted prefix**.
///
/// Compaction (snapshotting) removes a contiguous decided prefix of the log:
/// indices `1..=compacted_through` hold no entries anymore, but the log
/// remembers the boundary index and its term so log-matching checks against
/// the snapshot boundary still work. Compaction may only ever cover a
/// contiguous occupied prefix — it never swallows a hole (see
/// [`SparseLog::compact_to`]).
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use wire::{EntryId, LogEntry, LogIndex, NodeId, SparseLog, Term};
///
/// let mut log = SparseLog::new();
/// let e = LogEntry::data(Term(1), EntryId::new(NodeId(1), 0), Bytes::from_static(b"v"));
/// // Insert at index 3 directly; 1 and 2 are holes.
/// log.insert(LogIndex(3), e.clone());
/// assert_eq!(log.last_index(), LogIndex(3));
/// assert_eq!(log.get(LogIndex(1)), None);
/// assert_eq!(log.first_gap(), LogIndex(1));
/// assert_eq!(log.first_index(), LogIndex(1));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SparseLog {
    entries: BTreeMap<u64, LogEntry>,
    /// Highest compacted (snapshotted) index; 0 = nothing compacted.
    compacted_through: u64,
    /// Term of the (removed) entry at `compacted_through` — the snapshot
    /// boundary term, needed for log-matching at the compaction horizon.
    compacted_term: Term,
}

impl SparseLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        SparseLog::default()
    }

    /// The entry at `index`, if present.
    pub fn get(&self, index: LogIndex) -> Option<&LogEntry> {
        self.entries.get(&index.as_u64())
    }

    /// Mutable access to the entry at `index`.
    pub fn get_mut(&mut self, index: LogIndex) -> Option<&mut LogEntry> {
        self.entries.get_mut(&index.as_u64())
    }

    /// Inserts (or replaces) the entry at `index`, returning the previous
    /// occupant if any.
    ///
    /// # Panics
    ///
    /// Panics if `index` is the zero sentinel or lies at or below the
    /// compaction horizon (compacted indices are decided and immutable).
    pub fn insert(&mut self, index: LogIndex, entry: LogEntry) -> Option<LogEntry> {
        assert!(!index.is_zero(), "cannot insert at LogIndex::ZERO");
        assert!(
            index.as_u64() > self.compacted_through,
            "cannot insert at {index}: compacted through #{}",
            self.compacted_through
        );
        self.entries.insert(index.as_u64(), entry)
    }

    // ------------------------------------------------------------------
    // Compaction
    // ------------------------------------------------------------------

    /// The lowest index still retained as an entry: `compacted_through + 1`.
    /// For an uncompacted log this is [`LogIndex::FIRST`].
    pub fn first_index(&self) -> LogIndex {
        LogIndex(self.compacted_through + 1)
    }

    /// The highest compacted index ([`LogIndex::ZERO`] when nothing has
    /// been compacted).
    pub fn compacted_through(&self) -> LogIndex {
        LogIndex(self.compacted_through)
    }

    /// The term at the compaction horizon (the snapshot's `last_term`).
    pub fn compacted_term(&self) -> Term {
        self.compacted_term
    }

    /// Compacts the contiguous occupied prefix up to `through`, removing
    /// those entries and recording the boundary term. The effective bound is
    /// clamped so compaction **never swallows a hole**: only indices below
    /// [`SparseLog::first_gap`] are eligible. Returns the new compaction
    /// horizon (unchanged if nothing could be compacted).
    pub fn compact_to(&mut self, through: LogIndex) -> LogIndex {
        // Never compact across a hole, and never move backwards.
        let bound = self.first_gap().prev_saturating().as_u64();
        let target = through.as_u64().min(bound);
        if target <= self.compacted_through {
            return self.compacted_through();
        }
        self.compacted_term = self
            .entries
            .get(&target)
            .map(|e| e.term)
            .expect("contiguous prefix below first_gap is occupied");
        self.entries = self.entries.split_off(&(target + 1));
        self.compacted_through = target;
        self.compacted_through()
    }

    /// Installs a snapshot boundary received from a leader: everything at or
    /// below `last_index` is replaced by the snapshot. If this log holds a
    /// matching entry at `last_index` (same term), the suffix above it is
    /// retained (it is consistent with the snapshot's history); otherwise
    /// the whole log is discarded. Returns `false` (no-op) when the snapshot
    /// is older than the current compaction horizon.
    pub fn install_snapshot(&mut self, last_index: LogIndex, last_term: Term) -> bool {
        if last_index.as_u64() <= self.compacted_through {
            return false;
        }
        let suffix_consistent = self
            .entries
            .get(&last_index.as_u64())
            .is_some_and(|e| e.term == last_term);
        if suffix_consistent {
            self.entries = self.entries.split_off(&(last_index.as_u64() + 1));
        } else {
            self.entries.clear();
        }
        self.compacted_through = last_index.as_u64();
        self.compacted_term = last_term;
        true
    }

    /// Appends after the current last index, returning the new entry's index.
    pub fn append(&mut self, entry: LogEntry) -> LogIndex {
        let index = self.last_index().next();
        self.entries.insert(index.as_u64(), entry);
        index
    }

    /// Removes the entry at `index`, returning it if present.
    pub fn remove(&mut self, index: LogIndex) -> Option<LogEntry> {
        self.entries.remove(&index.as_u64())
    }

    /// Removes all entries at `from` and beyond (classic-Raft conflict
    /// truncation). Returns how many entries were removed. Truncation never
    /// reaches below the compaction horizon (those indices hold no entries).
    pub fn truncate_from(&mut self, from: LogIndex) -> usize {
        let removed: Vec<u64> = self
            .entries
            .range(from.as_u64()..)
            .map(|(&i, _)| i)
            .collect();
        for i in &removed {
            self.entries.remove(i);
        }
        removed.len()
    }

    /// The highest occupied index; for a fully compacted (or empty) log this
    /// is the compaction horizon ([`LogIndex::ZERO`] when never compacted).
    pub fn last_index(&self) -> LogIndex {
        self.entries
            .keys()
            .next_back()
            .map_or(LogIndex(self.compacted_through), |&i| LogIndex(i))
    }

    /// The term of the entry at `index`: [`Term::ZERO`] for the sentinel or
    /// a hole, the snapshot boundary term at the compaction horizon.
    pub fn term_at(&self, index: LogIndex) -> Term {
        if index.as_u64() == self.compacted_through && self.compacted_through > 0 {
            return self.compacted_term;
        }
        self.get(index).map_or(Term::ZERO, |e| e.term)
    }

    /// The lowest unoccupied index above the compaction horizon. For a dense
    /// log this is `last_index + 1`; with holes it is the first hole.
    pub fn first_gap(&self) -> LogIndex {
        let mut expect = self.compacted_through + 1;
        for (&i, _) in self.entries.range(expect..) {
            if i != expect {
                break;
            }
            expect += 1;
        }
        LogIndex(expect)
    }

    /// `true` if indices `first_index..=last_index` are all occupied.
    pub fn is_dense(&self) -> bool {
        self.first_gap() == self.last_index().next()
    }

    /// Detects a **front gap**: the log holds entries, but the lowest one
    /// sits above `compacted_through + 1`, i.e. a hole starts immediately
    /// after the snapshot horizon. A log grown through normal protocol
    /// operation never front-gaps (compaction only ever consumes a
    /// contiguous occupied prefix); only externally reconstructed views —
    /// C-Raft's global log rebuilt from partially compacted global-state
    /// entries — can. Returns `(horizon, first_retained)` when gapped.
    pub fn front_gap(&self) -> Option<(LogIndex, LogIndex)> {
        let first = *self.entries.keys().next()?;
        (first > self.compacted_through + 1)
            .then(|| (self.compacted_through(), LogIndex(first)))
    }

    /// Number of occupied indices.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(index, entry)` pairs in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = (LogIndex, &LogEntry)> {
        self.entries.iter().map(|(&i, e)| (LogIndex(i), e))
    }

    /// Iterates occupied `(index, entry)` pairs within `[from, to]`.
    pub fn range(
        &self,
        from: LogIndex,
        to: LogIndex,
    ) -> impl Iterator<Item = (LogIndex, &LogEntry)> {
        self.entries
            .range(from.as_u64()..=to.as_u64())
            .map(|(&i, e)| (LogIndex(i), e))
    }

    /// Collects clones of entries in `[from, to]` that are present,
    /// preserving order — the payload of an AppendEntries message.
    pub fn collect_range(&self, from: LogIndex, to: LogIndex) -> Vec<(LogIndex, LogEntry)> {
        self.range(from, to).map(|(i, e)| (i, e.clone())).collect()
    }

    /// Collects the occupied slots of `[from, to]` into an [`EntryList`]
    /// honoring `budget`: admission stops at whichever of the entry-count or
    /// encoded-byte cap binds first, but at least one entry is always taken
    /// when the range holds any (see [`AppendBudget::admits`]).
    ///
    /// The budget charges each entry its `(index, entry)` wire encoding, the
    /// exact bytes it occupies inside an AppendEntries message.
    pub fn collect_range_budgeted(
        &self,
        from: LogIndex,
        to: LogIndex,
        budget: AppendBudget,
    ) -> EntryList {
        let mut out: Vec<(LogIndex, LogEntry)> = Vec::new();
        let mut bytes = 0usize;
        for (i, e) in self.range(from, to) {
            let sz = 8 + e.encoded_len();
            if !budget.admits(out.len(), bytes, sz) {
                break;
            }
            bytes += sz;
            out.push((i, e.clone()));
        }
        EntryList::from_vec(out)
    }

    /// All self-approved entries, for Fast Raft's election recovery (§IV-C).
    pub fn self_approved(&self) -> Vec<(LogIndex, LogEntry)> {
        self.iter()
            .filter(|(_, e)| e.approval == Approval::SelfApproved)
            .map(|(i, e)| (i, e.clone()))
            .collect()
    }

    /// The highest index holding a **leader-approved** entry, which is Fast
    /// Raft's `lastLeaderIndex` (§IV-A).
    pub fn last_leader_index(&self) -> LogIndex {
        self.entries
            .iter()
            .rev()
            .find(|(_, e)| e.approval == Approval::LeaderApproved)
            .map_or(LogIndex::ZERO, |(&i, _)| LogIndex(i))
    }

    /// The configuration from the highest-indexed config entry, if any —
    /// "the last configuration appended to the log" (§IV-A).
    pub fn latest_config(&self) -> Option<(LogIndex, &crate::Configuration)> {
        self.entries
            .iter()
            .rev()
            .find_map(|(&i, e)| e.as_config().map(|c| (LogIndex(i), c)))
    }
}

impl FromIterator<LogEntry> for SparseLog {
    /// Builds a dense log from entries in order, starting at index 1.
    fn from_iter<I: IntoIterator<Item = LogEntry>>(iter: I) -> Self {
        let mut log = SparseLog::new();
        for e in iter {
            log.append(e);
        }
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Configuration, EntryId, NodeId};
    use bytes::Bytes;

    fn entry(term: u64, seq: u64) -> LogEntry {
        LogEntry::data(
            Term(term),
            EntryId::new(NodeId(1), seq),
            Bytes::from_static(b"v"),
        )
    }

    #[test]
    fn append_is_dense() {
        let mut log = SparseLog::new();
        assert_eq!(log.append(entry(1, 0)), LogIndex(1));
        assert_eq!(log.append(entry(1, 1)), LogIndex(2));
        assert!(log.is_dense());
        assert_eq!(log.len(), 2);
        assert_eq!(log.first_gap(), LogIndex(3));
    }

    #[test]
    fn sparse_insert_creates_holes() {
        let mut log = SparseLog::new();
        log.insert(LogIndex(5), entry(1, 0));
        assert_eq!(log.last_index(), LogIndex(5));
        assert_eq!(log.first_gap(), LogIndex(1));
        assert!(!log.is_dense());
        log.insert(LogIndex(1), entry(1, 1));
        assert_eq!(log.first_gap(), LogIndex(2));
    }

    #[test]
    fn insert_replaces_and_returns_previous() {
        let mut log = SparseLog::new();
        log.insert(LogIndex(1), entry(1, 0));
        let old = log.insert(LogIndex(1), entry(2, 1));
        assert_eq!(old.unwrap().term, Term(1));
        assert_eq!(log.term_at(LogIndex(1)), Term(2));
    }

    #[test]
    #[should_panic(expected = "LogIndex::ZERO")]
    fn insert_at_zero_panics() {
        SparseLog::new().insert(LogIndex::ZERO, entry(1, 0));
    }

    #[test]
    fn truncate_from_removes_suffix() {
        let mut log: SparseLog = (0..5).map(|s| entry(1, s)).collect();
        assert_eq!(log.truncate_from(LogIndex(3)), 3);
        assert_eq!(log.last_index(), LogIndex(2));
        assert_eq!(log.truncate_from(LogIndex(10)), 0);
    }

    #[test]
    fn term_at_sentinel_and_hole() {
        let mut log = SparseLog::new();
        log.insert(LogIndex(3), entry(4, 0));
        assert_eq!(log.term_at(LogIndex::ZERO), Term::ZERO);
        assert_eq!(log.term_at(LogIndex(1)), Term::ZERO);
        assert_eq!(log.term_at(LogIndex(3)), Term(4));
    }

    #[test]
    fn collect_range_skips_holes() {
        let mut log = SparseLog::new();
        log.insert(LogIndex(1), entry(1, 0));
        log.insert(LogIndex(3), entry(1, 1));
        let got = log.collect_range(LogIndex(1), LogIndex(3));
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, LogIndex(1));
        assert_eq!(got[1].0, LogIndex(3));
    }

    #[test]
    fn budgeted_collect_honors_entry_cap() {
        let log: SparseLog = (0..10).map(|s| entry(1, s)).collect();
        let got = log.collect_range_budgeted(
            LogIndex(1),
            LogIndex(10),
            AppendBudget::new(3, usize::MAX),
        );
        assert_eq!(got.len(), 3);
        assert_eq!(got.as_slice()[2].0, LogIndex(3));
    }

    #[test]
    fn budgeted_collect_honors_byte_cap() {
        let log: SparseLog = (0..10).map(|s| entry(1, s)).collect();
        let per_entry = 8 + log.get(LogIndex(1)).unwrap().encoded_len();
        // Room for exactly two entries.
        let got = log.collect_range_budgeted(
            LogIndex(1),
            LogIndex(10),
            AppendBudget::new(128, 2 * per_entry),
        );
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn budgeted_collect_always_takes_one() {
        let log: SparseLog = (0..3).map(|s| entry(1, s)).collect();
        // A byte budget smaller than any entry still yields one entry.
        let got =
            log.collect_range_budgeted(LogIndex(1), LogIndex(3), AppendBudget::new(128, 1));
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn budgeted_collect_skips_holes() {
        let mut log = SparseLog::new();
        log.insert(LogIndex(1), entry(1, 0));
        log.insert(LogIndex(4), entry(1, 1));
        let got = log.collect_range_budgeted(
            LogIndex(1),
            LogIndex(4),
            AppendBudget::new(128, usize::MAX),
        );
        assert_eq!(got.len(), 2);
        assert_eq!(got.as_slice()[1].0, LogIndex(4));
    }

    #[test]
    fn self_approved_filter() {
        let mut log = SparseLog::new();
        log.insert(LogIndex(1), entry(1, 0)); // leader-approved
        log.insert(
            LogIndex(2),
            entry(1, 1).with_approval(Approval::SelfApproved),
        );
        log.insert(
            LogIndex(4),
            entry(1, 2).with_approval(Approval::SelfApproved),
        );
        let sa = log.self_approved();
        assert_eq!(sa.len(), 2);
        assert_eq!(sa[0].0, LogIndex(2));
        assert_eq!(sa[1].0, LogIndex(4));
    }

    #[test]
    fn last_leader_index_ignores_self_approved_suffix() {
        let mut log = SparseLog::new();
        log.insert(LogIndex(1), entry(1, 0));
        log.insert(
            LogIndex(2),
            entry(1, 1).with_approval(Approval::SelfApproved),
        );
        assert_eq!(log.last_leader_index(), LogIndex(1));
        assert_eq!(log.last_index(), LogIndex(2));
    }

    #[test]
    fn latest_config_finds_highest() {
        let mut log = SparseLog::new();
        let c1 = Configuration::new([NodeId(1)]);
        let c2 = Configuration::new([NodeId(1), NodeId(2)]);
        log.append(LogEntry::config(Term(1), EntryId::new(NodeId(1), 0), c1));
        log.append(entry(1, 1));
        log.append(LogEntry::config(
            Term(1),
            EntryId::new(NodeId(1), 2),
            c2.clone(),
        ));
        let (idx, cfg) = log.latest_config().unwrap();
        assert_eq!(idx, LogIndex(3));
        assert_eq!(cfg, &c2);
    }

    #[test]
    fn remove_entry() {
        let mut log = SparseLog::new();
        log.insert(LogIndex(2), entry(1, 0));
        assert!(log.remove(LogIndex(2)).is_some());
        assert!(log.remove(LogIndex(2)).is_none());
        assert!(log.is_empty());
    }

    #[test]
    fn compact_removes_prefix_and_keeps_boundary_term() {
        let mut log: SparseLog = (0..5).map(|s| entry(s + 1, s)).collect();
        assert_eq!(log.compact_to(LogIndex(3)), LogIndex(3));
        assert_eq!(log.first_index(), LogIndex(4));
        assert_eq!(log.compacted_through(), LogIndex(3));
        assert_eq!(log.len(), 2);
        assert_eq!(log.last_index(), LogIndex(5));
        // The boundary term survives compaction for log-matching checks.
        assert_eq!(log.term_at(LogIndex(3)), Term(3));
        assert_eq!(log.compacted_term(), Term(3));
        // Holes (removed entries) below the horizon read as Term::ZERO.
        assert_eq!(log.term_at(LogIndex(2)), Term::ZERO);
        assert!(log.is_dense());
        assert_eq!(log.first_gap(), LogIndex(6));
    }

    #[test]
    fn compact_never_swallows_a_hole() {
        let mut log = SparseLog::new();
        log.insert(LogIndex(1), entry(1, 0));
        log.insert(LogIndex(2), entry(1, 1));
        log.insert(LogIndex(4), entry(1, 2)); // hole at 3
        assert_eq!(log.compact_to(LogIndex(4)), LogIndex(2));
        assert_eq!(log.first_index(), LogIndex(3));
        assert!(log.get(LogIndex(4)).is_some());
        // Compaction is monotone: a lower target is a no-op.
        assert_eq!(log.compact_to(LogIndex(1)), LogIndex(2));
    }

    #[test]
    fn fully_compacted_log_keeps_last_index() {
        let mut log: SparseLog = (0..3).map(|s| entry(2, s)).collect();
        log.compact_to(LogIndex(3));
        assert!(log.is_empty());
        assert_eq!(log.last_index(), LogIndex(3));
        assert_eq!(log.term_at(LogIndex(3)), Term(2));
        assert_eq!(log.append(entry(3, 9)), LogIndex(4));
    }

    #[test]
    #[should_panic(expected = "compacted through")]
    fn insert_below_horizon_panics() {
        let mut log: SparseLog = (0..3).map(|s| entry(1, s)).collect();
        log.compact_to(LogIndex(2));
        log.insert(LogIndex(1), entry(1, 9));
    }

    #[test]
    fn install_snapshot_keeps_consistent_suffix() {
        let mut log: SparseLog = (0..5).map(|s| entry(1, s)).collect();
        assert!(log.install_snapshot(LogIndex(3), Term(1)));
        assert_eq!(log.first_index(), LogIndex(4));
        assert_eq!(log.len(), 2);
        assert_eq!(log.last_index(), LogIndex(5));
    }

    #[test]
    fn install_snapshot_discards_conflicting_log() {
        let mut log: SparseLog = (0..5).map(|s| entry(1, s)).collect();
        // Boundary term mismatch: the whole log is unverifiable.
        assert!(log.install_snapshot(LogIndex(3), Term(9)));
        assert!(log.is_empty());
        assert_eq!(log.last_index(), LogIndex(3));
        assert_eq!(log.term_at(LogIndex(3)), Term(9));
    }

    #[test]
    fn install_snapshot_beyond_log_discards_all() {
        let mut log: SparseLog = (0..2).map(|s| entry(1, s)).collect();
        assert!(log.install_snapshot(LogIndex(10), Term(4)));
        assert!(log.is_empty());
        assert_eq!(log.first_index(), LogIndex(11));
        // A stale snapshot is refused.
        assert!(!log.install_snapshot(LogIndex(5), Term(2)));
    }
}
