//! The replicated log, allowing holes.
//!
//! Classic Raft treats the log as a dense, append-only list. Fast Raft lets
//! proposers address specific indices directly, so a follower can hold an
//! entry at index `i` while index `j < i` is still empty (§III-B). The log
//! is therefore logically a sparse map from index to entry; classic Raft
//! simply maintains the invariant that it never creates holes.
//!
//! ## Representation: a dense prefix with a sparse overlay
//!
//! Holes are rare and *structured*: they only ever live in the bounded
//! in-flight window above the contiguous committed prefix (§IV), so the
//! dominant-case shape of the log is a dense array, not a search tree. The
//! log is stored as a `VecDeque<Option<LogEntry>>` of **slots** indexed by
//! offset from [`SparseLog::first_index`]:
//!
//! - `get`/`get_mut`/`term_at` are O(1) slot loads (the hot path: every
//!   Fast Raft message consults the log);
//! - `append`/`insert` fill slots (growing the tail with `None`s when a
//!   proposer addresses an index above the end);
//! - `compact_to`/`install_snapshot`/`truncate_from` are front/back drains;
//! - an occupancy count plus a cached [`SparseLog::first_gap`] cursor keep
//!   hole queries O(1) amortized (the cursor only ever advances over each
//!   slot once, except when `remove`/`truncate_from` pull it back).
//!
//! Two structural invariants keep the layout canonical (so derived equality
//! is observational equality): slot 0 always corresponds to
//! `compacted_through + 1`, and the last slot, when any exist, is occupied
//! (no trailing `None`s — `last_index` is pure arithmetic).

use std::collections::VecDeque;

use crate::{Approval, AppendBudget, EntryList, LogEntry, LogIndex, Term, Wire};

/// Defensive ceiling on how far above a node's own log end (or commit
/// floor) a remote-addressed insert may reach. The dense layout
/// materializes the addressed span as slots, so an absurd index from a
/// corrupt or malicious peer must be *dropped*, not allocated: a message
/// naming index 2^40 would otherwise commit the receiver to a terabyte of
/// `None`s. Honest traffic never comes close — real holes live in the
/// bounded in-flight window above the contiguous prefix (§IV). Shared by
/// both protocols' receive paths (`consensus_core` inserts, `raft`
/// AppendEntries) so the bound cannot drift between them.
pub const MAX_INSERT_WINDOW: u64 = 1 << 20;

/// A 1-indexed replicated log that may contain holes, with an optionally
/// **compacted prefix**.
///
/// Compaction (snapshotting) removes a contiguous decided prefix of the log:
/// indices `1..=compacted_through` hold no entries anymore, but the log
/// remembers the boundary index and its term so log-matching checks against
/// the snapshot boundary still work. Compaction may only ever cover a
/// contiguous occupied prefix — it never swallows a hole (see
/// [`SparseLog::compact_to`]).
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use wire::{EntryId, LogEntry, LogIndex, NodeId, SparseLog, Term};
///
/// let mut log = SparseLog::new();
/// let e = LogEntry::data(Term(1), EntryId::new(NodeId(1), 0), Bytes::from_static(b"v"));
/// // Insert at index 3 directly; 1 and 2 are holes.
/// log.insert(LogIndex(3), e.clone());
/// assert_eq!(log.last_index(), LogIndex(3));
/// assert_eq!(log.get(LogIndex(1)), None);
/// assert_eq!(log.first_gap(), LogIndex(1));
/// assert_eq!(log.first_index(), LogIndex(1));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SparseLog {
    /// Dense slot array: `slots[i]` holds the entry at index
    /// `compacted_through + 1 + i`. The last slot, if any, is occupied.
    slots: VecDeque<Option<LogEntry>>,
    /// Highest compacted (snapshotted) index; 0 = nothing compacted.
    compacted_through: u64,
    /// Term of the (removed) entry at `compacted_through` — the snapshot
    /// boundary term, needed for log-matching at the compaction horizon.
    compacted_term: Term,
    /// Number of occupied slots.
    occupied: usize,
    /// Cached lowest unoccupied index above the compaction horizon.
    first_gap: u64,
}

impl Default for SparseLog {
    fn default() -> Self {
        SparseLog {
            slots: VecDeque::new(),
            compacted_through: 0,
            compacted_term: Term::ZERO,
            occupied: 0,
            first_gap: 1,
        }
    }
}

impl SparseLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        SparseLog::default()
    }

    /// The slot offset of `index`, when it falls inside the stored range.
    #[inline]
    fn pos(&self, index: LogIndex) -> Option<usize> {
        let i = index.as_u64();
        if i <= self.compacted_through {
            return None;
        }
        let off = (i - self.compacted_through - 1) as usize;
        (off < self.slots.len()).then_some(off)
    }

    /// Advances the cached first-gap cursor over any occupied run.
    fn advance_first_gap(&mut self) {
        while let Some(off) = self.pos(LogIndex(self.first_gap)) {
            if self.slots[off].is_some() {
                self.first_gap += 1;
            } else {
                break;
            }
        }
    }

    /// Drops trailing unoccupied slots so `last_index` stays arithmetic.
    fn trim_back(&mut self) {
        while matches!(self.slots.back(), Some(None)) {
            self.slots.pop_back();
        }
    }

    /// The entry at `index`, if present.
    pub fn get(&self, index: LogIndex) -> Option<&LogEntry> {
        self.slots[self.pos(index)?].as_ref()
    }

    /// Mutable access to the entry at `index`.
    pub fn get_mut(&mut self, index: LogIndex) -> Option<&mut LogEntry> {
        let off = self.pos(index)?;
        self.slots[off].as_mut()
    }

    /// Inserts (or replaces) the entry at `index`, returning the previous
    /// occupant if any.
    ///
    /// # Panics
    ///
    /// Panics if `index` is the zero sentinel or lies at or below the
    /// compaction horizon (compacted indices are decided and immutable).
    pub fn insert(&mut self, index: LogIndex, entry: LogEntry) -> Option<LogEntry> {
        assert!(!index.is_zero(), "cannot insert at LogIndex::ZERO");
        assert!(
            index.as_u64() > self.compacted_through,
            "cannot insert at {index}: compacted through #{}",
            self.compacted_through
        );
        let off = (index.as_u64() - self.compacted_through - 1) as usize;
        let old = if off < self.slots.len() {
            self.slots[off].replace(entry)
        } else {
            // Grow the tail: interior slots between the old end and `index`
            // become holes.
            self.slots.resize(off, None);
            self.slots.push_back(Some(entry));
            None
        };
        if old.is_none() {
            self.occupied += 1;
            if index.as_u64() == self.first_gap {
                self.first_gap += 1;
                self.advance_first_gap();
            }
        }
        old
    }

    // ------------------------------------------------------------------
    // Compaction
    // ------------------------------------------------------------------

    /// The lowest index still retained as an entry: `compacted_through + 1`.
    /// For an uncompacted log this is [`LogIndex::FIRST`].
    pub fn first_index(&self) -> LogIndex {
        LogIndex(self.compacted_through + 1)
    }

    /// The highest compacted index ([`LogIndex::ZERO`] when nothing has
    /// been compacted).
    pub fn compacted_through(&self) -> LogIndex {
        LogIndex(self.compacted_through)
    }

    /// The term at the compaction horizon (the snapshot's `last_term`).
    pub fn compacted_term(&self) -> Term {
        self.compacted_term
    }

    /// Compacts the contiguous occupied prefix up to `through`, removing
    /// those entries and recording the boundary term. The effective bound is
    /// clamped so compaction **never swallows a hole**: only indices below
    /// [`SparseLog::first_gap`] are eligible. Returns the new compaction
    /// horizon (unchanged if nothing could be compacted).
    pub fn compact_to(&mut self, through: LogIndex) -> LogIndex {
        // Never compact across a hole, and never move backwards.
        let bound = self.first_gap.saturating_sub(1);
        let target = through.as_u64().min(bound);
        if target <= self.compacted_through {
            return self.compacted_through();
        }
        // The whole range (compacted_through, target] is occupied (it lies
        // below the first gap), so the drain is a front pointer move.
        let drained = (target - self.compacted_through) as usize;
        self.compacted_term = self.slots[drained - 1]
            .as_ref()
            .map(|e| e.term)
            .expect("contiguous prefix below first_gap is occupied");
        self.slots.drain(..drained);
        self.occupied -= drained;
        self.compacted_through = target;
        self.compacted_through()
    }

    /// Installs a snapshot boundary received from a leader: everything at or
    /// below `last_index` is replaced by the snapshot. If this log holds a
    /// matching entry at `last_index` (same term), the suffix above it is
    /// retained (it is consistent with the snapshot's history); otherwise
    /// the whole log is discarded. Returns `false` (no-op) when the snapshot
    /// is older than the current compaction horizon.
    pub fn install_snapshot(&mut self, last_index: LogIndex, last_term: Term) -> bool {
        if last_index.as_u64() <= self.compacted_through {
            return false;
        }
        let suffix_consistent = self
            .get(last_index)
            .is_some_and(|e| e.term == last_term);
        if suffix_consistent {
            let drained = (last_index.as_u64() - self.compacted_through) as usize;
            let dropped = self
                .slots
                .drain(..drained)
                .filter(Option::is_some)
                .count();
            self.occupied -= dropped;
        } else {
            self.slots.clear();
            self.occupied = 0;
        }
        self.compacted_through = last_index.as_u64();
        self.compacted_term = last_term;
        self.trim_back();
        self.first_gap = self.compacted_through + 1;
        self.advance_first_gap();
        true
    }

    /// Appends after the current last index, returning the new entry's index.
    pub fn append(&mut self, entry: LogEntry) -> LogIndex {
        let index = self.last_index().next();
        self.slots.push_back(Some(entry));
        self.occupied += 1;
        if index.as_u64() == self.first_gap {
            self.first_gap += 1;
            // Appending lands past every stored slot; nothing above it can
            // already be occupied, so no further advance is needed.
        }
        index
    }

    /// Removes the entry at `index`, returning it if present.
    pub fn remove(&mut self, index: LogIndex) -> Option<LogEntry> {
        let off = self.pos(index)?;
        let old = self.slots[off].take();
        if old.is_some() {
            self.occupied -= 1;
            self.first_gap = self.first_gap.min(index.as_u64());
            self.trim_back();
        }
        old
    }

    /// Removes all entries at `from` and beyond (classic-Raft conflict
    /// truncation). Returns how many entries were removed. Truncation never
    /// reaches below the compaction horizon (those indices hold no entries).
    pub fn truncate_from(&mut self, from: LogIndex) -> usize {
        let cut = from.as_u64().max(self.compacted_through + 1);
        let off = (cut - self.compacted_through - 1) as usize;
        if off >= self.slots.len() {
            return 0;
        }
        let removed = self
            .slots
            .drain(off..)
            .filter(Option::is_some)
            .count();
        self.occupied -= removed;
        self.first_gap = self.first_gap.min(cut);
        self.trim_back();
        removed
    }

    /// The highest occupied index; for a fully compacted (or empty) log this
    /// is the compaction horizon ([`LogIndex::ZERO`] when never compacted).
    pub fn last_index(&self) -> LogIndex {
        LogIndex(self.compacted_through + self.slots.len() as u64)
    }

    /// The term of the entry at `index`: [`Term::ZERO`] for the sentinel or
    /// a hole, the snapshot boundary term at the compaction horizon.
    pub fn term_at(&self, index: LogIndex) -> Term {
        if index.as_u64() == self.compacted_through && self.compacted_through > 0 {
            return self.compacted_term;
        }
        self.get(index).map_or(Term::ZERO, |e| e.term)
    }

    /// The lowest unoccupied index above the compaction horizon. For a dense
    /// log this is `last_index + 1`; with holes it is the first hole.
    pub fn first_gap(&self) -> LogIndex {
        LogIndex(self.first_gap)
    }

    /// `true` if indices `first_index..=last_index` are all occupied.
    pub fn is_dense(&self) -> bool {
        self.first_gap == self.last_index().as_u64() + 1
    }

    /// Detects a **front gap**: the log holds entries, but the lowest one
    /// sits above `compacted_through + 1`, i.e. a hole starts immediately
    /// after the snapshot horizon. A log grown through normal protocol
    /// operation never front-gaps (compaction only ever consumes a
    /// contiguous occupied prefix); only externally reconstructed views —
    /// C-Raft's global log rebuilt from partially compacted global-state
    /// entries — can. Returns `(horizon, first_retained)` when gapped.
    pub fn front_gap(&self) -> Option<(LogIndex, LogIndex)> {
        if self.occupied == 0 || self.slots.front()?.is_some() {
            return None;
        }
        // The leading run of holes is exactly the front gap; scanning it is
        // proportional to the gap itself, which only the reconstruction
        // path ever creates (and keeps small).
        let lead = self.slots.iter().take_while(|s| s.is_none()).count() as u64;
        Some((
            self.compacted_through(),
            LogIndex(self.compacted_through + 1 + lead),
        ))
    }

    /// Number of occupied indices.
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// `true` if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// Iterates `(index, entry)` pairs in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = (LogIndex, &LogEntry)> {
        let base = self.compacted_through + 1;
        self.slots
            .iter()
            .enumerate()
            .filter_map(move |(i, s)| s.as_ref().map(|e| (LogIndex(base + i as u64), e)))
    }

    /// The slots of `[from, to]` as (at most) two contiguous slices plus the
    /// absolute index of the first returned slot. O(1) positioning — range
    /// walks start at their offset instead of searching.
    fn slot_slices(
        &self,
        from: LogIndex,
        to: LogIndex,
    ) -> (u64, &[Option<LogEntry>], &[Option<LogEntry>]) {
        let base = self.compacted_through + 1;
        let end = base + self.slots.len() as u64; // exclusive
        let lo = from.as_u64().max(base);
        let hi = to.as_u64().saturating_add(1).min(end); // exclusive
        if lo >= hi {
            return (lo, &[], &[]);
        }
        let (a, b) = ((lo - base) as usize, (hi - base) as usize);
        let (s1, s2) = self.slots.as_slices();
        let n1 = s1.len();
        let first = &s1[a.min(n1)..b.min(n1)];
        let second = &s2[a.saturating_sub(n1)..b.saturating_sub(n1)];
        (lo, first, second)
    }

    /// Iterates occupied `(index, entry)` pairs within `[from, to]`.
    pub fn range(
        &self,
        from: LogIndex,
        to: LogIndex,
    ) -> impl Iterator<Item = (LogIndex, &LogEntry)> {
        let (start, s1, s2) = self.slot_slices(from, to);
        s1.iter()
            .chain(s2)
            .enumerate()
            .filter_map(move |(i, s)| s.as_ref().map(|e| (LogIndex(start + i as u64), e)))
    }

    /// Iterates the **contiguous occupied run** starting at `from`: yields
    /// `(from, e)`, `(from+1, e)`, ... and stops at the first hole (or the
    /// end of the log). The protocols' commit scans and decision loops walk
    /// this run as a slice pass instead of issuing per-index lookups.
    pub fn contiguous_from(
        &self,
        from: LogIndex,
    ) -> impl Iterator<Item = (LogIndex, &LogEntry)> {
        let (start, s1, s2) = self.slot_slices(from, self.last_index());
        // A clamped start means `from` itself holds no entry (below the
        // horizon or past the end): the run rooted at `from` is empty.
        let aligned = start == from.as_u64();
        s1.iter()
            .chain(s2)
            .take_while(move |s| aligned && s.is_some())
            .enumerate()
            .filter_map(move |(i, s)| s.as_ref().map(|e| (LogIndex(start + i as u64), e)))
    }

    /// Collects clones of entries in `[from, to]` that are present,
    /// preserving order — the payload of an AppendEntries message.
    pub fn collect_range(&self, from: LogIndex, to: LogIndex) -> Vec<(LogIndex, LogEntry)> {
        self.range(from, to).map(|(i, e)| (i, e.clone())).collect()
    }

    /// Collects the occupied slots of `[from, to]` into an [`EntryList`]
    /// honoring `budget`: admission stops at whichever of the entry-count or
    /// encoded-byte cap binds first, but at least one entry is always taken
    /// when the range holds any (see [`AppendBudget::admits`]).
    ///
    /// The budget charges each entry its `(index, entry)` wire encoding, the
    /// exact bytes it occupies inside an AppendEntries message.
    ///
    /// Zero-copy, single pass: entries clone — `Bytes` payloads by refcount
    /// — straight into a buffer pre-sized to the admission bound
    /// (`min(range span, entry cap)`, so it never grows), and the buffer is
    /// *moved* behind the list's `Arc`. No per-recipient-group intermediate
    /// vector and no freeze-time copy exist anymore.
    pub fn collect_range_budgeted(
        &self,
        from: LogIndex,
        to: LogIndex,
        budget: AppendBudget,
    ) -> EntryList {
        let (start, s1, s2) = self.slot_slices(from, to);
        let span = s1.len() + s2.len();
        let mut out = Vec::with_capacity(span.min(budget.max_entries));
        let mut bytes = 0usize;
        for (i, slot) in s1.iter().chain(s2).enumerate() {
            let Some(e) = slot.as_ref() else { continue };
            let sz = 8 + e.encoded_len();
            if !budget.admits(out.len(), bytes, sz) {
                break;
            }
            bytes += sz;
            out.push((LogIndex(start + i as u64), e.clone()));
        }
        EntryList::from_vec(out)
    }

    /// All self-approved entries, for Fast Raft's election recovery (§IV-C).
    pub fn self_approved(&self) -> Vec<(LogIndex, LogEntry)> {
        self.iter()
            .filter(|(_, e)| e.approval == Approval::SelfApproved)
            .map(|(i, e)| (i, e.clone()))
            .collect()
    }

    /// The highest index holding a **leader-approved** entry, which is Fast
    /// Raft's `lastLeaderIndex` (§IV-A).
    pub fn last_leader_index(&self) -> LogIndex {
        let base = self.compacted_through + 1;
        self.slots
            .iter()
            .enumerate()
            .rev()
            .find_map(|(i, s)| {
                s.as_ref()
                    .filter(|e| e.approval == Approval::LeaderApproved)
                    .map(|_| LogIndex(base + i as u64))
            })
            .unwrap_or(LogIndex::ZERO)
    }

    /// The configuration from the highest-indexed config entry, if any —
    /// "the last configuration appended to the log" (§IV-A).
    pub fn latest_config(&self) -> Option<(LogIndex, &crate::Configuration)> {
        let base = self.compacted_through + 1;
        self.slots.iter().enumerate().rev().find_map(|(i, s)| {
            s.as_ref()
                .and_then(|e| e.as_config().map(|c| (LogIndex(base + i as u64), c)))
        })
    }
}

impl FromIterator<LogEntry> for SparseLog {
    /// Builds a dense log from entries in order, starting at index 1.
    fn from_iter<I: IntoIterator<Item = LogEntry>>(iter: I) -> Self {
        let mut log = SparseLog::new();
        for e in iter {
            log.append(e);
        }
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Configuration, EntryId, NodeId};
    use bytes::Bytes;

    fn entry(term: u64, seq: u64) -> LogEntry {
        LogEntry::data(
            Term(term),
            EntryId::new(NodeId(1), seq),
            Bytes::from_static(b"v"),
        )
    }

    #[test]
    fn append_is_dense() {
        let mut log = SparseLog::new();
        assert_eq!(log.append(entry(1, 0)), LogIndex(1));
        assert_eq!(log.append(entry(1, 1)), LogIndex(2));
        assert!(log.is_dense());
        assert_eq!(log.len(), 2);
        assert_eq!(log.first_gap(), LogIndex(3));
    }

    #[test]
    fn sparse_insert_creates_holes() {
        let mut log = SparseLog::new();
        log.insert(LogIndex(5), entry(1, 0));
        assert_eq!(log.last_index(), LogIndex(5));
        assert_eq!(log.first_gap(), LogIndex(1));
        assert!(!log.is_dense());
        log.insert(LogIndex(1), entry(1, 1));
        assert_eq!(log.first_gap(), LogIndex(2));
    }

    #[test]
    fn insert_replaces_and_returns_previous() {
        let mut log = SparseLog::new();
        log.insert(LogIndex(1), entry(1, 0));
        let old = log.insert(LogIndex(1), entry(2, 1));
        assert_eq!(old.unwrap().term, Term(1));
        assert_eq!(log.term_at(LogIndex(1)), Term(2));
    }

    #[test]
    #[should_panic(expected = "LogIndex::ZERO")]
    fn insert_at_zero_panics() {
        SparseLog::new().insert(LogIndex::ZERO, entry(1, 0));
    }

    #[test]
    fn truncate_from_removes_suffix() {
        let mut log: SparseLog = (0..5).map(|s| entry(1, s)).collect();
        assert_eq!(log.truncate_from(LogIndex(3)), 3);
        assert_eq!(log.last_index(), LogIndex(2));
        assert_eq!(log.truncate_from(LogIndex(10)), 0);
    }

    #[test]
    fn truncate_resets_first_gap_and_trims_holes() {
        let mut log = SparseLog::new();
        log.insert(LogIndex(1), entry(1, 0));
        log.insert(LogIndex(2), entry(1, 1));
        log.insert(LogIndex(5), entry(1, 2)); // holes at 3, 4
        assert_eq!(log.truncate_from(LogIndex(5)), 1);
        // The trailing holes at 3 and 4 vanish with the entry above them.
        assert_eq!(log.last_index(), LogIndex(2));
        assert_eq!(log.first_gap(), LogIndex(3));
        assert!(log.is_dense());
    }

    #[test]
    fn remove_pulls_first_gap_back() {
        let mut log: SparseLog = (0..4).map(|s| entry(1, s)).collect();
        assert_eq!(log.first_gap(), LogIndex(5));
        log.remove(LogIndex(2));
        assert_eq!(log.first_gap(), LogIndex(2));
        assert_eq!(log.last_index(), LogIndex(4));
        // Re-filling the hole advances the cursor across the existing run.
        log.insert(LogIndex(2), entry(2, 9));
        assert_eq!(log.first_gap(), LogIndex(5));
    }

    #[test]
    fn term_at_sentinel_and_hole() {
        let mut log = SparseLog::new();
        log.insert(LogIndex(3), entry(4, 0));
        assert_eq!(log.term_at(LogIndex::ZERO), Term::ZERO);
        assert_eq!(log.term_at(LogIndex(1)), Term::ZERO);
        assert_eq!(log.term_at(LogIndex(3)), Term(4));
    }

    #[test]
    fn collect_range_skips_holes() {
        let mut log = SparseLog::new();
        log.insert(LogIndex(1), entry(1, 0));
        log.insert(LogIndex(3), entry(1, 1));
        let got = log.collect_range(LogIndex(1), LogIndex(3));
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, LogIndex(1));
        assert_eq!(got[1].0, LogIndex(3));
    }

    #[test]
    fn contiguous_from_stops_at_hole() {
        let mut log = SparseLog::new();
        log.insert(LogIndex(1), entry(1, 0));
        log.insert(LogIndex(2), entry(1, 1));
        log.insert(LogIndex(4), entry(1, 2)); // hole at 3
        let run: Vec<u64> = log
            .contiguous_from(LogIndex(1))
            .map(|(i, _)| i.as_u64())
            .collect();
        assert_eq!(run, vec![1, 2]);
        assert_eq!(log.contiguous_from(LogIndex(3)).count(), 0);
        let run4: Vec<u64> = log
            .contiguous_from(LogIndex(4))
            .map(|(i, _)| i.as_u64())
            .collect();
        assert_eq!(run4, vec![4]);
        // A start below the horizon or above the end yields nothing
        // contiguous with `from` itself.
        assert_eq!(log.contiguous_from(LogIndex(9)).count(), 0);
    }

    #[test]
    fn budgeted_collect_honors_entry_cap() {
        let log: SparseLog = (0..10).map(|s| entry(1, s)).collect();
        let got = log.collect_range_budgeted(
            LogIndex(1),
            LogIndex(10),
            AppendBudget::new(3, usize::MAX),
        );
        assert_eq!(got.len(), 3);
        assert_eq!(got.as_slice()[2].0, LogIndex(3));
    }

    #[test]
    fn budgeted_collect_honors_byte_cap() {
        let log: SparseLog = (0..10).map(|s| entry(1, s)).collect();
        let per_entry = 8 + log.get(LogIndex(1)).unwrap().encoded_len();
        // Room for exactly two entries.
        let got = log.collect_range_budgeted(
            LogIndex(1),
            LogIndex(10),
            AppendBudget::new(128, 2 * per_entry),
        );
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn budgeted_collect_always_takes_one() {
        let log: SparseLog = (0..3).map(|s| entry(1, s)).collect();
        // A byte budget smaller than any entry still yields one entry.
        let got =
            log.collect_range_budgeted(LogIndex(1), LogIndex(3), AppendBudget::new(128, 1));
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn budgeted_collect_skips_holes() {
        let mut log = SparseLog::new();
        log.insert(LogIndex(1), entry(1, 0));
        log.insert(LogIndex(4), entry(1, 1));
        let got = log.collect_range_budgeted(
            LogIndex(1),
            LogIndex(4),
            AppendBudget::new(128, usize::MAX),
        );
        assert_eq!(got.len(), 2);
        assert_eq!(got.as_slice()[1].0, LogIndex(4));
    }

    #[test]
    fn self_approved_filter() {
        let mut log = SparseLog::new();
        log.insert(LogIndex(1), entry(1, 0)); // leader-approved
        log.insert(
            LogIndex(2),
            entry(1, 1).with_approval(Approval::SelfApproved),
        );
        log.insert(
            LogIndex(4),
            entry(1, 2).with_approval(Approval::SelfApproved),
        );
        let sa = log.self_approved();
        assert_eq!(sa.len(), 2);
        assert_eq!(sa[0].0, LogIndex(2));
        assert_eq!(sa[1].0, LogIndex(4));
    }

    #[test]
    fn last_leader_index_ignores_self_approved_suffix() {
        let mut log = SparseLog::new();
        log.insert(LogIndex(1), entry(1, 0));
        log.insert(
            LogIndex(2),
            entry(1, 1).with_approval(Approval::SelfApproved),
        );
        assert_eq!(log.last_leader_index(), LogIndex(1));
        assert_eq!(log.last_index(), LogIndex(2));
    }

    #[test]
    fn latest_config_finds_highest() {
        let mut log = SparseLog::new();
        let c1 = Configuration::new([NodeId(1)]);
        let c2 = Configuration::new([NodeId(1), NodeId(2)]);
        log.append(LogEntry::config(Term(1), EntryId::new(NodeId(1), 0), c1));
        log.append(entry(1, 1));
        log.append(LogEntry::config(
            Term(1),
            EntryId::new(NodeId(1), 2),
            c2.clone(),
        ));
        let (idx, cfg) = log.latest_config().unwrap();
        assert_eq!(idx, LogIndex(3));
        assert_eq!(cfg, &c2);
    }

    #[test]
    fn remove_entry() {
        let mut log = SparseLog::new();
        log.insert(LogIndex(2), entry(1, 0));
        assert!(log.remove(LogIndex(2)).is_some());
        assert!(log.remove(LogIndex(2)).is_none());
        assert!(log.is_empty());
    }

    #[test]
    fn compact_removes_prefix_and_keeps_boundary_term() {
        let mut log: SparseLog = (0..5).map(|s| entry(s + 1, s)).collect();
        assert_eq!(log.compact_to(LogIndex(3)), LogIndex(3));
        assert_eq!(log.first_index(), LogIndex(4));
        assert_eq!(log.compacted_through(), LogIndex(3));
        assert_eq!(log.len(), 2);
        assert_eq!(log.last_index(), LogIndex(5));
        // The boundary term survives compaction for log-matching checks.
        assert_eq!(log.term_at(LogIndex(3)), Term(3));
        assert_eq!(log.compacted_term(), Term(3));
        // Holes (removed entries) below the horizon read as Term::ZERO.
        assert_eq!(log.term_at(LogIndex(2)), Term::ZERO);
        assert!(log.is_dense());
        assert_eq!(log.first_gap(), LogIndex(6));
    }

    #[test]
    fn compact_never_swallows_a_hole() {
        let mut log = SparseLog::new();
        log.insert(LogIndex(1), entry(1, 0));
        log.insert(LogIndex(2), entry(1, 1));
        log.insert(LogIndex(4), entry(1, 2)); // hole at 3
        assert_eq!(log.compact_to(LogIndex(4)), LogIndex(2));
        assert_eq!(log.first_index(), LogIndex(3));
        assert!(log.get(LogIndex(4)).is_some());
        // Compaction is monotone: a lower target is a no-op.
        assert_eq!(log.compact_to(LogIndex(1)), LogIndex(2));
    }

    #[test]
    fn fully_compacted_log_keeps_last_index() {
        let mut log: SparseLog = (0..3).map(|s| entry(2, s)).collect();
        log.compact_to(LogIndex(3));
        assert!(log.is_empty());
        assert_eq!(log.last_index(), LogIndex(3));
        assert_eq!(log.term_at(LogIndex(3)), Term(2));
        assert_eq!(log.append(entry(3, 9)), LogIndex(4));
    }

    #[test]
    #[should_panic(expected = "compacted through")]
    fn insert_below_horizon_panics() {
        let mut log: SparseLog = (0..3).map(|s| entry(1, s)).collect();
        log.compact_to(LogIndex(2));
        log.insert(LogIndex(1), entry(1, 9));
    }

    #[test]
    fn install_snapshot_keeps_consistent_suffix() {
        let mut log: SparseLog = (0..5).map(|s| entry(1, s)).collect();
        assert!(log.install_snapshot(LogIndex(3), Term(1)));
        assert_eq!(log.first_index(), LogIndex(4));
        assert_eq!(log.len(), 2);
        assert_eq!(log.last_index(), LogIndex(5));
    }

    #[test]
    fn install_snapshot_discards_conflicting_log() {
        let mut log: SparseLog = (0..5).map(|s| entry(1, s)).collect();
        // Boundary term mismatch: the whole log is unverifiable.
        assert!(log.install_snapshot(LogIndex(3), Term(9)));
        assert!(log.is_empty());
        assert_eq!(log.last_index(), LogIndex(3));
        assert_eq!(log.term_at(LogIndex(3)), Term(9));
    }

    #[test]
    fn install_snapshot_beyond_log_discards_all() {
        let mut log: SparseLog = (0..2).map(|s| entry(1, s)).collect();
        assert!(log.install_snapshot(LogIndex(10), Term(4)));
        assert!(log.is_empty());
        assert_eq!(log.first_index(), LogIndex(11));
        // A stale snapshot is refused.
        assert!(!log.install_snapshot(LogIndex(5), Term(2)));
    }

    #[test]
    fn front_gap_detection_on_reconstructed_view() {
        let mut log = SparseLog::new();
        assert_eq!(log.front_gap(), None);
        log.insert(LogIndex(4), entry(1, 0));
        log.insert(LogIndex(5), entry(1, 1));
        assert_eq!(log.front_gap(), Some((LogIndex::ZERO, LogIndex(4))));
        // Filling the front closes the gap.
        for i in 1..=3u64 {
            log.insert(LogIndex(i), entry(1, 10 + i));
        }
        assert_eq!(log.front_gap(), None);
        assert!(log.is_dense());
    }

    #[test]
    fn layout_is_canonical_for_equality() {
        // Two logs with identical observable content compare equal no
        // matter how they were built (append vs out-of-order insert vs
        // remove-then-insert) — the canonical layout has no hidden state.
        let a: SparseLog = (0..3).map(|s| entry(1, s)).collect();
        let mut b = SparseLog::new();
        b.insert(LogIndex(3), entry(1, 2));
        b.insert(LogIndex(1), entry(1, 0));
        b.insert(LogIndex(2), entry(1, 1));
        assert_eq!(a, b);
        let mut c = a.clone();
        c.insert(LogIndex(9), entry(1, 9));
        c.remove(LogIndex(9));
        assert_eq!(a, c);
    }
}
