//! The replicated log, allowing holes.
//!
//! Classic Raft treats the log as a dense, append-only list. Fast Raft lets
//! proposers address specific indices directly, so a follower can hold an
//! entry at index `i` while index `j < i` is still empty (§III-B). The log
//! is therefore logically a sparse map from index to entry; classic Raft
//! simply maintains the invariant that it never creates holes.
//!
//! ## Representation: sealed segments + a dense slot tail
//!
//! Holes are rare and *structured*: they only ever live in the bounded
//! in-flight window above the contiguous committed prefix (§IV), so the
//! dominant-case shape of the log is a dense array, not a search tree. The
//! log stores that shape in two tiers:
//!
//! - **Sealed segments** ([`Seg`]): the settled history below the in-flight
//!   window, frozen into immutable `Arc`-shared runs of exactly [`SEG`]
//!   `(index, entry)` pairs. AppendEntries assembly
//!   ([`SparseLog::collect_range_budgeted`]) cuts an [`EntryList`] **window**
//!   straight out of a segment — no per-entry clone, no buffer allocation.
//! - **The slot tail**: a `VecDeque<Option<LogEntry>>` of slots indexed by
//!   offset from `sealed_end + 1`, exactly the PR 5 dense-prefix layout,
//!   holding the mutable tip (in-flight window, holes, conflict-truncation
//!   territory).
//!
//! Entries migrate from slots into a new segment once the contiguous
//! occupied prefix of the tail outgrows `SEG + SEAL_GUARD` (a move, not a
//! copy). The guard keeps the most recent entries unsealed, because the only
//! mutations honest traffic performs near the tip — conflict truncation,
//! hole punching — would otherwise have to *unseal* (melt segments back into
//! slots, the rare slow path that keeps every mutation correct).
//!
//! Within the tail, the PR 5 properties hold unchanged: `get`/`term_at` are
//! O(1) loads (segment location is a shift, since `SEG` is a power of two),
//! appends/inserts fill slots, compaction and truncation are front/back
//! drains, and an occupancy count plus a cached [`SparseLog::first_gap`]
//! cursor keep hole queries O(1) amortized.
//!
//! Because how much history is sealed depends on the *order* of operations,
//! the byte layout is no longer canonical; `PartialEq` therefore compares
//! observable content (horizon, boundary term, and the `(index, entry)`
//! sequence), so logs that went through different histories but hold the
//! same entries still compare equal.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::{Approval, AppendBudget, EntryList, LogEntry, LogIndex, Term, Wire};

/// Defensive ceiling on how far above a node's own log end (or commit
/// floor) a remote-addressed insert may reach. The dense layout
/// materializes the addressed span as slots, so an absurd index from a
/// corrupt or malicious peer must be *dropped*, not allocated: a message
/// naming index 2^40 would otherwise commit the receiver to a terabyte of
/// `None`s. Honest traffic never comes close — real holes live in the
/// bounded in-flight window above the contiguous prefix (§IV). Shared by
/// both protocols' receive paths (`consensus_core` inserts, `raft`
/// AppendEntries) so the bound cannot drift between them.
pub const MAX_INSERT_WINDOW: u64 = 1 << 20;

/// Entries per sealed segment. A power of two, so locating a sealed index
/// is a shift instead of a division.
const SEG: usize = 1024;

/// How much contiguous occupied prefix must pile up in the slot tail
/// *beyond* a whole segment before it seals. The guard keeps the most
/// recent entries unsealed: conflict truncation and Fast Raft hole
/// mutations target the tip, and each would force an unseal if the tip
/// were frozen eagerly.
const SEAL_GUARD: usize = 256;

/// A sealed, immutable run of exactly [`SEG`] consecutive occupied entries.
///
/// The pair vector is `Arc`-shared with every [`EntryList`] window cut from
/// it, so an in-flight AppendEntries payload stays valid (and allocation
/// free) even if the log later unseals or compacts this segment.
#[derive(Clone, Debug)]
struct Seg {
    /// Absolute index of `entries[0]`.
    first: u64,
    /// Exactly [`SEG`] `(index, entry)` pairs.
    entries: Arc<Vec<(LogIndex, LogEntry)>>,
}

impl Seg {
    /// Absolute index of the last entry.
    fn last(&self) -> u64 {
        self.first + SEG as u64 - 1
    }
}

/// A 1-indexed replicated log that may contain holes, with an optionally
/// **compacted prefix**.
///
/// Compaction (snapshotting) removes a contiguous decided prefix of the log:
/// indices `1..=compacted_through` hold no entries anymore, but the log
/// remembers the boundary index and its term so log-matching checks against
/// the snapshot boundary still work. Compaction may only ever cover a
/// contiguous occupied prefix — it never swallows a hole (see
/// [`SparseLog::compact_to`]).
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use wire::{EntryId, LogEntry, LogIndex, NodeId, SparseLog, Term};
///
/// let mut log = SparseLog::new();
/// let e = LogEntry::data(Term(1), EntryId::new(NodeId(1), 0), Bytes::from_static(b"v"));
/// // Insert at index 3 directly; 1 and 2 are holes.
/// log.insert(LogIndex(3), e.clone());
/// assert_eq!(log.last_index(), LogIndex(3));
/// assert_eq!(log.get(LogIndex(1)), None);
/// assert_eq!(log.first_gap(), LogIndex(1));
/// assert_eq!(log.first_index(), LogIndex(1));
/// ```
#[derive(Clone, Debug)]
pub struct SparseLog {
    /// Sealed immutable segments covering `(…, sealed_end]` contiguously.
    /// The first segment may begin at or below the compaction horizon (a
    /// mid-segment snapshot leaves a dead prefix that is reclaimed when the
    /// whole segment compacts away).
    segs: VecDeque<Seg>,
    /// Dense slot tail: `slots[i]` holds the entry at index
    /// `sealed_end + 1 + i`. The last slot, if any, is occupied.
    slots: VecDeque<Option<LogEntry>>,
    /// Highest compacted (snapshotted) index; 0 = nothing compacted.
    compacted_through: u64,
    /// Term of the (removed) entry at `compacted_through` — the snapshot
    /// boundary term, needed for log-matching at the compaction horizon.
    compacted_term: Term,
    /// Index of the last sealed entry; equals `compacted_through` when no
    /// segments exist. Invariant: every index in
    /// `(compacted_through, sealed_end]` is occupied (sealing only consumes
    /// contiguous occupied runs below `first_gap`).
    sealed_end: u64,
    /// Number of occupied (live) indices.
    occupied: usize,
    /// Cached lowest unoccupied index above the compaction horizon.
    first_gap: u64,
}

impl Default for SparseLog {
    fn default() -> Self {
        SparseLog {
            segs: VecDeque::new(),
            slots: VecDeque::new(),
            compacted_through: 0,
            compacted_term: Term::ZERO,
            sealed_end: 0,
            occupied: 0,
            first_gap: 1,
        }
    }
}

impl SparseLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        SparseLog::default()
    }

    /// The slot offset of `index`, when it falls inside the unsealed tail.
    #[inline]
    fn slot_pos(&self, index: LogIndex) -> Option<usize> {
        let i = index.as_u64();
        if i <= self.sealed_end {
            return None;
        }
        let off = (i - self.sealed_end - 1) as usize;
        (off < self.slots.len()).then_some(off)
    }

    /// The segment holding sealed index `i` and the offset within it.
    /// Precondition: `segs` is non-empty and `segs[0].first <= i <=
    /// sealed_end` (every live sealed index qualifies).
    #[inline]
    fn seg_locate(&self, i: u64) -> (usize, usize) {
        let k = ((i - self.segs[0].first) as usize) / SEG;
        (k, (i - self.segs[k].first) as usize)
    }

    /// The live (above-horizon) sealed entry at `i`, if `i` is sealed.
    #[inline]
    fn sealed_get(&self, i: u64) -> Option<&LogEntry> {
        if i <= self.compacted_through || i > self.sealed_end {
            return None;
        }
        let (k, off) = self.seg_locate(i);
        Some(&self.segs[k].entries[off].1)
    }

    /// Advances the cached first-gap cursor over any occupied run.
    fn advance_first_gap(&mut self) {
        if self.first_gap <= self.sealed_end {
            // The sealed region is hole-free by construction.
            self.first_gap = self.sealed_end + 1;
        }
        while let Some(off) = self.slot_pos(LogIndex(self.first_gap)) {
            if self.slots[off].is_some() {
                self.first_gap += 1;
            } else {
                break;
            }
        }
    }

    /// Drops trailing unoccupied slots so `last_index` stays arithmetic.
    fn trim_back(&mut self) {
        while matches!(self.slots.back(), Some(None)) {
            self.slots.pop_back();
        }
    }

    /// Seals whole segments off the front of the slot tail while the
    /// contiguous occupied prefix extends at least [`SEAL_GUARD`] beyond a
    /// full segment. A move, not a copy: each entry relocates from its slot
    /// into the frozen pair vector exactly once.
    fn maybe_seal(&mut self) {
        while self.first_gap - self.sealed_end > (SEG + SEAL_GUARD) as u64 {
            let first = self.sealed_end + 1;
            let mut entries = Vec::with_capacity(SEG);
            for k in 0..SEG as u64 {
                let e = self
                    .slots
                    .pop_front()
                    .expect("sealable prefix lies inside the stored range")
                    .expect("sealable prefix below first_gap is occupied");
                entries.push((LogIndex(first + k), e));
            }
            self.segs.push_back(Seg {
                first,
                entries: Arc::new(entries),
            });
            self.sealed_end += SEG as u64;
        }
    }

    /// Melts segments back into the slot tail until `sealed_end < index`.
    /// The rare slow path: only conflict truncation, hole punching, or a
    /// genuine replace reaching below the seal boundary pays it.
    fn unseal_to(&mut self, index: u64) {
        while self.sealed_end >= index {
            let seg = self.segs.pop_back().expect("sealed region has segments");
            self.sealed_end = self
                .segs
                .back()
                .map_or(self.compacted_through, Seg::last);
            // Unique segments move their entries back; shared ones (an
            // in-flight EntryList window still references the allocation)
            // are cloned, leaving the window's copy frozen.
            let entries = Arc::try_unwrap(seg.entries).unwrap_or_else(|a| (*a).clone());
            for (i, e) in entries.into_iter().rev() {
                if i.as_u64() > self.compacted_through {
                    self.slots.push_front(Some(e));
                }
            }
        }
    }

    /// The entry at `index`, if present.
    pub fn get(&self, index: LogIndex) -> Option<&LogEntry> {
        if let Some(e) = self.sealed_get(index.as_u64()) {
            return Some(e);
        }
        self.slots[self.slot_pos(index)?].as_ref()
    }

    /// Mutable access to the entry at `index`. Reaching into a sealed
    /// segment is copy-on-write: in-flight [`EntryList`] windows keep the
    /// pre-mutation segment.
    pub fn get_mut(&mut self, index: LogIndex) -> Option<&mut LogEntry> {
        let i = index.as_u64();
        if i > self.compacted_through && i <= self.sealed_end {
            let (k, off) = self.seg_locate(i);
            return Some(&mut Arc::make_mut(&mut self.segs[k].entries)[off].1);
        }
        let off = self.slot_pos(index)?;
        self.slots[off].as_mut()
    }

    /// Inserts (or replaces) the entry at `index`, returning the previous
    /// occupant if any.
    ///
    /// # Panics
    ///
    /// Panics if `index` is the zero sentinel or lies at or below the
    /// compaction horizon (compacted indices are decided and immutable).
    pub fn insert(&mut self, index: LogIndex, entry: LogEntry) -> Option<LogEntry> {
        assert!(!index.is_zero(), "cannot insert at LogIndex::ZERO");
        assert!(
            index.as_u64() > self.compacted_through,
            "cannot insert at {index}: compacted through #{}",
            self.compacted_through
        );
        if let Some(cur) = self.sealed_get(index.as_u64()) {
            if *cur == entry {
                // Idempotent re-insert (a retried or duplicated message):
                // the sealed segment already holds exactly this entry, so
                // the replace is a no-op — don't unseal for it.
                return Some(entry);
            }
            self.unseal_to(index.as_u64());
        }
        let off = (index.as_u64() - self.sealed_end - 1) as usize;
        let old = if off < self.slots.len() {
            self.slots[off].replace(entry)
        } else {
            // Grow the tail: interior slots between the old end and `index`
            // become holes.
            self.slots.resize(off, None);
            self.slots.push_back(Some(entry));
            None
        };
        if old.is_none() {
            self.occupied += 1;
            if index.as_u64() == self.first_gap {
                self.first_gap += 1;
                self.advance_first_gap();
            }
        }
        self.maybe_seal();
        old
    }

    // ------------------------------------------------------------------
    // Compaction
    // ------------------------------------------------------------------

    /// The lowest index still retained as an entry: `compacted_through + 1`.
    /// For an uncompacted log this is [`LogIndex::FIRST`].
    pub fn first_index(&self) -> LogIndex {
        LogIndex(self.compacted_through + 1)
    }

    /// The highest compacted index ([`LogIndex::ZERO`] when nothing has
    /// been compacted).
    pub fn compacted_through(&self) -> LogIndex {
        LogIndex(self.compacted_through)
    }

    /// The term at the compaction horizon (the snapshot's `last_term`).
    pub fn compacted_term(&self) -> Term {
        self.compacted_term
    }

    /// Compacts the contiguous occupied prefix up to `through`, removing
    /// those entries and recording the boundary term. The effective bound is
    /// clamped so compaction **never swallows a hole**: only indices below
    /// [`SparseLog::first_gap`] are eligible. Returns the new compaction
    /// horizon (unchanged if nothing could be compacted).
    pub fn compact_to(&mut self, through: LogIndex) -> LogIndex {
        // Never compact across a hole, and never move backwards.
        let bound = self.first_gap.saturating_sub(1);
        let target = through.as_u64().min(bound);
        if target <= self.compacted_through {
            return self.compacted_through();
        }
        self.compacted_term = self
            .get(LogIndex(target))
            .map(|e| e.term)
            .expect("contiguous prefix below first_gap is occupied");
        // The whole range (compacted_through, target] is occupied (it lies
        // below the first gap).
        self.occupied -= (target - self.compacted_through) as usize;
        self.compacted_through = target;
        if target >= self.sealed_end {
            // The horizon swallowed all sealed history plus a slot prefix.
            self.segs.clear();
            let drained = (target - self.sealed_end) as usize;
            self.slots.drain(..drained);
            self.sealed_end = target;
        } else {
            // Mid-seal horizon: drop segments that fell entirely below it.
            // The boundary segment keeps its now-dead prefix (at most one
            // segment's worth) until the horizon passes its end.
            while self.segs.front().is_some_and(|s| s.last() <= target) {
                self.segs.pop_front();
            }
        }
        self.compacted_through()
    }

    /// Installs a snapshot boundary received from a leader: everything at or
    /// below `last_index` is replaced by the snapshot. If this log holds a
    /// matching entry at `last_index` (same term), the suffix above it is
    /// retained (it is consistent with the snapshot's history); otherwise
    /// the whole log is discarded. Returns `false` (no-op) when the snapshot
    /// is older than the current compaction horizon.
    pub fn install_snapshot(&mut self, last_index: LogIndex, last_term: Term) -> bool {
        let li = last_index.as_u64();
        if li <= self.compacted_through {
            return false;
        }
        let suffix_consistent = self
            .get(last_index)
            .is_some_and(|e| e.term == last_term);
        if suffix_consistent {
            if li <= self.sealed_end {
                // The boundary lands inside sealed history, which is
                // hole-free: the whole covered range was occupied.
                self.occupied -= (li - self.compacted_through) as usize;
                self.compacted_through = li;
                while self.segs.front().is_some_and(|s| s.last() <= li) {
                    self.segs.pop_front();
                }
            } else {
                let sealed_live = (self.sealed_end - self.compacted_through) as usize;
                self.segs.clear();
                let drained = (li - self.sealed_end) as usize;
                let dropped = self
                    .slots
                    .drain(..drained)
                    .filter(Option::is_some)
                    .count();
                self.occupied -= sealed_live + dropped;
                self.compacted_through = li;
                self.sealed_end = li;
            }
        } else {
            self.segs.clear();
            self.slots.clear();
            self.occupied = 0;
            self.compacted_through = li;
            self.sealed_end = li;
        }
        self.compacted_term = last_term;
        self.trim_back();
        self.first_gap = self.compacted_through + 1;
        self.advance_first_gap();
        true
    }

    /// Appends after the current last index, returning the new entry's index.
    pub fn append(&mut self, entry: LogEntry) -> LogIndex {
        let index = self.last_index().next();
        self.slots.push_back(Some(entry));
        self.occupied += 1;
        if index.as_u64() == self.first_gap {
            self.first_gap += 1;
            // Appending lands past every stored slot; nothing above it can
            // already be occupied, so no further advance is needed.
        }
        self.maybe_seal();
        index
    }

    /// Removes the entry at `index`, returning it if present.
    pub fn remove(&mut self, index: LogIndex) -> Option<LogEntry> {
        let i = index.as_u64();
        if self.sealed_get(i).is_some() {
            self.unseal_to(i);
        }
        let off = self.slot_pos(index)?;
        let old = self.slots[off].take();
        if old.is_some() {
            self.occupied -= 1;
            self.first_gap = self.first_gap.min(i);
            self.trim_back();
        }
        old
    }

    /// Removes all entries at `from` and beyond (classic-Raft conflict
    /// truncation). Returns how many entries were removed. Truncation never
    /// reaches below the compaction horizon (those indices hold no entries).
    pub fn truncate_from(&mut self, from: LogIndex) -> usize {
        let cut = from.as_u64().max(self.compacted_through + 1);
        if cut <= self.sealed_end {
            self.unseal_to(cut);
        }
        let off = (cut - self.sealed_end - 1) as usize;
        if off >= self.slots.len() {
            return 0;
        }
        let removed = self
            .slots
            .drain(off..)
            .filter(Option::is_some)
            .count();
        self.occupied -= removed;
        self.first_gap = self.first_gap.min(cut);
        self.trim_back();
        removed
    }

    /// The highest occupied index; for a fully compacted (or empty) log this
    /// is the compaction horizon ([`LogIndex::ZERO`] when never compacted).
    pub fn last_index(&self) -> LogIndex {
        LogIndex(self.sealed_end + self.slots.len() as u64)
    }

    /// The term of the entry at `index`: [`Term::ZERO`] for the sentinel or
    /// a hole, the snapshot boundary term at the compaction horizon.
    pub fn term_at(&self, index: LogIndex) -> Term {
        if index.as_u64() == self.compacted_through && self.compacted_through > 0 {
            return self.compacted_term;
        }
        self.get(index).map_or(Term::ZERO, |e| e.term)
    }

    /// The lowest unoccupied index above the compaction horizon. For a dense
    /// log this is `last_index + 1`; with holes it is the first hole.
    pub fn first_gap(&self) -> LogIndex {
        LogIndex(self.first_gap)
    }

    /// `true` if indices `first_index..=last_index` are all occupied.
    pub fn is_dense(&self) -> bool {
        self.first_gap == self.last_index().as_u64() + 1
    }

    /// Detects a **front gap**: the log holds entries, but the lowest one
    /// sits above `compacted_through + 1`, i.e. a hole starts immediately
    /// after the snapshot horizon. A log grown through normal protocol
    /// operation never front-gaps (compaction only ever consumes a
    /// contiguous occupied prefix); only externally reconstructed views —
    /// C-Raft's global log rebuilt from partially compacted global-state
    /// entries — can. Returns `(horizon, first_retained)` when gapped.
    pub fn front_gap(&self) -> Option<(LogIndex, LogIndex)> {
        if self.occupied == 0 || self.sealed_end > self.compacted_through {
            // Sealed history is contiguous from the horizon: no front gap.
            return None;
        }
        if self.slots.front()?.is_some() {
            return None;
        }
        // The leading run of holes is exactly the front gap; scanning it is
        // proportional to the gap itself, which only the reconstruction
        // path ever creates (and keeps small).
        let lead = self.slots.iter().take_while(|s| s.is_none()).count() as u64;
        Some((
            self.compacted_through(),
            LogIndex(self.compacted_through + 1 + lead),
        ))
    }

    /// Number of occupied indices.
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// `true` if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// Live sealed `(index, entry)` pairs within `[lo, hi]`, in order.
    /// Yields nothing when the window misses the sealed region.
    fn sealed_range(&self, lo: u64, hi: u64) -> impl Iterator<Item = (LogIndex, &LogEntry)> {
        let lo = lo.max(self.compacted_through + 1);
        let hi = hi.min(self.sealed_end);
        self.segs.iter().flat_map(move |seg| {
            let a = lo.max(seg.first);
            let b = hi.min(seg.last());
            let slice = if a <= b {
                &seg.entries[(a - seg.first) as usize..=(b - seg.first) as usize]
            } else {
                &seg.entries[0..0]
            };
            slice.iter().map(|(i, e)| (*i, e))
        })
    }

    /// Iterates `(index, entry)` pairs in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = (LogIndex, &LogEntry)> {
        self.range(self.first_index(), self.last_index())
    }

    /// The slots of `[from, to]` as (at most) two contiguous slices plus the
    /// absolute index of the first returned slot. O(1) positioning — range
    /// walks start at their offset instead of searching.
    fn slot_slices(
        &self,
        from: LogIndex,
        to: LogIndex,
    ) -> (u64, &[Option<LogEntry>], &[Option<LogEntry>]) {
        let base = self.sealed_end + 1;
        let end = base + self.slots.len() as u64; // exclusive
        let lo = from.as_u64().max(base);
        let hi = to.as_u64().saturating_add(1).min(end); // exclusive
        if lo >= hi {
            return (lo, &[], &[]);
        }
        let (a, b) = ((lo - base) as usize, (hi - base) as usize);
        let (s1, s2) = self.slots.as_slices();
        let n1 = s1.len();
        let first = &s1[a.min(n1)..b.min(n1)];
        let second = &s2[a.saturating_sub(n1)..b.saturating_sub(n1)];
        (lo, first, second)
    }

    /// Iterates occupied `(index, entry)` pairs within `[from, to]`.
    pub fn range(
        &self,
        from: LogIndex,
        to: LogIndex,
    ) -> impl Iterator<Item = (LogIndex, &LogEntry)> {
        let sealed = self.sealed_range(from.as_u64(), to.as_u64());
        let (start, s1, s2) = self.slot_slices(from, to);
        let slots = s1
            .iter()
            .chain(s2)
            .enumerate()
            .filter_map(move |(i, s)| s.as_ref().map(|e| (LogIndex(start + i as u64), e)));
        sealed.chain(slots)
    }

    /// Iterates the **contiguous occupied run** starting at `from`: yields
    /// `(from, e)`, `(from+1, e)`, ... and stops at the first hole (or the
    /// end of the log). The protocols' commit scans and decision loops walk
    /// this run as a slice pass instead of issuing per-index lookups.
    pub fn contiguous_from(
        &self,
        from: LogIndex,
    ) -> impl Iterator<Item = (LogIndex, &LogEntry)> {
        let f = from.as_u64();
        let valid = f > self.compacted_through;
        let in_sealed = valid && f <= self.sealed_end;
        // The sealed region is hole-free: a run entering it covers
        // everything up to `sealed_end`, then continues into the slots.
        let sealed = self.sealed_range(
            if in_sealed { f } else { 1 },
            if in_sealed { self.sealed_end } else { 0 },
        );
        let resume = if in_sealed {
            LogIndex(self.sealed_end + 1)
        } else {
            from
        };
        let (start, s1, s2) = self.slot_slices(resume, self.last_index());
        // A clamped start means `resume` itself holds no slot (below the
        // horizon or past the end): the run rooted there is empty.
        let aligned = valid && start == resume.as_u64();
        let slots = s1
            .iter()
            .chain(s2)
            .take_while(move |s| aligned && s.is_some())
            .enumerate()
            .filter_map(move |(i, s)| s.as_ref().map(|e| (LogIndex(start + i as u64), e)));
        sealed.chain(slots)
    }

    /// Collects clones of entries in `[from, to]` that are present,
    /// preserving order — the payload of an AppendEntries message.
    pub fn collect_range(&self, from: LogIndex, to: LogIndex) -> Vec<(LogIndex, LogEntry)> {
        self.range(from, to).map(|(i, e)| (i, e.clone())).collect()
    }

    /// Collects the occupied slots of `[from, to]` into an [`EntryList`]
    /// honoring `budget`: admission stops at whichever of the entry-count or
    /// encoded-byte cap binds first, but at least one entry is always taken
    /// when the range holds any (see [`AppendBudget::admits`]).
    ///
    /// The budget charges each entry its `(index, entry)` wire encoding, the
    /// exact bytes it occupies inside an AppendEntries message.
    ///
    /// **Allocation-free fast path**: when the walk starts inside a sealed
    /// segment and the budget (or `to`) binds before the segment ends — the
    /// overwhelmingly common case for follower catch-up, since budgets are
    /// far smaller than the 1024-entry segment — the result is an
    /// [`EntryList`] *window*
    /// onto the segment's shared allocation: one refcount bump, zero entry
    /// clones, zero buffer allocations. Otherwise (walk starts in the slot
    /// tail, or spans a segment boundary) entries clone — `Bytes` payloads
    /// by refcount — into a buffer pre-sized to the admission bound, exactly
    /// the PR 2/PR 5 path.
    pub fn collect_range_budgeted(
        &self,
        from: LogIndex,
        to: LogIndex,
        budget: AppendBudget,
    ) -> EntryList {
        let lo = from.as_u64().max(self.compacted_through + 1);
        let hi = to.as_u64().min(self.last_index().as_u64());
        if lo > hi {
            return EntryList::empty();
        }
        if lo <= self.sealed_end {
            let (k, off) = self.seg_locate(lo);
            let seg = &self.segs[k];
            // Candidates: this segment's entries from `lo`, clamped by `to`.
            let within = ((hi.min(seg.last()) - lo + 1) as usize).min(SEG - off);
            let slice = &seg.entries[off..off + within];
            let mut bytes = 0usize;
            let mut n = 0usize;
            while n < slice.len() {
                let sz = 8 + slice[n].1.encoded_len();
                if !budget.admits(n, bytes, sz) {
                    break;
                }
                bytes += sz;
                n += 1;
            }
            if n < slice.len() || lo + n as u64 - 1 == hi {
                // The budget or the range bound inside this segment: the
                // admitted set is exactly `slice[..n]`, a shareable window.
                return EntryList::view(Arc::clone(&seg.entries), off, n);
            }
            // The budget admits more than this segment holds: fall through
            // to the cloning walk (a cross-segment list cannot be a window).
        }
        let mut out = Vec::with_capacity(((hi - lo + 1) as usize).min(budget.max_entries));
        let mut bytes = 0usize;
        for (i, e) in self.range(from, to) {
            let sz = 8 + e.encoded_len();
            if !budget.admits(out.len(), bytes, sz) {
                break;
            }
            bytes += sz;
            out.push((i, e.clone()));
        }
        EntryList::from_vec(out)
    }

    /// All self-approved entries, for Fast Raft's election recovery (§IV-C).
    pub fn self_approved(&self) -> Vec<(LogIndex, LogEntry)> {
        self.iter()
            .filter(|(_, e)| e.approval == Approval::SelfApproved)
            .map(|(i, e)| (i, e.clone()))
            .collect()
    }

    /// The highest index holding a **leader-approved** entry, which is Fast
    /// Raft's `lastLeaderIndex` (§IV-A).
    pub fn last_leader_index(&self) -> LogIndex {
        let base = self.sealed_end + 1;
        let in_slots = self.slots.iter().enumerate().rev().find_map(|(i, s)| {
            s.as_ref()
                .filter(|e| e.approval == Approval::LeaderApproved)
                .map(|_| LogIndex(base + i as u64))
        });
        if let Some(found) = in_slots {
            return found;
        }
        self.segs
            .iter()
            .rev()
            .flat_map(|seg| seg.entries.iter().rev())
            .take_while(|(i, _)| i.as_u64() > self.compacted_through)
            .find_map(|(i, e)| (e.approval == Approval::LeaderApproved).then_some(*i))
            .unwrap_or(LogIndex::ZERO)
    }

    /// The configuration from the highest-indexed config entry, if any —
    /// "the last configuration appended to the log" (§IV-A).
    pub fn latest_config(&self) -> Option<(LogIndex, &crate::Configuration)> {
        let base = self.sealed_end + 1;
        let in_slots = self.slots.iter().enumerate().rev().find_map(|(i, s)| {
            s.as_ref()
                .and_then(|e| e.as_config().map(|c| (LogIndex(base + i as u64), c)))
        });
        if in_slots.is_some() {
            return in_slots;
        }
        self.segs
            .iter()
            .rev()
            .flat_map(|seg| seg.entries.iter().rev())
            .take_while(|(i, _)| i.as_u64() > self.compacted_through)
            .find_map(|(i, e)| e.as_config().map(|c| (*i, c)))
    }
}

impl PartialEq for SparseLog {
    /// Observational equality: same horizon, same boundary term, and the
    /// same `(index, entry)` sequence. How much of the log happens to be
    /// sealed into segments is history-dependent bookkeeping, excluded from
    /// identity — a recovered log rebuilt entry-by-entry compares equal to
    /// the live log it mirrors.
    fn eq(&self, other: &Self) -> bool {
        self.compacted_through == other.compacted_through
            && self.compacted_term == other.compacted_term
            && self.occupied == other.occupied
            && self.last_index() == other.last_index()
            && self.iter().eq(other.iter())
    }
}

impl Eq for SparseLog {}

impl FromIterator<LogEntry> for SparseLog {
    /// Builds a dense log from entries in order, starting at index 1.
    fn from_iter<I: IntoIterator<Item = LogEntry>>(iter: I) -> Self {
        let mut log = SparseLog::new();
        for e in iter {
            log.append(e);
        }
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Configuration, EntryId, NodeId};
    use bytes::Bytes;

    fn entry(term: u64, seq: u64) -> LogEntry {
        LogEntry::data(
            Term(term),
            EntryId::new(NodeId(1), seq),
            Bytes::from_static(b"v"),
        )
    }

    /// Enough appends that at least `segs` segments have sealed.
    fn sealed_log(segs: usize) -> SparseLog {
        (0..(segs * SEG + SEG + SEAL_GUARD) as u64)
            .map(|s| entry(1, s))
            .collect()
    }

    #[test]
    fn append_is_dense() {
        let mut log = SparseLog::new();
        assert_eq!(log.append(entry(1, 0)), LogIndex(1));
        assert_eq!(log.append(entry(1, 1)), LogIndex(2));
        assert!(log.is_dense());
        assert_eq!(log.len(), 2);
        assert_eq!(log.first_gap(), LogIndex(3));
    }

    #[test]
    fn sparse_insert_creates_holes() {
        let mut log = SparseLog::new();
        log.insert(LogIndex(5), entry(1, 0));
        assert_eq!(log.last_index(), LogIndex(5));
        assert_eq!(log.first_gap(), LogIndex(1));
        assert!(!log.is_dense());
        log.insert(LogIndex(1), entry(1, 1));
        assert_eq!(log.first_gap(), LogIndex(2));
    }

    #[test]
    fn insert_replaces_and_returns_previous() {
        let mut log = SparseLog::new();
        log.insert(LogIndex(1), entry(1, 0));
        let old = log.insert(LogIndex(1), entry(2, 1));
        assert_eq!(old.unwrap().term, Term(1));
        assert_eq!(log.term_at(LogIndex(1)), Term(2));
    }

    #[test]
    #[should_panic(expected = "LogIndex::ZERO")]
    fn insert_at_zero_panics() {
        SparseLog::new().insert(LogIndex::ZERO, entry(1, 0));
    }

    #[test]
    fn truncate_from_removes_suffix() {
        let mut log: SparseLog = (0..5).map(|s| entry(1, s)).collect();
        assert_eq!(log.truncate_from(LogIndex(3)), 3);
        assert_eq!(log.last_index(), LogIndex(2));
        assert_eq!(log.truncate_from(LogIndex(10)), 0);
    }

    #[test]
    fn truncate_resets_first_gap_and_trims_holes() {
        let mut log = SparseLog::new();
        log.insert(LogIndex(1), entry(1, 0));
        log.insert(LogIndex(2), entry(1, 1));
        log.insert(LogIndex(5), entry(1, 2)); // holes at 3, 4
        assert_eq!(log.truncate_from(LogIndex(5)), 1);
        // The trailing holes at 3 and 4 vanish with the entry above them.
        assert_eq!(log.last_index(), LogIndex(2));
        assert_eq!(log.first_gap(), LogIndex(3));
        assert!(log.is_dense());
    }

    #[test]
    fn remove_pulls_first_gap_back() {
        let mut log: SparseLog = (0..4).map(|s| entry(1, s)).collect();
        assert_eq!(log.first_gap(), LogIndex(5));
        log.remove(LogIndex(2));
        assert_eq!(log.first_gap(), LogIndex(2));
        assert_eq!(log.last_index(), LogIndex(4));
        // Re-filling the hole advances the cursor across the existing run.
        log.insert(LogIndex(2), entry(2, 9));
        assert_eq!(log.first_gap(), LogIndex(5));
    }

    #[test]
    fn term_at_sentinel_and_hole() {
        let mut log = SparseLog::new();
        log.insert(LogIndex(3), entry(4, 0));
        assert_eq!(log.term_at(LogIndex::ZERO), Term::ZERO);
        assert_eq!(log.term_at(LogIndex(1)), Term::ZERO);
        assert_eq!(log.term_at(LogIndex(3)), Term(4));
    }

    #[test]
    fn collect_range_skips_holes() {
        let mut log = SparseLog::new();
        log.insert(LogIndex(1), entry(1, 0));
        log.insert(LogIndex(3), entry(1, 1));
        let got = log.collect_range(LogIndex(1), LogIndex(3));
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, LogIndex(1));
        assert_eq!(got[1].0, LogIndex(3));
    }

    #[test]
    fn contiguous_from_stops_at_hole() {
        let mut log = SparseLog::new();
        log.insert(LogIndex(1), entry(1, 0));
        log.insert(LogIndex(2), entry(1, 1));
        log.insert(LogIndex(4), entry(1, 2)); // hole at 3
        let run: Vec<u64> = log
            .contiguous_from(LogIndex(1))
            .map(|(i, _)| i.as_u64())
            .collect();
        assert_eq!(run, vec![1, 2]);
        assert_eq!(log.contiguous_from(LogIndex(3)).count(), 0);
        let run4: Vec<u64> = log
            .contiguous_from(LogIndex(4))
            .map(|(i, _)| i.as_u64())
            .collect();
        assert_eq!(run4, vec![4]);
        // A start below the horizon or above the end yields nothing
        // contiguous with `from` itself.
        assert_eq!(log.contiguous_from(LogIndex(9)).count(), 0);
    }

    #[test]
    fn budgeted_collect_honors_entry_cap() {
        let log: SparseLog = (0..10).map(|s| entry(1, s)).collect();
        let got = log.collect_range_budgeted(
            LogIndex(1),
            LogIndex(10),
            AppendBudget::new(3, usize::MAX),
        );
        assert_eq!(got.len(), 3);
        assert_eq!(got.as_slice()[2].0, LogIndex(3));
    }

    #[test]
    fn budgeted_collect_honors_byte_cap() {
        let log: SparseLog = (0..10).map(|s| entry(1, s)).collect();
        let per_entry = 8 + log.get(LogIndex(1)).unwrap().encoded_len();
        // Room for exactly two entries.
        let got = log.collect_range_budgeted(
            LogIndex(1),
            LogIndex(10),
            AppendBudget::new(128, 2 * per_entry),
        );
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn budgeted_collect_always_takes_one() {
        let log: SparseLog = (0..3).map(|s| entry(1, s)).collect();
        // A byte budget smaller than any entry still yields one entry.
        let got =
            log.collect_range_budgeted(LogIndex(1), LogIndex(3), AppendBudget::new(128, 1));
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn budgeted_collect_skips_holes() {
        let mut log = SparseLog::new();
        log.insert(LogIndex(1), entry(1, 0));
        log.insert(LogIndex(4), entry(1, 1));
        let got = log.collect_range_budgeted(
            LogIndex(1),
            LogIndex(4),
            AppendBudget::new(128, usize::MAX),
        );
        assert_eq!(got.len(), 2);
        assert_eq!(got.as_slice()[1].0, LogIndex(4));
    }

    #[test]
    fn self_approved_filter() {
        let mut log = SparseLog::new();
        log.insert(LogIndex(1), entry(1, 0)); // leader-approved
        log.insert(
            LogIndex(2),
            entry(1, 1).with_approval(Approval::SelfApproved),
        );
        log.insert(
            LogIndex(4),
            entry(1, 2).with_approval(Approval::SelfApproved),
        );
        let sa = log.self_approved();
        assert_eq!(sa.len(), 2);
        assert_eq!(sa[0].0, LogIndex(2));
        assert_eq!(sa[1].0, LogIndex(4));
    }

    #[test]
    fn last_leader_index_ignores_self_approved_suffix() {
        let mut log = SparseLog::new();
        log.insert(LogIndex(1), entry(1, 0));
        log.insert(
            LogIndex(2),
            entry(1, 1).with_approval(Approval::SelfApproved),
        );
        assert_eq!(log.last_leader_index(), LogIndex(1));
        assert_eq!(log.last_index(), LogIndex(2));
    }

    #[test]
    fn latest_config_finds_highest() {
        let mut log = SparseLog::new();
        let c1 = Configuration::new([NodeId(1)]);
        let c2 = Configuration::new([NodeId(1), NodeId(2)]);
        log.append(LogEntry::config(Term(1), EntryId::new(NodeId(1), 0), c1));
        log.append(entry(1, 1));
        log.append(LogEntry::config(
            Term(1),
            EntryId::new(NodeId(1), 2),
            c2.clone(),
        ));
        let (idx, cfg) = log.latest_config().unwrap();
        assert_eq!(idx, LogIndex(3));
        assert_eq!(cfg, &c2);
    }

    #[test]
    fn remove_entry() {
        let mut log = SparseLog::new();
        log.insert(LogIndex(2), entry(1, 0));
        assert!(log.remove(LogIndex(2)).is_some());
        assert!(log.remove(LogIndex(2)).is_none());
        assert!(log.is_empty());
    }

    #[test]
    fn compact_removes_prefix_and_keeps_boundary_term() {
        let mut log: SparseLog = (0..5).map(|s| entry(s + 1, s)).collect();
        assert_eq!(log.compact_to(LogIndex(3)), LogIndex(3));
        assert_eq!(log.first_index(), LogIndex(4));
        assert_eq!(log.compacted_through(), LogIndex(3));
        assert_eq!(log.len(), 2);
        assert_eq!(log.last_index(), LogIndex(5));
        // The boundary term survives compaction for log-matching checks.
        assert_eq!(log.term_at(LogIndex(3)), Term(3));
        assert_eq!(log.compacted_term(), Term(3));
        // Holes (removed entries) below the horizon read as Term::ZERO.
        assert_eq!(log.term_at(LogIndex(2)), Term::ZERO);
        assert!(log.is_dense());
        assert_eq!(log.first_gap(), LogIndex(6));
    }

    #[test]
    fn compact_never_swallows_a_hole() {
        let mut log = SparseLog::new();
        log.insert(LogIndex(1), entry(1, 0));
        log.insert(LogIndex(2), entry(1, 1));
        log.insert(LogIndex(4), entry(1, 2)); // hole at 3
        assert_eq!(log.compact_to(LogIndex(4)), LogIndex(2));
        assert_eq!(log.first_index(), LogIndex(3));
        assert!(log.get(LogIndex(4)).is_some());
        // Compaction is monotone: a lower target is a no-op.
        assert_eq!(log.compact_to(LogIndex(1)), LogIndex(2));
    }

    #[test]
    fn fully_compacted_log_keeps_last_index() {
        let mut log: SparseLog = (0..3).map(|s| entry(2, s)).collect();
        log.compact_to(LogIndex(3));
        assert!(log.is_empty());
        assert_eq!(log.last_index(), LogIndex(3));
        assert_eq!(log.term_at(LogIndex(3)), Term(2));
        assert_eq!(log.append(entry(3, 9)), LogIndex(4));
    }

    #[test]
    #[should_panic(expected = "compacted through")]
    fn insert_below_horizon_panics() {
        let mut log: SparseLog = (0..3).map(|s| entry(1, s)).collect();
        log.compact_to(LogIndex(2));
        log.insert(LogIndex(1), entry(1, 9));
    }

    #[test]
    fn install_snapshot_keeps_consistent_suffix() {
        let mut log: SparseLog = (0..5).map(|s| entry(1, s)).collect();
        assert!(log.install_snapshot(LogIndex(3), Term(1)));
        assert_eq!(log.first_index(), LogIndex(4));
        assert_eq!(log.len(), 2);
        assert_eq!(log.last_index(), LogIndex(5));
    }

    #[test]
    fn install_snapshot_discards_conflicting_log() {
        let mut log: SparseLog = (0..5).map(|s| entry(1, s)).collect();
        // Boundary term mismatch: the whole log is unverifiable.
        assert!(log.install_snapshot(LogIndex(3), Term(9)));
        assert!(log.is_empty());
        assert_eq!(log.last_index(), LogIndex(3));
        assert_eq!(log.term_at(LogIndex(3)), Term(9));
    }

    #[test]
    fn install_snapshot_beyond_log_discards_all() {
        let mut log: SparseLog = (0..2).map(|s| entry(1, s)).collect();
        assert!(log.install_snapshot(LogIndex(10), Term(4)));
        assert!(log.is_empty());
        assert_eq!(log.first_index(), LogIndex(11));
        // A stale snapshot is refused.
        assert!(!log.install_snapshot(LogIndex(5), Term(2)));
    }

    #[test]
    fn front_gap_detection_on_reconstructed_view() {
        let mut log = SparseLog::new();
        assert_eq!(log.front_gap(), None);
        log.insert(LogIndex(4), entry(1, 0));
        log.insert(LogIndex(5), entry(1, 1));
        assert_eq!(log.front_gap(), Some((LogIndex::ZERO, LogIndex(4))));
        // Filling the front closes the gap.
        for i in 1..=3u64 {
            log.insert(LogIndex(i), entry(1, 10 + i));
        }
        assert_eq!(log.front_gap(), None);
        assert!(log.is_dense());
    }

    #[test]
    fn layout_is_canonical_for_equality() {
        // Two logs with identical observable content compare equal no
        // matter how they were built (append vs out-of-order insert vs
        // remove-then-insert) — equality is observational.
        let a: SparseLog = (0..3).map(|s| entry(1, s)).collect();
        let mut b = SparseLog::new();
        b.insert(LogIndex(3), entry(1, 2));
        b.insert(LogIndex(1), entry(1, 0));
        b.insert(LogIndex(2), entry(1, 1));
        assert_eq!(a, b);
        let mut c = a.clone();
        c.insert(LogIndex(9), entry(1, 9));
        c.remove(LogIndex(9));
        assert_eq!(a, c);
    }

    // --------------------------------------------------------------
    // Sealed-segment behavior
    // --------------------------------------------------------------

    #[test]
    fn sealing_preserves_every_read_path() {
        let n = (2 * SEG + SEG + SEAL_GUARD) as u64;
        let log = sealed_log(2);
        assert!(log.segs.len() >= 2, "log never sealed");
        assert_eq!(log.last_index(), LogIndex(n));
        assert_eq!(log.len(), n as usize);
        assert!(log.is_dense());
        assert_eq!(log.first_gap(), LogIndex(n + 1));
        // Point reads across the seal boundary.
        for i in [1, SEG as u64, SEG as u64 + 1, log.sealed_end, log.sealed_end + 1, n] {
            let e = log.get(LogIndex(i)).expect("occupied");
            assert_eq!(e.id.seq, i - 1, "wrong entry at {i}");
            assert_eq!(log.term_at(LogIndex(i)), Term(1));
        }
        // Full iteration sees every index exactly once, in order.
        let indices: Vec<u64> = log.iter().map(|(i, _)| i.as_u64()).collect();
        assert_eq!(indices, (1..=n).collect::<Vec<_>>());
        // A contiguous run entered inside the sealed region crosses into
        // the slot tail without a seam.
        let run: Vec<u64> = log
            .contiguous_from(LogIndex(5))
            .map(|(i, _)| i.as_u64())
            .collect();
        assert_eq!(run, (5..=n).collect::<Vec<_>>());
        // Ranges clamp correctly across the boundary.
        let mid: Vec<u64> = log
            .range(LogIndex(log.sealed_end - 1), LogIndex(log.sealed_end + 2))
            .map(|(i, _)| i.as_u64())
            .collect();
        assert_eq!(
            mid,
            vec![log.sealed_end - 1, log.sealed_end, log.sealed_end + 1, log.sealed_end + 2]
        );
    }

    #[test]
    fn budgeted_collect_from_sealed_segment_is_a_window() {
        let log = sealed_log(1);
        let got = log.collect_range_budgeted(
            LogIndex(10),
            log.last_index(),
            AppendBudget::new(64, usize::MAX),
        );
        assert_eq!(got.len(), 64);
        assert_eq!(got.as_slice()[0].0, LogIndex(10));
        assert_eq!(got.as_slice()[63].0, LogIndex(73));
        // Zero-copy: the list points straight into the sealed segment.
        assert!(std::ptr::eq(
            &got.as_slice()[0],
            &log.segs[0].entries[9]
        ));
    }

    #[test]
    fn budgeted_collect_across_seam_matches_window_semantics() {
        let log = sealed_log(2);
        let budget = AppendBudget::new(64, usize::MAX);
        // Start near the end of segment 0: the walk crosses into segment 1,
        // so the result must clone — but with identical admitted entries.
        let from = LogIndex(SEG as u64 - 10);
        let got = log.collect_range_budgeted(from, log.last_index(), budget);
        assert_eq!(got.len(), 64);
        let want: Vec<u64> = (from.as_u64()..from.as_u64() + 64).collect();
        let have: Vec<u64> = got.iter().map(|(i, _)| i.as_u64()).collect();
        assert_eq!(have, want);
        // Crossing from sealed into the slot tail also clones correctly.
        let from2 = LogIndex(log.sealed_end - 10);
        let got2 = log.collect_range_budgeted(from2, log.last_index(), budget);
        assert_eq!(got2.len(), 64);
        assert_eq!(got2.as_slice()[0].0, from2);
        assert_eq!(got2.as_slice()[63].0, LogIndex(from2.as_u64() + 63));
    }

    #[test]
    fn budgeted_collect_window_clamped_by_range_end() {
        let log = sealed_log(1);
        // `to` binds inside the segment: still a window, exactly 5 entries.
        let got = log.collect_range_budgeted(
            LogIndex(10),
            LogIndex(14),
            AppendBudget::new(64, usize::MAX),
        );
        assert_eq!(got.len(), 5);
        assert_eq!(got.as_slice()[4].0, LogIndex(14));
        assert!(std::ptr::eq(&got.as_slice()[0], &log.segs[0].entries[9]));
    }

    #[test]
    fn idempotent_reinsert_into_sealed_segment_does_not_unseal() {
        let mut log = sealed_log(1);
        let before = log.segs.len();
        let same = log.get(LogIndex(7)).unwrap().clone();
        let old = log.insert(LogIndex(7), same.clone());
        assert_eq!(old, Some(same));
        assert_eq!(log.segs.len(), before, "idempotent re-insert unsealed");
    }

    #[test]
    fn conflicting_insert_into_sealed_segment_unseals_and_replaces() {
        let mut log = sealed_log(1);
        let n = log.last_index();
        let old = log.insert(LogIndex(7), entry(9, 777));
        assert_eq!(old.unwrap().term, Term(1));
        assert_eq!(log.get(LogIndex(7)).unwrap().term, Term(9));
        assert_eq!(log.last_index(), n);
        assert_eq!(log.len(), n.as_u64() as usize);
        assert!(log.is_dense());
        // Content above and below the replaced index is untouched.
        assert_eq!(log.get(LogIndex(6)).unwrap().id.seq, 5);
        assert_eq!(log.get(LogIndex(8)).unwrap().id.seq, 7);
    }

    #[test]
    fn unseal_leaves_inflight_windows_frozen() {
        let mut log = sealed_log(1);
        let window = log.collect_range_budgeted(
            LogIndex(5),
            LogIndex(8),
            AppendBudget::new(8, usize::MAX),
        );
        log.insert(LogIndex(7), entry(9, 777)); // unseals segment 0
        // The in-flight window still reads the pre-mutation entries.
        assert_eq!(window.len(), 4);
        assert_eq!(window.as_slice()[2].1.term, Term(1));
        assert_eq!(log.get(LogIndex(7)).unwrap().term, Term(9));
    }

    #[test]
    fn truncate_into_sealed_region_unseals() {
        let mut log = sealed_log(2);
        let removed = log.truncate_from(LogIndex(100));
        assert_eq!(removed as u64, log_len_before_truncate(2) - 99);
        assert_eq!(log.last_index(), LogIndex(99));
        assert_eq!(log.first_gap(), LogIndex(100));
        assert!(log.is_dense());
        assert_eq!(log.len(), 99);
        assert_eq!(log.get(LogIndex(99)).unwrap().id.seq, 98);
    }

    fn log_len_before_truncate(segs: u64) -> u64 {
        segs * SEG as u64 + (SEG + SEAL_GUARD) as u64
    }

    #[test]
    fn remove_inside_sealed_region_unseals_and_pulls_gap_back() {
        let mut log = sealed_log(1);
        assert!(log.remove(LogIndex(3)).is_some());
        assert_eq!(log.first_gap(), LogIndex(3));
        assert!(log.get(LogIndex(3)).is_none());
        assert!(log.get(LogIndex(2)).is_some());
        assert!(log.get(LogIndex(4)).is_some());
        // Re-filling advances the cursor back across the whole run.
        log.insert(LogIndex(3), entry(2, 999));
        assert_eq!(log.first_gap(), LogIndex(log.last_index().as_u64() + 1));
    }

    #[test]
    fn compaction_inside_sealed_segment_keeps_boundary() {
        let mut log = sealed_log(2);
        // Mid-segment horizon: inside segment 0.
        assert_eq!(log.compact_to(LogIndex(100)), LogIndex(100));
        assert_eq!(log.first_index(), LogIndex(101));
        assert_eq!(log.get(LogIndex(100)), None);
        assert_eq!(log.term_at(LogIndex(100)), Term(1));
        assert!(log.get(LogIndex(101)).is_some());
        assert_eq!(log.iter().next().unwrap().0, LogIndex(101));
        // Advancing past segment 0's end drops it entirely.
        let segs_before = log.segs.len();
        log.compact_to(LogIndex(SEG as u64 + 5));
        assert_eq!(log.segs.len(), segs_before - 1);
        assert_eq!(log.first_index(), LogIndex(SEG as u64 + 6));
        // Compacting past all sealed history lands back in the slots.
        let horizon = log.sealed_end + 3;
        log.compact_to(LogIndex(horizon));
        assert!(log.segs.is_empty());
        assert_eq!(log.first_index(), LogIndex(horizon + 1));
        assert_eq!(
            log.len() as u64,
            log_len_before_truncate(2) - horizon
        );
    }

    #[test]
    fn install_snapshot_into_sealed_region_keeps_suffix() {
        let mut log = sealed_log(2);
        let n = log.last_index();
        assert!(log.install_snapshot(LogIndex(SEG as u64 + 50), Term(1)));
        assert_eq!(log.first_index(), LogIndex(SEG as u64 + 51));
        assert_eq!(log.last_index(), n);
        assert!(log.get(LogIndex(SEG as u64 + 51)).is_some());
        assert_eq!(
            log.len() as u64,
            n.as_u64() - (SEG as u64 + 50)
        );
        // Equality against a freshly rebuilt log with the same content.
        let mut rebuilt = SparseLog::new();
        rebuilt.install_snapshot(LogIndex(SEG as u64 + 50), Term(1));
        for (i, e) in log.iter() {
            rebuilt.insert(i, e.clone());
        }
        assert_eq!(log, rebuilt);
    }

    #[test]
    fn equality_is_independent_of_seal_layout() {
        // `a` grows from index 1 then compacts mid-segment: its segments
        // are anchored at index 1 and segment 0 keeps a dead prefix.
        let mut a = sealed_log(1);
        a.compact_to(LogIndex(100));
        // `b` is rebuilt from the snapshot boundary (the recovery path):
        // its segments are anchored at index 101.
        let mut b = SparseLog::new();
        b.install_snapshot(LogIndex(100), Term(1));
        for (i, e) in a.iter() {
            b.insert(i, e.clone());
        }
        assert_ne!(
            a.segs[0].first, b.segs[0].first,
            "layouts should differ"
        );
        assert_eq!(a, b);
        assert_eq!(b, a);
    }
}
