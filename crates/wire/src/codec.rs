//! A compact binary wire codec.
//!
//! The simulator delivers messages as in-memory values, but realistic
//! *bandwidth* accounting (one of C-Raft's motivations is reducing wide-area
//! traffic) needs true encoded sizes. Every message type implements [`Wire`];
//! the network layer charges `encoded_len()` bytes per send, and roundtrip
//! property tests guarantee the encoding actually carries all information.
//!
//! Format: little-endian fixed-width integers, `u32` length prefixes for
//! variable-size data, one-byte tags for enums. No self-description — both
//! ends know the schema — matching what a production UDP protocol would do.

use core::fmt;

use bytes::{Bytes, BytesMut};

use crate::{
    Approval, Batch, BatchItem, ClientOutcome, ClusterId, Configuration, Consistency, EntryId,
    EntryList, GlobalState, LogEntry, LogIndex, LogScope, NodeId, Payload, SessionId, SessionSlot,
    SessionTable, Snapshot, Term,
};

/// Error from decoding a malformed buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the value was complete.
    UnexpectedEof {
        /// Bytes needed to make progress.
        needed: usize,
        /// Bytes remaining in the buffer.
        remaining: usize,
    },
    /// An enum tag byte had no corresponding variant.
    InvalidTag {
        /// The type being decoded.
        ty: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A length prefix exceeded the sanity limit.
    LengthOverflow {
        /// The declared length.
        declared: usize,
    },
    /// Trailing bytes remained after a complete decode (strict mode).
    TrailingBytes {
        /// Number of undecoded bytes.
        count: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof { needed, remaining } => {
                write!(f, "unexpected eof: needed {needed} bytes, had {remaining}")
            }
            DecodeError::InvalidTag { ty, tag } => {
                write!(f, "invalid tag {tag} while decoding {ty}")
            }
            DecodeError::LengthOverflow { declared } => {
                write!(f, "declared length {declared} exceeds sanity limit")
            }
            DecodeError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after complete value")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Sanity cap on declared lengths; prevents a corrupt prefix from triggering
/// an enormous allocation.
const MAX_LEN: usize = 64 * 1024 * 1024;

/// Streaming encoder over a growable buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: BytesMut,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Appends a byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.extend_from_slice(&[v]);
    }

    /// Appends a little-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends length-prefixed bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(u32::try_from(v.len()).expect("blob too large"));
        self.buf.extend_from_slice(v);
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finishes encoding, yielding the buffer.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Streaming decoder over a byte slice.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder reading from `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let remaining = self.buf.len() - self.pos;
        if remaining < n {
            return Err(DecodeError::UnexpectedEof {
                needed: n,
                remaining,
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u16.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a bool byte (0 or 1; anything else is an invalid tag).
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(DecodeError::InvalidTag { ty: "bool", tag }),
        }
    }

    /// Reads length-prefixed bytes.
    pub fn bytes(&mut self) -> Result<Bytes, DecodeError> {
        let len = self.u32()? as usize;
        if len > MAX_LEN {
            return Err(DecodeError::LengthOverflow { declared: len });
        }
        Ok(Bytes::copy_from_slice(self.take(len)?))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors unless the buffer was fully consumed.
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes {
                count: self.remaining(),
            })
        }
    }
}

/// Types that can be written to and read from the wire.
pub trait Wire: Sized {
    /// Writes `self` to the encoder.
    fn encode(&self, e: &mut Encoder);

    /// Reads a value from the decoder.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on malformed input.
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError>;

    /// Encodes to a fresh buffer.
    fn to_bytes(&self) -> Bytes {
        let mut e = Encoder::new();
        self.encode(&mut e);
        e.finish()
    }

    /// Decodes a complete value, rejecting trailing bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on malformed or over-long input.
    fn from_bytes(buf: &[u8]) -> Result<Self, DecodeError> {
        let mut d = Decoder::new(buf);
        let v = Self::decode(&mut d)?;
        d.finish()?;
        Ok(v)
    }

    /// The exact number of bytes `encode` would produce.
    ///
    /// The default implementation encodes into a scratch buffer; every type
    /// on a hot path overrides it with pure arithmetic, because the network
    /// layer charges `encoded_len` bytes on **every** send and an encode
    /// per send would dominate the allocation profile.
    fn encoded_len(&self) -> usize {
        let mut e = Encoder::new();
        self.encode(&mut e);
        e.len()
    }
}

impl Wire for u64 {
    fn encode(&self, e: &mut Encoder) {
        e.put_u64(*self);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.u64()
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Wire for bool {
    fn encode(&self, e: &mut Encoder) {
        e.put_bool(*self);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.bool()
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Wire for Bytes {
    fn encode(&self, e: &mut Encoder) {
        e.put_bytes(self);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.bytes()
    }
    fn encoded_len(&self) -> usize {
        4 + self.len()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, e: &mut Encoder) {
        match self {
            None => e.put_u8(0),
            Some(v) => {
                e.put_u8(1);
                v.encode(e);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match d.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(d)?)),
            tag => Err(DecodeError::InvalidTag { ty: "Option", tag }),
        }
    }
    fn encoded_len(&self) -> usize {
        1 + self.as_ref().map_or(0, Wire::encoded_len)
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, e: &mut Encoder) {
        e.put_u32(u32::try_from(self.len()).expect("vec too large"));
        for v in self {
            v.encode(e);
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let len = d.u32()? as usize;
        if len > MAX_LEN {
            return Err(DecodeError::LengthOverflow { declared: len });
        }
        let mut out = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            out.push(T::decode(d)?);
        }
        Ok(out)
    }
    fn encoded_len(&self) -> usize {
        4 + self.iter().map(Wire::encoded_len).sum::<usize>()
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, e: &mut Encoder) {
        self.0.encode(e);
        self.1.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(d)?, B::decode(d)?))
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len() + self.1.encoded_len()
    }
}

macro_rules! wire_newtype_u64 {
    ($ty:ident) => {
        impl Wire for $ty {
            fn encode(&self, e: &mut Encoder) {
                e.put_u64(self.0);
            }
            fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
                Ok($ty(d.u64()?))
            }
            fn encoded_len(&self) -> usize {
                8
            }
        }
    };
}

wire_newtype_u64!(NodeId);
wire_newtype_u64!(ClusterId);
wire_newtype_u64!(Term);
wire_newtype_u64!(LogIndex);
wire_newtype_u64!(SessionId);

impl Wire for EntryId {
    fn encode(&self, e: &mut Encoder) {
        self.proposer.encode(e);
        e.put_u64(self.seq);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(EntryId {
            proposer: NodeId::decode(d)?,
            seq: d.u64()?,
        })
    }
    fn encoded_len(&self) -> usize {
        16
    }
}

impl Wire for Configuration {
    fn encode(&self, e: &mut Encoder) {
        e.put_u32(u32::try_from(self.len()).expect("config too large"));
        for n in self.iter() {
            n.encode(e);
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Configuration::new(Vec::<NodeId>::decode(d)?))
    }
    fn encoded_len(&self) -> usize {
        4 + 8 * self.len()
    }
}

impl Wire for Approval {
    fn encode(&self, e: &mut Encoder) {
        e.put_u8(match self {
            Approval::SelfApproved => 0,
            Approval::LeaderApproved => 1,
        });
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match d.u8()? {
            0 => Ok(Approval::SelfApproved),
            1 => Ok(Approval::LeaderApproved),
            tag => Err(DecodeError::InvalidTag {
                ty: "Approval",
                tag,
            }),
        }
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Wire for BatchItem {
    fn encode(&self, e: &mut Encoder) {
        self.id.encode(e);
        self.key.encode(e);
        self.data.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(BatchItem {
            id: EntryId::decode(d)?,
            key: Option::decode(d)?,
            data: Bytes::decode(d)?,
        })
    }
    fn encoded_len(&self) -> usize {
        self.id.encoded_len() + self.key.encoded_len() + self.data.encoded_len()
    }
}

impl Wire for Batch {
    fn encode(&self, e: &mut Encoder) {
        self.cluster.encode(e);
        e.put_u64(self.batch_seq);
        e.put_u32(u32::try_from(self.items.len()).expect("batch too large"));
        for item in self.items.iter() {
            item.encode(e);
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Batch {
            cluster: ClusterId::decode(d)?,
            batch_seq: d.u64()?,
            items: Vec::<BatchItem>::decode(d)?.into(),
        })
    }
    fn encoded_len(&self) -> usize {
        8 + 8 + 4 + self.items.iter().map(Wire::encoded_len).sum::<usize>()
    }
}

impl Wire for GlobalState {
    fn encode(&self, e: &mut Encoder) {
        self.index.encode(e);
        self.entry.encode(e);
        self.global_commit.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(GlobalState {
            index: LogIndex::decode(d)?,
            entry: std::sync::Arc::new(LogEntry::decode(d)?),
            global_commit: LogIndex::decode(d)?,
        })
    }
    fn encoded_len(&self) -> usize {
        8 + self.entry.encoded_len() + 8
    }
}

impl Wire for LogScope {
    fn encode(&self, e: &mut Encoder) {
        e.put_u8(match self {
            LogScope::Local => 0,
            LogScope::Global => 1,
        });
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match d.u8()? {
            0 => Ok(LogScope::Local),
            1 => Ok(LogScope::Global),
            tag => Err(DecodeError::InvalidTag {
                ty: "LogScope",
                tag,
            }),
        }
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Wire for Consistency {
    fn encode(&self, e: &mut Encoder) {
        e.put_u8(match self {
            Consistency::Linearizable => 0,
            Consistency::StaleLocal => 1,
            Consistency::StaleGlobal => 2,
        });
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match d.u8()? {
            0 => Ok(Consistency::Linearizable),
            1 => Ok(Consistency::StaleLocal),
            2 => Ok(Consistency::StaleGlobal),
            tag => Err(DecodeError::InvalidTag {
                ty: "Consistency",
                tag,
            }),
        }
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Wire for ClientOutcome {
    fn encode(&self, e: &mut Encoder) {
        match self {
            ClientOutcome::Committed { index } => {
                e.put_u8(0);
                index.encode(e);
            }
            ClientOutcome::Duplicate { first_index } => {
                e.put_u8(1);
                first_index.encode(e);
            }
            ClientOutcome::ReadOk {
                scope,
                commit_floor,
            } => {
                e.put_u8(2);
                scope.encode(e);
                commit_floor.encode(e);
            }
            ClientOutcome::Redirect { leader_hint } => {
                e.put_u8(3);
                leader_hint.encode(e);
            }
            ClientOutcome::Retry => e.put_u8(4),
            ClientOutcome::SessionExpired => e.put_u8(5),
            ClientOutcome::Registered { session, index } => {
                e.put_u8(6);
                session.encode(e);
                index.encode(e);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(match d.u8()? {
            0 => ClientOutcome::Committed {
                index: LogIndex::decode(d)?,
            },
            1 => ClientOutcome::Duplicate {
                first_index: LogIndex::decode(d)?,
            },
            2 => ClientOutcome::ReadOk {
                scope: LogScope::decode(d)?,
                commit_floor: LogIndex::decode(d)?,
            },
            3 => ClientOutcome::Redirect {
                leader_hint: Option::decode(d)?,
            },
            4 => ClientOutcome::Retry,
            5 => ClientOutcome::SessionExpired,
            6 => ClientOutcome::Registered {
                session: SessionId::decode(d)?,
                index: LogIndex::decode(d)?,
            },
            tag => {
                return Err(DecodeError::InvalidTag {
                    ty: "ClientOutcome",
                    tag,
                })
            }
        })
    }
    fn encoded_len(&self) -> usize {
        1 + match self {
            ClientOutcome::Committed { .. } | ClientOutcome::Duplicate { .. } => 8,
            ClientOutcome::ReadOk { .. } => 1 + 8,
            ClientOutcome::Registered { .. } => 8 + 8,
            ClientOutcome::Redirect { leader_hint } => leader_hint.encoded_len(),
            ClientOutcome::Retry | ClientOutcome::SessionExpired => 0,
        }
    }
}

impl Wire for SessionTable {
    fn encode(&self, e: &mut Encoder) {
        e.put_u32(u32::try_from(self.len()).expect("session table too large"));
        for (session, slot) in self.iter() {
            session.encode(e);
            e.put_u64(slot.floor_seq);
            slot.floor_index.encode(e);
            slot.last_active.encode(e);
            e.put_u32(u32::try_from(slot.above.len()).expect("session window too large"));
            for (seq, idx) in &slot.above {
                e.put_u64(*seq);
                idx.encode(e);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let count = d.u32()? as usize;
        if count > MAX_LEN {
            return Err(DecodeError::LengthOverflow { declared: count });
        }
        let mut table = SessionTable::new();
        for _ in 0..count {
            let session = SessionId::decode(d)?;
            let floor_seq = d.u64()?;
            let floor_index = LogIndex::decode(d)?;
            let last_active = LogIndex::decode(d)?;
            let above_count = d.u32()? as usize;
            if above_count > MAX_LEN {
                return Err(DecodeError::LengthOverflow {
                    declared: above_count,
                });
            }
            let mut slot = SessionSlot {
                floor_seq,
                floor_index,
                above: Default::default(),
                last_active,
            };
            for _ in 0..above_count {
                let seq = d.u64()?;
                slot.above.insert(seq, LogIndex::decode(d)?);
            }
            table.insert_slot(session, slot);
        }
        Ok(table)
    }
    fn encoded_len(&self) -> usize {
        4 + self
            .iter()
            .map(|(_, slot)| 8 + 8 + 8 + 8 + 4 + 16 * slot.above.len())
            .sum::<usize>()
    }
}

impl Wire for Snapshot {
    fn encode(&self, e: &mut Encoder) {
        // Snapshots persist across builds (storage writes them to stable
        // state), so unlike every other message they carry an explicit
        // format version — see `SNAPSHOT_FORMAT_VERSION` for the history.
        e.put_u8(crate::SNAPSHOT_FORMAT_VERSION);
        self.scope.encode(e);
        self.last_index.encode(e);
        self.last_term.encode(e);
        self.config.encode(e);
        self.state.encode(e);
        self.sessions.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let version = d.u8()?;
        if version != crate::SNAPSHOT_FORMAT_VERSION {
            // Covers pre-versioning records too: those began with the
            // `LogScope` tag (0/1), which can never equal a valid version.
            return Err(DecodeError::InvalidTag {
                ty: "SnapshotFormatVersion",
                tag: version,
            });
        }
        Ok(Snapshot {
            scope: LogScope::decode(d)?,
            last_index: LogIndex::decode(d)?,
            last_term: Term::decode(d)?,
            config: Configuration::decode(d)?,
            state: Bytes::decode(d)?,
            sessions: SessionTable::decode(d)?,
        })
    }
    fn encoded_len(&self) -> usize {
        1 + 1
            + 8
            + 8
            + self.config.encoded_len()
            + self.state.encoded_len()
            + self.sessions.encoded_len()
    }
}

impl Wire for Payload {
    fn encode(&self, e: &mut Encoder) {
        match self {
            Payload::Noop => e.put_u8(0),
            Payload::Data(b) => {
                e.put_u8(1);
                b.encode(e);
            }
            Payload::Config(c) => {
                e.put_u8(2);
                c.encode(e);
            }
            Payload::Batch(b) => {
                e.put_u8(3);
                b.encode(e);
            }
            Payload::GlobalState(g) => {
                e.put_u8(4);
                g.encode(e);
            }
            Payload::Write { session, seq, data } => {
                e.put_u8(5);
                session.encode(e);
                e.put_u64(*seq);
                data.encode(e);
            }
            Payload::Register { session } => {
                e.put_u8(6);
                session.encode(e);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match d.u8()? {
            0 => Ok(Payload::Noop),
            1 => Ok(Payload::Data(Bytes::decode(d)?)),
            2 => Ok(Payload::Config(Configuration::decode(d)?)),
            3 => Ok(Payload::Batch(Batch::decode(d)?)),
            4 => Ok(Payload::GlobalState(GlobalState::decode(d)?)),
            5 => Ok(Payload::Write {
                session: SessionId::decode(d)?,
                seq: d.u64()?,
                data: Bytes::decode(d)?,
            }),
            6 => Ok(Payload::Register {
                session: SessionId::decode(d)?,
            }),
            tag => Err(DecodeError::InvalidTag { ty: "Payload", tag }),
        }
    }
    fn encoded_len(&self) -> usize {
        1 + match self {
            Payload::Noop => 0,
            Payload::Data(b) => b.encoded_len(),
            Payload::Config(c) => c.encoded_len(),
            Payload::Batch(b) => b.encoded_len(),
            Payload::GlobalState(g) => g.encoded_len(),
            Payload::Write { data, .. } => 8 + 8 + data.encoded_len(),
            Payload::Register { .. } => 8,
        }
    }
}

impl Wire for LogEntry {
    fn encode(&self, e: &mut Encoder) {
        self.term.encode(e);
        self.id.encode(e);
        self.payload.encode(e);
        self.approval.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(LogEntry {
            term: Term::decode(d)?,
            id: EntryId::decode(d)?,
            payload: Payload::decode(d)?,
            approval: Approval::decode(d)?,
        })
    }
    fn encoded_len(&self) -> usize {
        8 + 16 + self.payload.encoded_len() + 1
    }
}

impl Wire for EntryList {
    fn encode(&self, e: &mut Encoder) {
        e.put_u32(u32::try_from(self.len()).expect("entry list too large"));
        for pair in self.iter() {
            pair.encode(e);
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Vec::<(LogIndex, LogEntry)>::decode(d)?.into())
    }
    fn encoded_len(&self) -> usize {
        4 + self.iter().map(Wire::encoded_len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + fmt::Debug>(v: &T) {
        let bytes = v.to_bytes();
        assert_eq!(bytes.len(), v.encoded_len(), "encoded_len mismatch");
        let back = T::from_bytes(&bytes).expect("decode");
        assert_eq!(&back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(&0u64);
        roundtrip(&u64::MAX);
        roundtrip(&true);
        roundtrip(&false);
        roundtrip(&Bytes::from_static(b""));
        roundtrip(&Bytes::from_static(b"hello"));
        roundtrip(&Some(7u64));
        roundtrip(&Option::<u64>::None);
        roundtrip(&vec![1u64, 2, 3]);
        roundtrip(&Vec::<u64>::new());
        roundtrip(&(NodeId(1), Term(2)));
    }

    #[test]
    fn ids_roundtrip() {
        roundtrip(&NodeId(42));
        roundtrip(&ClusterId(7));
        roundtrip(&Term(9));
        roundtrip(&LogIndex(12));
        roundtrip(&EntryId::new(NodeId(3), 99));
    }

    #[test]
    fn entries_roundtrip() {
        let cfg = Configuration::new([NodeId(1), NodeId(2), NodeId(5)]);
        roundtrip(&cfg);
        roundtrip(&Approval::SelfApproved);
        roundtrip(&Approval::LeaderApproved);
        let data = LogEntry::data(Term(3), EntryId::new(NodeId(1), 0), Bytes::from_static(b"v"));
        roundtrip(&data);
        roundtrip(&LogEntry::noop(Term(1), EntryId::new(NodeId(2), 1)));
        roundtrip(&LogEntry::config(
            Term(2),
            EntryId::new(NodeId(3), 2),
            cfg.clone(),
        ));
        let batch = Batch::new(
            ClusterId(4),
            11,
            vec![
                BatchItem {
                    id: EntryId::new(NodeId(1), 0),
                    key: Some((SessionId::client(7), 3)),
                    data: Bytes::from_static(b"a"),
                },
                BatchItem {
                    id: EntryId::new(NodeId(2), 1),
                    key: None,
                    data: Bytes::from_static(b"bb"),
                },
            ],
        );
        roundtrip(&LogEntry {
            term: Term(5),
            id: EntryId::new(NodeId(9), 3),
            payload: Payload::Batch(batch.clone()),
            approval: Approval::SelfApproved,
        });
        let gs = GlobalState {
            index: LogIndex(8),
            entry: std::sync::Arc::new(LogEntry {
                term: Term(5),
                id: EntryId::new(NodeId(9), 3),
                payload: Payload::Batch(batch),
                approval: Approval::LeaderApproved,
            }),
            global_commit: LogIndex(6),
        };
        roundtrip(&LogEntry {
            term: Term(6),
            id: EntryId::new(NodeId(9), 4),
            payload: Payload::GlobalState(gs),
            approval: Approval::LeaderApproved,
        });
    }

    #[test]
    fn snapshot_roundtrips() {
        roundtrip(&LogScope::Local);
        roundtrip(&LogScope::Global);
        let mut sessions = SessionTable::new();
        sessions.apply(SessionId::client(4), 1, LogIndex(9));
        sessions.apply(SessionId::client(4), 2, LogIndex(11));
        sessions.apply(SessionId::client(9), 3, LogIndex(30));
        roundtrip(&sessions);
        roundtrip(&SessionTable::new());
        roundtrip(&Snapshot {
            scope: LogScope::Global,
            last_index: LogIndex(200),
            last_term: Term(4),
            config: Configuration::new([NodeId(1), NodeId(2), NodeId(3)]),
            state: Snapshot::digest_state(0x1234_5678_9ABC_DEF0),
            sessions,
        });
        roundtrip(&Snapshot {
            scope: LogScope::Local,
            last_index: LogIndex(1),
            last_term: Term(1),
            config: Configuration::new([NodeId(7)]),
            state: Bytes::new(),
            sessions: SessionTable::new(),
        });
    }

    #[test]
    fn snapshot_rejects_foreign_format_versions() {
        // A record from an older (or newer) build must fail with a tagged
        // error, never decode shifted fields. The unversioned pre-history
        // format began with the LogScope tag (0/1), so those bytes land
        // here too.
        let snap = Snapshot {
            scope: LogScope::Global,
            last_index: LogIndex(3),
            last_term: Term(2),
            config: Configuration::new([NodeId(1)]),
            state: Bytes::new(),
            sessions: SessionTable::new(),
        };
        let mut bytes = snap.to_bytes().to_vec();
        for foreign in [0u8, 1, crate::SNAPSHOT_FORMAT_VERSION + 1] {
            bytes[0] = foreign;
            assert!(
                matches!(
                    Snapshot::from_bytes(&bytes),
                    Err(DecodeError::InvalidTag {
                        ty: "SnapshotFormatVersion",
                        tag,
                    }) if tag == foreign
                ),
                "version byte {foreign} must be refused"
            );
        }
    }

    #[test]
    fn client_types_roundtrip() {
        roundtrip(&SessionId::client(9));
        roundtrip(&SessionId::client(u64::MAX));
        roundtrip(&Consistency::Linearizable);
        roundtrip(&Consistency::StaleLocal);
        roundtrip(&Consistency::StaleGlobal);
        roundtrip(&ClientOutcome::Committed {
            index: LogIndex(12),
        });
        roundtrip(&ClientOutcome::Duplicate {
            first_index: LogIndex(7),
        });
        roundtrip(&ClientOutcome::ReadOk {
            scope: LogScope::Global,
            commit_floor: LogIndex(40),
        });
        roundtrip(&ClientOutcome::Redirect {
            leader_hint: Some(NodeId(2)),
        });
        roundtrip(&ClientOutcome::Retry);
        roundtrip(&ClientOutcome::Registered {
            session: SessionId::client(3),
            index: LogIndex(21),
        });
        roundtrip(&Payload::Write {
            session: SessionId::client(1),
            seq: 5,
            data: Bytes::from_static(b"value"),
        });
        roundtrip(&Payload::Register {
            session: SessionId::client(44),
        });
    }

    #[test]
    fn entry_list_roundtrips() {
        let e = LogEntry::data(Term(3), EntryId::new(NodeId(1), 0), Bytes::from_static(b"v"));
        roundtrip(&EntryList::empty());
        roundtrip(&EntryList::from_vec(vec![
            (LogIndex(2), e.clone()),
            (LogIndex(5), e.clone()),
        ]));
        // The list encodes identically to the plain vector it froze.
        let v = vec![(LogIndex(2), e.clone()), (LogIndex(5), e)];
        assert_eq!(EntryList::from_vec(v.clone()).to_bytes(), v.to_bytes());
    }

    #[test]
    fn truncated_input_errors() {
        let entry = LogEntry::data(Term(3), EntryId::new(NodeId(1), 0), Bytes::from_static(b"v"));
        let bytes = entry.to_bytes();
        for cut in 0..bytes.len() {
            let err = LogEntry::from_bytes(&bytes[..cut]);
            assert!(err.is_err(), "decoding cut={cut} should fail");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = Term(1).to_bytes().to_vec();
        buf.push(0);
        assert_eq!(
            Term::from_bytes(&buf),
            Err(DecodeError::TrailingBytes { count: 1 })
        );
    }

    #[test]
    fn invalid_tags_rejected() {
        // Payload with tag 9.
        let buf = [9u8];
        assert!(matches!(
            Payload::from_bytes(&buf),
            Err(DecodeError::InvalidTag { ty: "Payload", .. })
        ));
        // Bool with value 2.
        assert!(matches!(
            bool::from_bytes(&[2]),
            Err(DecodeError::InvalidTag { ty: "bool", .. })
        ));
    }

    #[test]
    fn length_overflow_rejected() {
        // A Bytes declaring a huge length.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            Bytes::from_bytes(&buf),
            Err(DecodeError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn decode_error_display() {
        let e = DecodeError::UnexpectedEof {
            needed: 8,
            remaining: 3,
        };
        assert!(e.to_string().contains("needed 8"));
        let e = DecodeError::InvalidTag { ty: "X", tag: 9 };
        assert!(e.to_string().contains("decoding X"));
    }
}
