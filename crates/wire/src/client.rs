//! The typed client-facing request/response vocabulary.
//!
//! The paper evaluates its protocols with anonymous fire-and-forget
//! proposals; a production system needs a real client contract. This module
//! defines it, uniformly for classic Raft, Fast Raft, and C-Raft:
//!
//! - a client opens a [`SessionId`] and issues [`ClientRequest`]s with a
//!   monotonically increasing `seq`;
//! - **writes** are exactly-once: every replica maintains a [`SessionTable`]
//!   (session → applied seqs + result index) as part of *applied state*, so
//!   a retried `seq` — across leader changes, crashes, and snapshot
//!   compaction — is applied at most once. The table travels inside
//!   [`crate::Snapshot`] and is folded into the commit digest;
//! - **reads** carry a [`Consistency`] level: [`Consistency::Linearizable`]
//!   runs a ReadIndex round at the leader (leadership confirmed by a
//!   heartbeat quorum before answering at the commit floor), while
//!   [`Consistency::StaleLocal`] is served immediately from any site's
//!   commit floor;
//! - every request is answered by a typed [`ClientOutcome`], surfaced to the
//!   embedding through [`crate::Observation::ClientResponse`].
//!
//! A session must have at most one request in flight and issue `seq`s
//! starting at 1; retries re-send the *same* `seq`. C-Raft reuses the same
//! machinery at its **global** level: batch items carry their originating
//! `(session, seq)`, and the global log applies batches item-wise through
//! its own table — so a write whose item lands in two batches (a successor
//! cluster leader re-batching after a crash) still applies globally exactly
//! once. Global batches from one cluster can commit out of order, so one
//! session's seqs may *apply* out of order there; the table's
//! floor-plus-sparse-window representation handles that.

use core::fmt;

use std::collections::BTreeMap;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::{LogIndex, LogScope, NodeId, SparseLog, Term};

/// The Raft §8 currency condition for door-level expiry verdicts: `true`
/// when a node with this `log`, `commit_index`, and `current_term` has
/// committed an entry of its own term. Application is synchronous with the
/// commit scan in both protocols, so from that point on the node's
/// [`SessionTable`] provably covers every write committed anywhere and a
/// door-level [`SessionTable::is_expired_retry`] verdict is exact; before
/// it, the table may merely *lag* the commit sequence and "expired" can be
/// a false positive for a live session. One shared predicate so the
/// condition cannot drift between the protocols' doors; callers add their
/// own leadership check.
pub fn session_state_current(log: &SparseLog, commit_index: LogIndex, current_term: Term) -> bool {
    log.term_at(commit_index) == current_term
}

/// Identifier of a client session.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SessionId(pub u64);

impl SessionId {
    /// The reserved "assign me one" id a [`ClientOp::Register`] carries when
    /// the client wants the server to pick the session id.
    pub const UNASSIGNED: SessionId = SessionId(0);

    /// A client session with the given raw id.
    pub const fn client(id: u64) -> Self {
        SessionId(id)
    }

    /// A server-assigned session id, derived at the registering gateway from
    /// its node id and a local counter. The top bit partitions the space so
    /// assigned ids can never collide with client-chosen ones (which would
    /// silently merge two sessions' dedup windows).
    pub const fn assigned(node: NodeId, counter: u64) -> Self {
        SessionId((1 << 63) | (node.as_u64() << 32) | (counter & 0xffff_ffff))
    }

    /// `true` for the reserved server-assign sentinel.
    pub const fn is_unassigned(self) -> bool {
        self.0 == 0
    }

    /// The raw id.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The consistency level of a client read.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Consistency {
    /// Linearizable **with respect to the log it reads**: the answer
    /// reflects every operation that completed *on that log* before the
    /// read was issued. Served by the leader after a ReadIndex round
    /// (leadership confirmed by a heartbeat quorum). In C-Raft this is a
    /// **global** read, confirmed through the global engine and answering
    /// at the global commit floor — note that C-Raft writes are
    /// acknowledged at *local* commit (§V-A), before their batch reaches
    /// the global log, so a freshly acked write may not yet be visible to
    /// a global read; clients needing global read-your-writes must wait
    /// for the write's batch to commit globally.
    Linearizable,
    /// Possibly stale: served immediately from the receiving site's local
    /// commit floor, with no coordination.
    StaleLocal,
    /// Possibly stale, **global scope**: served immediately from the
    /// receiving site's view of the *global* commit floor, with no
    /// coordination. In C-Raft this is the cluster's `global_commit_seen`
    /// — every globally committed batch the cluster has observed — so the
    /// answer reflects global state without paying the wide-area round a
    /// [`Consistency::Linearizable`] read costs ("read your cluster's view
    /// of the world"). The floor is monotone per site but may lag the true
    /// global floor by replication delay. In the single-level protocols the
    /// only log *is* the global log, so this is identical to
    /// [`Consistency::StaleLocal`].
    StaleGlobal,
}

/// What a client asks for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientOp {
    /// Replicate this value exactly once.
    Write(Bytes),
    /// Report the commit floor at the requested consistency level.
    Read(Consistency),
    /// Explicitly open the session: a committed no-value op that consumes
    /// `seq` **1**, separating "session exists" from "first write". A
    /// registered session's first write is therefore seq 2, which closes
    /// the expiry boundary documented on
    /// [`SessionTable::is_expired_retry`]: every post-eviction retry of a
    /// registered session has `seq > 1` and is detectably stale, so no
    /// write is ever silently re-applied. Requesting it with session id
    /// **0** asks the server to assign one (returned in
    /// [`ClientOutcome::Registered`]); a *retry* of an id-0 registration
    /// cannot be deduplicated (the client has no identity yet) and may
    /// open a second, unused session — harmless, and bounded by the
    /// session TTL.
    Register,
}

impl ClientOp {
    /// `true` for writes.
    pub fn is_write(&self) -> bool {
        matches!(self, ClientOp::Write(_))
    }
}

/// One client request: a session-scoped, retry-safe operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClientRequest {
    /// The issuing session.
    pub session: SessionId,
    /// Session-local sequence number (1-based; retries reuse it).
    pub seq: u64,
    /// The operation.
    pub op: ClientOp,
}

impl ClientRequest {
    /// A write request.
    pub fn write(session: SessionId, seq: u64, data: Bytes) -> Self {
        ClientRequest {
            session,
            seq,
            op: ClientOp::Write(data),
        }
    }

    /// A read request.
    pub fn read(session: SessionId, seq: u64, consistency: Consistency) -> Self {
        ClientRequest {
            session,
            seq,
            op: ClientOp::Read(consistency),
        }
    }

    /// A session-registration request (always seq 1 — registration *is*
    /// the session's first operation; session 0 asks the server to assign
    /// an id).
    pub fn register(session: SessionId) -> Self {
        ClientRequest {
            session,
            seq: 1,
            op: ClientOp::Register,
        }
    }
}

/// The typed answer to a [`ClientRequest`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientOutcome {
    /// The write was applied for the first time at `index`.
    Committed {
        /// Where the write landed in the log.
        index: LogIndex,
    },
    /// The write was already applied by an earlier attempt — the retry was
    /// suppressed. `first_index` is the original application index when the
    /// replica still remembers it, [`LogIndex::ZERO`] for ancient seqs.
    Duplicate {
        /// Where the first application landed (ZERO if unknown).
        first_index: LogIndex,
    },
    /// The read succeeded: the caller may read state through `commit_floor`
    /// of the `scope` log at the requested consistency.
    ReadOk {
        /// Which log the floor belongs to (Global; Local for C-Raft's
        /// stale local reads).
        scope: LogScope,
        /// The commit floor the answer reflects.
        commit_floor: LogIndex,
    },
    /// The session registration committed: the session named here (the
    /// requested one, or the server-assigned id for requests with session
    /// 0) is open with seq 1 consumed — its first write must use seq 2.
    Registered {
        /// The open session (authoritative: may differ from the request's
        /// when the server assigned it).
        session: SessionId,
        /// Where the registration landed in the log.
        index: LogIndex,
    },
    /// The receiving node cannot serve the request; retry against
    /// `leader_hint` (when `Some`) or any member (when `None`).
    Redirect {
        /// The believed current leader.
        leader_hint: Option<NodeId>,
    },
    /// Transient condition (election in progress, leadership lost mid-read,
    /// fresh leader without a committed entry of its term): retry the same
    /// `(session, seq)` after a backoff.
    Retry,
    /// **Terminal**: the session sat idle past the configured TTL and its
    /// exactly-once history was garbage-collected; this `(session, seq)`
    /// can no longer be deduplicated and was *not* (re)applied by the
    /// answering path. Re-sending the same `(session, seq)` will fail the
    /// same way — the client must open a fresh session (and, knowing the
    /// op was not applied by this request, may resubmit it there).
    SessionExpired,
}

impl ClientOutcome {
    /// `true` when the operation is finished (no retry needed).
    pub fn is_terminal(&self) -> bool {
        !matches!(
            self,
            ClientOutcome::Redirect { .. } | ClientOutcome::Retry
        )
    }

    /// Short tag for traces.
    pub fn kind(&self) -> &'static str {
        match self {
            ClientOutcome::Committed { .. } => "committed",
            ClientOutcome::Duplicate { .. } => "duplicate",
            ClientOutcome::ReadOk { .. } => "read_ok",
            ClientOutcome::Registered { .. } => "registered",
            ClientOutcome::Redirect { .. } => "redirect",
            ClientOutcome::Retry => "retry",
            ClientOutcome::SessionExpired => "session_expired",
        }
    }
}

/// The outcome of applying a session-tagged operation to a [`SessionTable`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionApply {
    /// First application: the operation took effect.
    Applied,
    /// The seq was already applied; the operation must be skipped.
    Duplicate {
        /// Where the first application landed (ZERO if unknown).
        first_index: LogIndex,
    },
}

/// Per-session applied state: which seqs have been applied, and where.
///
/// Seqs at or below `floor_seq` are all applied; `above` holds applied seqs
/// beyond the floor (out-of-order application, which only cluster batch
/// sessions exhibit). The window stays bounded by the session's in-flight
/// depth: the floor advances as soon as it becomes contiguous.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SessionSlot {
    /// Highest seq S such that all of `1..=S` are applied (0 = none).
    pub floor_seq: u64,
    /// Log index where `floor_seq` was applied (ZERO if unknown/ancient).
    pub floor_index: LogIndex,
    /// Applied seqs above the floor, with their application indices.
    pub above: BTreeMap<u64, LogIndex>,
    /// Commit index of the most recent apply touching this session
    /// (first applications *and* committed duplicates). Idleness for
    /// session expiry is measured against this in **log distance**, the
    /// deterministic stand-in for wall-clock time: every replica sees the
    /// same committed sequence, so every replica evicts identically.
    pub last_active: LogIndex,
}

impl SessionSlot {
    /// `true` if `seq` has been applied.
    pub fn contains(&self, seq: u64) -> bool {
        seq <= self.floor_seq || self.above.contains_key(&seq)
    }

    /// The application index of `seq`, if applied and still remembered.
    fn first_index_of(&self, seq: u64) -> LogIndex {
        if seq == self.floor_seq {
            self.floor_index
        } else {
            self.above.get(&seq).copied().unwrap_or(LogIndex::ZERO)
        }
    }

    /// Highest applied seq.
    pub fn last_seq(&self) -> u64 {
        self.above
            .keys()
            .next_back()
            .copied()
            .unwrap_or(self.floor_seq)
    }
}

/// The per-session exactly-once dedup table — part of **applied state**.
///
/// Every replica updates its table identically while applying committed
/// entries, so the table is a deterministic function of the committed
/// sequence; it is captured into [`crate::Snapshot`]s and folded into the
/// commit digest (see [`crate::fold_session_digest`]), which is what makes
/// dedup survive log compaction and leader restarts.
///
/// # Examples
///
/// ```
/// use wire::{LogIndex, SessionApply, SessionId, SessionTable};
///
/// let mut t = SessionTable::new();
/// let s = SessionId::client(7);
/// assert_eq!(t.apply(s, 1, LogIndex(10)), SessionApply::Applied);
/// assert_eq!(
///     t.apply(s, 1, LogIndex(12)),
///     SessionApply::Duplicate { first_index: LogIndex(10) }
/// );
/// ```
#[derive(Clone, Debug, Default)]
pub struct SessionTable {
    sessions: BTreeMap<SessionId, SessionSlot>,
    /// Lower bound on every tracked slot's `last_active` — the O(1) fast
    /// path of [`SessionTable::evict_idle`]: a sweep whose horizon has not
    /// crossed this bound cannot evict anything and returns immediately,
    /// so the per-commit sweep is O(1) until idleness actually accrues.
    /// Pure cache (applies never lower `last_active`, so the bound stays
    /// valid; sweeps recompute it), excluded from equality.
    idle_floor: u64,
}

/// Equality is over the tracked sessions only: `idle_floor` is a sweep
/// cache, recomputed on demand, and differs between a table and its codec
/// round trip without the tables being observably different.
impl PartialEq for SessionTable {
    fn eq(&self, other: &Self) -> bool {
        self.sessions == other.sessions
    }
}

impl Eq for SessionTable {}

impl SessionTable {
    /// An empty table.
    pub fn new() -> Self {
        SessionTable::default()
    }

    /// Number of sessions tracked.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// `true` when no session has applied anything.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// The slot for `session`, if any seq applied.
    pub fn get(&self, session: SessionId) -> Option<&SessionSlot> {
        self.sessions.get(&session)
    }

    /// Iterates `(session, slot)` in deterministic (ascending id) order.
    pub fn iter(&self) -> impl Iterator<Item = (SessionId, &SessionSlot)> {
        self.sessions.iter().map(|(s, slot)| (*s, slot))
    }

    /// If `(session, seq)` was already applied, the index of its first
    /// application (ZERO when no longer remembered).
    pub fn duplicate_of(&self, session: SessionId, seq: u64) -> Option<LogIndex> {
        let slot = self.sessions.get(&session)?;
        slot.contains(seq).then(|| slot.first_index_of(seq))
    }

    /// Applies `(session, seq)` at log position `index`, recording it if it
    /// is new and reporting a duplicate otherwise. Deterministic: replicas
    /// applying the same committed sequence hold identical tables.
    pub fn apply(&mut self, session: SessionId, seq: u64, index: LogIndex) -> SessionApply {
        let slot = self.sessions.entry(session).or_default();
        slot.last_active = slot.last_active.max(index);
        if slot.contains(seq) {
            return SessionApply::Duplicate {
                first_index: slot.first_index_of(seq),
            };
        }
        slot.above.insert(seq, index);
        // Advance the floor across the now-contiguous run so the window
        // stays bounded by the session's in-flight depth.
        while let Some(idx) = slot.above.remove(&(slot.floor_seq + 1)) {
            slot.floor_seq += 1;
            slot.floor_index = idx;
        }
        SessionApply::Applied
    }

    /// Evicts every session whose last activity lies more than `ttl`
    /// committed indices below `now`, returning the evicted ids in
    /// deterministic (ascending) order. `ttl == 0` disables expiry.
    ///
    /// Idleness is measured in **log distance**, not wall time: the commit
    /// index is the one clock all replicas share, so eviction is a pure
    /// function of the committed sequence — replicas stay convergent, and
    /// the caller folds each eviction into the commit digest
    /// (`crate::fold_session_evicted`) so snapshots prove it.
    ///
    /// An evicted session's history is forgotten: a stale retry of one of
    /// its seqs no longer answers `Duplicate` — it is refused with the
    /// terminal [`crate::ClientOutcome::SessionExpired`] (see
    /// [`SessionTable::is_expired_retry`] for where that answer is
    /// authoritative) and the client must open a fresh session. That is
    /// the deliberate trade that keeps the table bounded by *live*
    /// sessions instead of every session ever seen.
    pub fn evict_idle(&mut self, now: LogIndex, ttl: u64) -> Vec<SessionId> {
        if ttl == 0 || self.sessions.is_empty() {
            return Vec::new();
        }
        let horizon = now.as_u64().saturating_sub(ttl);
        if horizon <= self.idle_floor {
            // Nothing can be older than the cached bound: O(1), no alloc.
            return Vec::new();
        }
        let mut evicted = Vec::new();
        let mut oldest_retained = u64::MAX;
        // BTreeMap::retain visits keys in ascending order, which is what
        // keeps the eviction sequence — and therefore the digest folds —
        // deterministic across replicas.
        self.sessions.retain(|s, slot| {
            if slot.last_active.as_u64() < horizon {
                evicted.push(*s);
                false
            } else {
                oldest_retained = oldest_retained.min(slot.last_active.as_u64());
                true
            }
        });
        // Everything retained is ≥ horizon; future applies only go up.
        self.idle_floor = if self.sessions.is_empty() {
            horizon
        } else {
            oldest_retained
        };
        evicted
    }

    /// `true` when `(session, seq)` reads as a write from an **expired**
    /// session: the table does not track the session, yet the seq is not a
    /// session-opening first request. Sessions issue seqs from 1
    /// contiguously with at most one in flight, so seq `n > 1` is only ever
    /// sent after `n-1` applied — a table that has applied everything
    /// committed so far and still lacks the session can only have evicted
    /// it.
    ///
    /// Where the answer is authoritative matters:
    ///
    /// - **At apply time** (a committed `Write` about to be applied at
    ///   index `k`): the table covers every commit below `k`, so `true`
    ///   is exact — the write is skipped and answered
    ///   [`ClientOutcome::SessionExpired`]. This is the check that keeps a
    ///   duplicate placement that outlives its session's eviction from
    ///   re-applying.
    /// - **At a propose door**: the local table may simply *lag* the
    ///   commit sequence (fresh leader before an entry of its own term
    ///   commits, any follower gateway), so `true` can be a false
    ///   positive — the session's writes are committed, just not applied
    ///   *here* yet. A door may therefore answer the terminal
    ///   `SessionExpired` only when **all** of the following hold, and
    ///   must otherwise fall back to routing the op onward (or answering
    ///   the non-terminal `Retry`):
    ///   1. its in-flight dedup (pending-write map / id index) ran first
    ///      and missed — a pair already replicating must never be told
    ///      "placed nowhere" while its placement survives in the log;
    ///   2. its applied state is **provably current** — it is the leader
    ///      and an entry of its own term has committed (Raft §8), so the
    ///      local table covers every write committed anywhere. Without
    ///      this, a falsely refused client would reopen a session and
    ///      resubmit while the original placement commits and applies —
    ///      the op applies twice.
    ///
    ///   The any-replica broadcast insert path must not consult this
    ///   check at all: one lagging replica would otherwise veto an op
    ///   that the rest of the quorum is already placing.
    ///
    /// **Boundary:** an unknown session with `seq == 1` is indistinguishable
    /// from a new session opening, so it is *not* flagged — a client whose
    /// only-ever seq-1 op applied, went unacked, and who then retries after
    /// sitting idle past the TTL will have that op re-applied. This is the
    /// classic expiry trade (Raft dissertation §6.3). [`ClientOp::Register`]
    /// closes it for clients that opt in: registration is an explicit
    /// committed op that consumes seq 1, so a registered session's writes
    /// all carry `seq > 1` and every post-eviction retry is detectable —
    /// the only re-applyable seq-1 op is the registration itself, which is
    /// value-free and harmlessly re-opens an empty session.
    pub fn is_expired_retry(&self, session: SessionId, seq: u64) -> bool {
        seq > 1 && !self.sessions.contains_key(&session)
    }

    /// Restores a slot wholesale (codec path).
    pub(crate) fn insert_slot(&mut self, session: SessionId, slot: SessionSlot) {
        self.sessions.insert(session, slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_id_display() {
        assert_eq!(SessionId::client(5).to_string(), "s5");
        assert_eq!(SessionId::client(5), SessionId(5));
    }

    #[test]
    fn in_order_applies_advance_floor() {
        let mut t = SessionTable::new();
        let s = SessionId::client(1);
        for seq in 1..=5u64 {
            assert_eq!(t.apply(s, seq, LogIndex(seq + 100)), SessionApply::Applied);
        }
        let slot = t.get(s).unwrap();
        assert_eq!(slot.floor_seq, 5);
        assert_eq!(slot.floor_index, LogIndex(105));
        assert!(slot.above.is_empty());
        assert_eq!(slot.last_seq(), 5);
    }

    #[test]
    fn duplicates_report_first_index() {
        let mut t = SessionTable::new();
        let s = SessionId::client(1);
        t.apply(s, 1, LogIndex(3));
        assert_eq!(
            t.apply(s, 1, LogIndex(9)),
            SessionApply::Duplicate {
                first_index: LogIndex(3)
            }
        );
        assert_eq!(t.duplicate_of(s, 1), Some(LogIndex(3)));
        assert_eq!(t.duplicate_of(s, 2), None);
    }

    #[test]
    fn out_of_order_applies_are_not_duplicates() {
        // C-Raft's global log applies batch items out of order when batches
        // from one cluster commit in a different order than they were cut.
        // Each distinct seq must apply exactly once regardless.
        let mut t = SessionTable::new();
        let s = SessionId::client(8);
        assert_eq!(t.apply(s, 2, LogIndex(10)), SessionApply::Applied);
        assert_eq!(t.apply(s, 1, LogIndex(11)), SessionApply::Applied);
        let slot = t.get(s).unwrap();
        assert_eq!(slot.floor_seq, 2, "floor catches up once contiguous");
        assert!(slot.above.is_empty());
        assert_eq!(
            t.apply(s, 2, LogIndex(12)),
            SessionApply::Duplicate {
                first_index: LogIndex(10)
            }
        );
    }

    #[test]
    fn ancient_duplicate_has_unknown_index() {
        let mut t = SessionTable::new();
        let s = SessionId::client(1);
        t.apply(s, 1, LogIndex(1));
        t.apply(s, 2, LogIndex(2));
        // Seq 1 is below the floor and its index was merged away.
        assert_eq!(t.duplicate_of(s, 1), Some(LogIndex::ZERO));
        assert_eq!(t.duplicate_of(s, 2), Some(LogIndex(2)));
    }

    #[test]
    fn evict_idle_removes_only_idle_sessions() {
        let mut t = SessionTable::new();
        let idle = SessionId::client(1);
        let busy = SessionId::client(2);
        t.apply(idle, 1, LogIndex(10));
        t.apply(busy, 1, LogIndex(10));
        t.apply(busy, 2, LogIndex(100));
        // ttl 50 at commit 100: idle (last active 10) goes, busy stays.
        assert_eq!(t.evict_idle(LogIndex(100), 50), vec![idle]);
        assert!(t.get(idle).is_none());
        assert!(t.get(busy).is_some());
        // Re-running at the same point is a no-op (determinism).
        assert!(t.evict_idle(LogIndex(100), 50).is_empty());
    }

    #[test]
    fn evict_idle_disabled_by_zero_ttl() {
        let mut t = SessionTable::new();
        t.apply(SessionId::client(1), 1, LogIndex(1));
        assert!(t.evict_idle(LogIndex(1_000_000), 0).is_empty());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn evict_idle_returns_ascending_ids() {
        let mut t = SessionTable::new();
        for id in [5u64, 1, 3] {
            t.apply(SessionId::client(id), 1, LogIndex(1));
        }
        let evicted = t.evict_idle(LogIndex(100), 10);
        assert_eq!(
            evicted,
            vec![SessionId(1), SessionId(3), SessionId(5)],
            "deterministic eviction order is what keeps digests convergent"
        );
        assert!(t.is_empty());
    }

    #[test]
    fn committed_duplicates_refresh_activity() {
        let mut t = SessionTable::new();
        let s = SessionId::client(1);
        t.apply(s, 1, LogIndex(10));
        // A committed retry of seq 1 at index 90 counts as activity...
        assert!(matches!(
            t.apply(s, 1, LogIndex(90)),
            SessionApply::Duplicate { .. }
        ));
        // ...so the session survives a ttl-50 sweep at commit 100.
        assert!(t.evict_idle(LogIndex(100), 50).is_empty());
        assert_eq!(t.get(s).unwrap().last_active, LogIndex(90));
    }

    #[test]
    fn expired_retry_detection() {
        let mut t = SessionTable::new();
        let s = SessionId::client(1);
        t.apply(s, 1, LogIndex(1));
        t.apply(s, 2, LogIndex(2));
        // Tracked session: never an expired retry.
        assert!(!t.is_expired_retry(s, 2));
        t.evict_idle(LogIndex(500), 100);
        // Evicted: seq > 1 can only be a stale retry (answer Retry)...
        assert!(t.is_expired_retry(s, 2));
        assert_eq!(t.duplicate_of(s, 2), None, "history is forgotten");
        // ...while seq 1 reads as a fresh session opening.
        assert!(!t.is_expired_retry(s, 1));
    }

    #[test]
    fn outcome_terminality() {
        assert!(ClientOutcome::Committed {
            index: LogIndex(1)
        }
        .is_terminal());
        assert!(ClientOutcome::ReadOk {
            scope: LogScope::Global,
            commit_floor: LogIndex(1)
        }
        .is_terminal());
        assert!(!ClientOutcome::Retry.is_terminal());
        assert!(!ClientOutcome::Redirect { leader_hint: None }.is_terminal());
        assert_eq!(ClientOutcome::Retry.kind(), "retry");
    }
}
