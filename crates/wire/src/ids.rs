//! Strongly-typed identifiers used throughout the consensus stack.

use core::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a site (a participant in consensus).
///
/// Sites are addressed by opaque 64-bit ids; the simulated network maps them
/// to topology endpoints.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct NodeId(pub u64);

impl NodeId {
    /// The raw id.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(v: u64) -> Self {
        NodeId(v)
    }
}

/// Identifier of an independent consensus group in a sharded deployment.
///
/// The keyspace hierarchy axis: where [`ClusterId`] names a *site grouping*
/// in C-Raft's two-level log, `GroupId` names one of many independent
/// replicated logs a single process multiplexes (the shard router maps each
/// key's hash range to exactly one group). Linearizability is per-group;
/// see `docs/CONSISTENCY.md`.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct GroupId(pub u32);

impl GroupId {
    /// The raw id.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl From<u32> for GroupId {
    fn from(v: u32) -> Self {
        GroupId(v)
    }
}

/// Identifier of a cluster in C-Raft's hierarchy.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ClusterId(pub u64);

impl ClusterId {
    /// The raw id.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<u64> for ClusterId {
    fn from(v: u64) -> Self {
        ClusterId(v)
    }
}

/// A Raft term number. Terms increase monotonically; each term has at most
/// one leader.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Term(pub u64);

impl Term {
    /// The initial term, before any election.
    pub const ZERO: Term = Term(0);

    /// The next term.
    #[must_use]
    pub const fn next(self) -> Term {
        Term(self.0 + 1)
    }

    /// The raw term number.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A 1-based position in a replicated log. Index 0 means "no entry" (the
/// sentinel used for `prevLogIndex` at the log head and for "nothing
/// committed yet").
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct LogIndex(pub u64);

impl LogIndex {
    /// The sentinel index, before the first entry.
    pub const ZERO: LogIndex = LogIndex(0);

    /// The first real log position.
    pub const FIRST: LogIndex = LogIndex(1);

    /// The next index.
    #[must_use]
    pub const fn next(self) -> LogIndex {
        LogIndex(self.0 + 1)
    }

    /// The previous index.
    ///
    /// # Panics
    ///
    /// Panics when called on [`LogIndex::ZERO`].
    #[must_use]
    pub fn prev(self) -> LogIndex {
        assert!(self.0 > 0, "LogIndex::ZERO has no predecessor");
        LogIndex(self.0 - 1)
    }

    /// Saturating predecessor: `ZERO.prev_saturating() == ZERO`.
    #[must_use]
    pub const fn prev_saturating(self) -> LogIndex {
        LogIndex(self.0.saturating_sub(1))
    }

    /// The raw index.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// `true` for the sentinel.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for LogIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Globally unique identifier of a proposed value: the proposing site plus a
/// proposer-local sequence number.
///
/// Used to deduplicate re-proposals (a proposer resends after its proposal
/// timeout) and to correlate commit notifications back to proposals.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct EntryId {
    /// The proposing site.
    pub proposer: NodeId,
    /// Proposer-local sequence number.
    pub seq: u64,
}

impl EntryId {
    /// Creates an id for `proposer`'s `seq`-th proposal.
    pub const fn new(proposer: NodeId, seq: u64) -> Self {
        EntryId { proposer, seq }
    }
}

impl fmt::Display for EntryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.proposer, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_ordering_and_next() {
        assert!(Term(1) < Term(2));
        assert_eq!(Term::ZERO.next(), Term(1));
        assert_eq!(Term(41).next().as_u64(), 42);
    }

    #[test]
    fn log_index_navigation() {
        assert_eq!(LogIndex::FIRST.prev(), LogIndex::ZERO);
        assert_eq!(LogIndex(5).next(), LogIndex(6));
        assert_eq!(LogIndex::ZERO.prev_saturating(), LogIndex::ZERO);
        assert!(LogIndex::ZERO.is_zero());
        assert!(!LogIndex::FIRST.is_zero());
    }

    #[test]
    #[should_panic(expected = "no predecessor")]
    fn log_index_zero_prev_panics() {
        let _ = LogIndex::ZERO.prev();
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(ClusterId(1).to_string(), "c1");
        assert_eq!(Term(7).to_string(), "T7");
        assert_eq!(LogIndex(9).to_string(), "#9");
        assert_eq!(EntryId::new(NodeId(2), 5).to_string(), "n2:5");
    }

    #[test]
    fn entry_ids_are_distinct_per_proposer_and_seq() {
        let a = EntryId::new(NodeId(1), 0);
        let b = EntryId::new(NodeId(1), 1);
        let c = EntryId::new(NodeId(2), 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, EntryId::new(NodeId(1), 0));
    }
}
