//! Log snapshots for prefix compaction and catch-up transfer.
//!
//! The paper's §IV-D dynamic-membership model assumes rejoining sites catch
//! up from stable storage, but replaying the full history makes rejoin cost
//! (and every site's memory) grow linearly with run length. A [`Snapshot`]
//! captures everything a site needs about the decided prefix through
//! `last_index`: the boundary index/term (for log-matching at the horizon),
//! the membership in force, and an opaque state image. Leaders send it via
//! the protocols' `InstallSnapshot` messages whenever a follower's
//! `nextIndex` falls below the leader's first retained index; recovery
//! rebuilds a node from snapshot + retained log suffix.

use bytes::Bytes;

use crate::{Configuration, EntryId, LogIndex, LogScope, SessionId, SessionTable, Term};

/// Version byte leading every encoded [`Snapshot`].
///
/// Snapshots are the one wire value that outlives a process (persisted by
/// `storage`, re-read on recovery), so their layout cannot change silently:
/// a record written by an older build must fail decoding *cleanly* rather
/// than have later fields read where earlier ones used to sit. Bump this
/// whenever any field of the snapshot encoding (including the embedded
/// [`SessionTable`]) changes shape.
///
/// History: the original, unversioned format (no `SessionSlot::last_active`
/// in the session table) began directly with the `LogScope` tag byte
/// (`0`/`1`), so starting the versioned format at `2` makes every
/// pre-versioning record decode to a tagged error instead of shifted
/// fields.
pub const SNAPSHOT_FORMAT_VERSION: u8 = 2;

/// Folds one committed `(index, id)` pair into a running commit digest —
/// the simulation's stand-in for applying an entry to a state machine.
/// Nodes that committed the same sequence hold the same digest, so a
/// snapshot's state image can be compared for identity in tests.
pub fn fold_commit_digest(digest: u64, index: LogIndex, id: EntryId) -> u64 {
    let mut x = digest
        ^ index.as_u64().wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ id.proposer.as_u64().wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ id.seq.wrapping_mul(0x94D0_49BB_1331_11EB);
    // splitmix64 finalizer: avalanche so consecutive indices diverge.
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Folds one session-tagged write application into the commit digest, so
/// the digest covers the exactly-once *applied* state (not just the raw log
/// sequence): a duplicate that commits at a second index folds as a log
/// entry but never as a session application, and two replicas agree on
/// their digest only if they also agree on which seqs took effect.
pub fn fold_session_digest(digest: u64, session: SessionId, seq: u64) -> u64 {
    let mut x = digest
        ^ session.as_u64().wrapping_mul(0xD6E8_FEB8_6659_FD93)
        ^ seq.wrapping_mul(0xA24B_AED4_963E_E407);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Folds one session **eviction** into the commit digest. Session expiry
/// (idle past `session_ttl` committed indices) removes applied state, so it
/// must be part of the digest the same way applications are: two replicas
/// agree on their digest only if they also agree on which sessions were
/// garbage-collected — which keeps snapshots taken before and after an
/// eviction distinguishable and provably convergent.
pub fn fold_session_evicted(digest: u64, session: SessionId) -> u64 {
    let mut x = digest ^ session.as_u64().wrapping_mul(0x8CB9_2BA7_2F3D_8DD7) ^ 0x5851_F42D_4C95_7F2D;
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// A compacted-prefix snapshot of one replicated log.
///
/// The `state` field is the application-state image covering every entry
/// through `last_index`. The simulation's state machine is a running
/// commit digest (see [`Snapshot::digest_state`]); a production embedding
/// would carry its real state-machine image here.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Which log this snapshot compacts.
    pub scope: LogScope,
    /// The highest log index the snapshot covers.
    pub last_index: LogIndex,
    /// The term of the entry at `last_index`.
    pub last_term: Term,
    /// The configuration in force at `last_index` (an installing site must
    /// not depend on config entries that were compacted away).
    pub config: Configuration,
    /// Opaque application-state image through `last_index`.
    pub state: Bytes,
    /// The per-session exactly-once dedup table as of `last_index`. Part of
    /// applied state: without it, a client retry racing a leader restart
    /// across the compaction boundary could be applied twice at distinct
    /// indices (the restarted leader's in-log dedup ids were compacted
    /// away). Carrying the table in the snapshot fixes that by
    /// construction.
    pub sessions: SessionTable,
}

impl Snapshot {
    /// Encodes a commit digest as a snapshot `state` image.
    pub fn digest_state(digest: u64) -> Bytes {
        Bytes::copy_from_slice(&digest.to_le_bytes())
    }

    /// Decodes the commit digest from `state`, if it is a digest image.
    pub fn state_digest(&self) -> Option<u64> {
        let bytes: [u8; 8] = self.state.as_ref().try_into().ok()?;
        Some(u64::from_le_bytes(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    #[test]
    fn digest_roundtrips_through_state() {
        let s = Snapshot {
            scope: LogScope::Global,
            last_index: LogIndex(10),
            last_term: Term(3),
            config: Configuration::new([NodeId(1), NodeId(2)]),
            state: Snapshot::digest_state(0xDEAD_BEEF_1234_5678),
            sessions: SessionTable::new(),
        };
        assert_eq!(s.state_digest(), Some(0xDEAD_BEEF_1234_5678));
    }

    #[test]
    fn digest_is_order_sensitive() {
        let a = EntryId::new(NodeId(1), 0);
        let b = EntryId::new(NodeId(2), 0);
        let ab = fold_commit_digest(
            fold_commit_digest(0, LogIndex(1), a),
            LogIndex(2),
            b,
        );
        let ba = fold_commit_digest(
            fold_commit_digest(0, LogIndex(1), b),
            LogIndex(2),
            a,
        );
        assert_ne!(ab, ba);
        assert_ne!(ab, 0);
    }

    #[test]
    fn session_digest_differs_from_commit_digest() {
        let s = SessionId::client(1);
        let a = fold_session_digest(0, s, 1);
        let b = fold_commit_digest(0, LogIndex(1), EntryId::new(NodeId(1), 1));
        assert_ne!(a, b, "session folds must not collide with commit folds");
        assert_ne!(a, fold_session_digest(0, s, 2));
        assert_ne!(a, fold_session_digest(0, SessionId::client(2), 1));
    }

    #[test]
    fn evicted_fold_is_distinct() {
        let s = SessionId::client(1);
        let e = fold_session_evicted(0, s);
        assert_ne!(e, 0);
        assert_ne!(e, fold_session_digest(0, s, 1), "eviction ≠ application");
        assert_ne!(e, fold_session_evicted(0, SessionId::client(2)));
        // Folding an eviction changes the digest even after applications.
        let applied = fold_session_digest(0, s, 1);
        assert_ne!(fold_session_evicted(applied, s), applied);
    }

    #[test]
    fn non_digest_state_is_none() {
        let s = Snapshot {
            scope: LogScope::Local,
            last_index: LogIndex(1),
            last_term: Term(1),
            config: Configuration::new([NodeId(1)]),
            state: Bytes::from_static(b"not a digest"),
            sessions: SessionTable::new(),
        };
        assert_eq!(s.state_digest(), None);
    }
}
