//! Long-horizon churn scenarios enabled by the snapshot subsystem: sites
//! that rejoin after the cluster compacted past their position catch up by
//! snapshot transfer, and per-site log residency stays bounded over runs
//! whose history far exceeds the snapshot threshold.

use des::{SimDuration, SimTime};
use harness::{
    run_craft, run_fast_raft, CRaftScenario, FaultAction, NetworkKind, Scenario,
};
use raft::Timing;
use wire::NodeId;

#[test]
fn fast_raft_rejoin_after_compaction_installs_snapshot() {
    let threshold = 32u64;
    let s = Scenario {
        seed: 11,
        sites: 5,
        network: NetworkKind::SingleRegion,
        loss: 0.0,
        timing: Timing {
            snapshot_threshold: threshold,
            ..Timing::lan()
        },
        proposers: vec![NodeId(1)],
        payload_bytes: 64,
        target_commits: None,
        duration: SimDuration::from_secs(40),
        warmup: SimDuration::from_secs(3),
        faults: vec![
            (SimTime::from_secs(8), FaultAction::Crash(NodeId(4))),
            (SimTime::from_secs(25), FaultAction::Recover(NodeId(4))),
        ],
        leader_bias: Some(NodeId(0)),
        reads: None,
        unbatched_persists: false,
    };
    let (report, _) = run_fast_raft(&s);
    assert!(report.safety_ok);
    assert!(
        report.compactions >= 2,
        "only {} compactions over a long run",
        report.compactions
    );
    assert!(
        report.snapshot_installs >= 1,
        "rejoiner past the horizon should install a snapshot"
    );
    assert!(
        report.global_items > 3 * threshold,
        "run too short to exercise compaction ({} items)",
        report.global_items
    );
    // Bounded memory: the peak retained log stays near the threshold even
    // though the committed history is several times larger.
    assert!(
        report.peak_log_residency <= 2 * threshold + 16,
        "peak residency {} not bounded by threshold {}",
        report.peak_log_residency,
        threshold
    );
}

#[test]
fn craft_successor_leader_installs_global_snapshot() {
    // Local compaction disabled: every snapshot install observed in this
    // run is necessarily global-scope — the §IV-D rejoin path for C-Raft's
    // inter-cluster level. Three clusters so the global level keeps a
    // quorum (and can elect a new global leader) when one cluster leader
    // dies.
    let clusters = 3u64;
    let s = Scenario {
        seed: 5,
        sites: 9,
        network: NetworkKind::Regions { regions: clusters },
        loss: 0.0,
        timing: Timing {
            snapshot_threshold: 0,
            ..Timing::lan()
        },
        proposers: vec![NodeId(1), NodeId(4), NodeId(7)],
        payload_bytes: 64,
        target_commits: None,
        duration: SimDuration::from_secs(60),
        warmup: SimDuration::from_secs(5),
        // Cluster 0's designated leader dies; a successor wins the local
        // election and joins the global level from scratch, far behind the
        // compacted global log.
        faults: vec![(SimTime::from_secs(20), FaultAction::Crash(NodeId(0)))],
        leader_bias: None,
        reads: None,
        unbatched_persists: false,
    };
    let craft = CRaftScenario {
        clusters,
        batch_size: 1, // every local commit becomes a global entry
        max_batch_bytes: 0,
        global_snapshot_threshold: 16,
        global_timing: Timing::wan(),
        global_proposal_mode: consensus_core::ProposalMode::LeaderForward,
    };
    let (report, _) = run_craft(&s, &craft);
    assert!(report.safety_ok);
    assert!(
        report.compactions >= 1,
        "global log never compacted ({} global items)",
        report.global_items
    );
    assert!(
        report.snapshot_installs >= 1,
        "successor leader should catch up on the global log via snapshot \
         (compactions={}, items={})",
        report.compactions,
        report.global_items
    );
    // The system keeps committing after the leader change.
    assert!(report.global_items > 100, "throughput collapsed after churn");
}
