//! Thundering-herd session reconnect at full simulation fidelity.
//!
//! The explorer drives the same shape through adversarial schedules
//! (`crates/explorer/tests/thundering_herd.rs`); this test runs it over
//! the simulated network with real latencies and client timers. Four
//! sites host session-first clients, and a three-way split lands before
//! the workload starts — no fragment holds a quorum, so every
//! registration stalls and retries on the 2 s client timeout. When the
//! split heals, every stalled `Register` and first op re-fires in the
//! same instant. The run must absorb the storm: every session opens
//! exactly once, every client makes data progress, and the
//! Definition-2.1 checker holds throughout.

use consensus_core::FastRaftNode;
use des::{SimDuration, SimRng, SimTime};
use harness::{FaultAction, Runner, RunnerConfig, SafetyChecker, Workload};
use raft::Timing;
use simnet::{BernoulliLoss, Network, Topology, UniformLatency};
use wire::{Configuration, LogScope, NodeId, SessionId};

#[test]
fn mass_reconnect_after_partition_heals_drains_completely() {
    let sites = 5u64;
    let seed = 7u64;
    let timing = Timing::lan();
    let cfg: Configuration = (0..sites).map(NodeId).collect();

    // Session-first clients at every site but n0: the workload keys each
    // client's session by its gateway's node id, and `SessionId(0)` is the
    // reserved server-assign sentinel — a client there would mint a fresh
    // server-assigned session on every retry instead of deduplicating.
    // The registrations are what herd at heal time.
    let mut workload = Workload::writes_only(
        (1..sites).map(NodeId).collect(),
        64,
        None,
        SimTime::from_secs(3),
    );
    workload.register_sessions = true;

    // Two stacked partitions make a three-way split — {0,1} | {2} | {3,4} —
    // before the workload starts: no fragment has a quorum of 3, so every
    // client parks its `Register` and retries into the void until the
    // heal at t = 12 s. (Stacked `Partition` faults are additive cuts;
    // `Heal` clears them all.)
    let faults = vec![
        (
            SimTime::from_secs(1),
            FaultAction::Partition {
                side_a: vec![NodeId(0), NodeId(1)],
                side_b: vec![NodeId(2), NodeId(3), NodeId(4)],
            },
        ),
        (
            SimTime::from_secs(1),
            FaultAction::Partition {
                side_a: vec![NodeId(2)],
                side_b: vec![NodeId(3), NodeId(4)],
            },
        ),
        (SimTime::from_secs(12), FaultAction::Heal),
    ];

    let root = SimRng::seed_from_u64(seed);
    let nodes = (0..sites).map(|i| {
        FastRaftNode::new(NodeId(i), cfg.clone(), timing, root.split_indexed("fast-node", i))
    });
    let net = Network::new(
        Topology::single_region("local", (0..sites).map(NodeId)),
        Box::new(UniformLatency::new(
            SimDuration::from_micros(100),
            SimDuration::from_micros(500),
        )),
        Box::new(BernoulliLoss::new(0.0)),
    );
    let runner_cfg = RunnerConfig {
        seed,
        ack_scope: LogScope::Global,
        measure_from: SimTime::from_secs(3),
        clock_skew: timing.max_clock_skew,
        disk_fsync_latency: timing.disk_fsync_latency,
        unbatched_persists: false,
        persist_stalls: None,
    };
    let mut runner = Runner::new(nodes, net, workload, faults, runner_cfg, SafetyChecker::new());
    let cfg2 = cfg.clone();
    let recover_rng = root.split("recover");
    runner.set_recovery(move |id, stable| {
        FastRaftNode::recover(
            id,
            stable,
            cfg2.clone(),
            timing,
            recover_rng.split_indexed("r", id.as_u64()),
        )
    });

    runner.run_until(SimTime::from_secs(30));

    // The herd actually formed: four clients timed out repeatedly over the
    // nine seconds their registrations had no quorum to land on.
    assert!(
        runner.metrics().client_retries >= 10,
        "expected a retry storm from the partitioned clients, saw {}",
        runner.metrics().client_retries
    );
    // And it fully drained. The session table is applied state, identical
    // on every replica: each client's session must exist with its
    // registration (seq 1) and at least one data op (seq 2) applied —
    // a registration lost in the storm, or double-applied past dedup,
    // shows up here.
    for node in 0..sites {
        let table = runner
            .node(NodeId(node))
            .expect("node exists")
            .sessions();
        for client in 1..sites {
            let slot = table.get(SessionId::client(client)).unwrap_or_else(|| {
                panic!("n{node}: session of client {client} never opened")
            });
            assert!(
                slot.floor_seq >= 2,
                "n{node}: client {client} stalled at seq floor {} — \
                 reconnect never completed",
                slot.floor_seq
            );
        }
    }
    assert!(
        runner.completed() > 10,
        "only {} ops completed after the heal",
        runner.completed()
    );
    runner.safety().assert_ok();
}
