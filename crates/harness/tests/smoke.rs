//! End-to-end smoke tests of the harness over all three protocols.

use des::SimDuration;
use harness::{
    run_classic_raft, run_craft, run_fast_raft, CRaftScenario, NetworkKind, Scenario,
};
use raft::Timing;
use wire::NodeId;

#[test]
fn classic_raft_commits_closed_loop() {
    let mut s = Scenario::fig3_base(11, 0.0);
    s.target_commits = Some(20);
    let (report, metrics) = run_classic_raft(&s);
    assert!(report.safety_ok);
    assert_eq!(report.completed, 20);
    assert!(report.latency.count >= 19, "samples: {}", report.latency.count);
    // Classic Raft phase-locks to the heartbeat: mean latency should sit
    // near 100ms (the paper's Fig. 3 baseline).
    assert!(
        (60.0..160.0).contains(&report.latency.mean_ms),
        "classic raft latency {}ms out of expected band",
        report.latency.mean_ms
    );
    assert!(metrics.samples.len() as u64 <= 20);
}

#[test]
fn fast_raft_commits_about_twice_as_fast() {
    let mut s = Scenario::fig3_base(13, 0.0);
    s.target_commits = Some(20);
    let (fast, _) = run_fast_raft(&s);
    let (classic, _) = run_classic_raft(&s);
    assert!(fast.safety_ok && classic.safety_ok);
    assert!(
        fast.latency.mean_ms < classic.latency.mean_ms,
        "fast {} vs classic {}",
        fast.latency.mean_ms,
        classic.latency.mean_ms
    );
    // At zero loss everything should ride the fast track.
    assert!(fast.fast_track_ratio > 0.9, "ratio {}", fast.fast_track_ratio);
}

#[test]
fn craft_commits_globally() {
    let s = Scenario {
        seed: 17,
        sites: 6,
        network: NetworkKind::Regions { regions: 2 },
        loss: 0.0,
        timing: Timing::lan(),
        proposers: vec![NodeId(1), NodeId(4)],
        payload_bytes: 64,
        target_commits: None,
        duration: SimDuration::from_secs(40),
        warmup: SimDuration::from_secs(10),
        faults: Vec::new(),
        leader_bias: None,
        reads: None,
        unbatched_persists: false,
    };
    let (report, _) = run_craft(
        &s,
        &CRaftScenario {
            clusters: 2,
            batch_size: 3,
            max_batch_bytes: Timing::wan().max_bytes_per_append,
            global_snapshot_threshold: Timing::wan().snapshot_threshold,
            global_timing: Timing::wan(),
            global_proposal_mode: consensus_core::ProposalMode::LeaderForward,
        },
    );
    assert!(report.safety_ok);
    assert!(report.completed > 10, "local commits: {}", report.completed);
    assert!(
        report.global_items > 5,
        "global items: {} (batches must reach the global log)",
        report.global_items
    );
}

#[test]
fn deterministic_same_seed_same_report() {
    let mut s = Scenario::fig3_base(23, 0.02);
    s.target_commits = Some(15);
    let (a, _) = run_fast_raft(&s);
    let (b, _) = run_fast_raft(&s);
    assert_eq!(a.latency.mean_ms, b.latency.mean_ms);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.net.offered, b.net.offered);
}

#[test]
fn loss_degrades_fast_raft() {
    let mut clean = Scenario::fig3_base(29, 0.0);
    clean.target_commits = Some(30);
    let mut lossy = Scenario::fig3_base(29, 0.10);
    lossy.target_commits = Some(30);
    let (clean_r, _) = run_fast_raft(&clean);
    let (lossy_r, _) = run_fast_raft(&lossy);
    assert!(
        lossy_r.fast_track_ratio < clean_r.fast_track_ratio,
        "loss should push commits onto the classic track: {} vs {}",
        lossy_r.fast_track_ratio,
        clean_r.fast_track_ratio
    );
}
