//! Behavioral tests of the time-driven runner itself: timer semantics,
//! fault mechanics, workload accounting.

use des::{SimDuration, SimTime};
use harness::{
    run_fast_raft, FaultAction, NetworkKind, Scenario,
};
use raft::Timing;
use wire::NodeId;

fn base(seed: u64) -> Scenario {
    Scenario {
        seed,
        sites: 5,
        network: NetworkKind::SingleRegion,
        loss: 0.0,
        timing: Timing::lan(),
        proposers: vec![NodeId(1)],
        payload_bytes: 64,
        target_commits: Some(10),
        duration: SimDuration::from_secs(60),
        warmup: SimDuration::from_secs(3),
        faults: Vec::new(),
        leader_bias: None,
        reads: None,
        unbatched_persists: false,
    }
}

#[test]
fn run_stops_at_workload_target() {
    let (report, metrics) = run_fast_raft(&base(1));
    assert_eq!(report.completed, 10);
    assert_eq!(metrics.samples.len(), 10);
    // Ends shortly after the tenth commit, far before the 60s deadline.
    assert!(report.sim_seconds < 30.0, "ran too long: {}", report.sim_seconds);
}

#[test]
fn run_stops_at_deadline_without_target() {
    let mut s = base(2);
    s.target_commits = None;
    s.duration = SimDuration::from_secs(8);
    let (report, _) = run_fast_raft(&s);
    assert!((report.sim_seconds - 8.0).abs() < 0.5);
    assert!(report.completed > 0);
}

#[test]
fn crashed_node_black_holes_traffic() {
    let mut s = base(3);
    s.target_commits = None;
    s.duration = SimDuration::from_secs(12);
    s.faults = vec![(SimTime::from_secs(5), FaultAction::Crash(NodeId(4)))];
    let (report, _) = run_fast_raft(&s);
    assert!(report.net.dropped_down > 0, "no drops at the crashed node");
    assert!(report.safety_ok);
}

#[test]
fn partition_drops_are_accounted() {
    let mut s = base(4);
    s.target_commits = None;
    s.duration = SimDuration::from_secs(12);
    s.faults = vec![
        (
            SimTime::from_secs(5),
            FaultAction::Partition {
                side_a: vec![NodeId(0), NodeId(1), NodeId(2)],
                side_b: vec![NodeId(3), NodeId(4)],
            },
        ),
        (SimTime::from_secs(8), FaultAction::Heal),
    ];
    let (report, _) = run_fast_raft(&s);
    assert!(
        report.net.dropped_partition > 0,
        "partition produced no drops"
    );
    assert!(report.safety_ok);
}

#[test]
fn warmup_excludes_early_samples() {
    let mut s = base(5);
    s.warmup = SimDuration::from_secs(5);
    let (_, metrics) = run_fast_raft(&s);
    for sample in &metrics.samples {
        assert!(
            sample.committed_at >= SimTime::from_secs(5),
            "pre-warmup sample leaked into stats"
        );
    }
}

#[test]
fn loss_rate_observed_matches_configured() {
    let mut s = base(6);
    s.loss = 0.08;
    s.target_commits = Some(150);
    let (report, _) = run_fast_raft(&s);
    assert!(
        (0.06..0.10).contains(&report.net.loss_rate),
        "observed loss {} for configured 0.08",
        report.net.loss_rate
    );
}

#[test]
fn byte_accounting_is_nonzero_and_regional() {
    let mut s = base(7);
    s.sites = 6;
    s.network = NetworkKind::Regions { regions: 2 };
    s.proposers = vec![NodeId(1)];
    let (report, _) = run_fast_raft(&s);
    assert!(report.net.intra_region_bytes > 0);
    assert!(report.net.inter_region_bytes > 0);
}
