//! End-to-end session-workload tests: read/write mixes over the
//! time-driven runner, with the linearizability check active.

use des::{SimDuration, SimTime};
use harness::{
    run_classic_raft, run_craft, run_fast_raft, CRaftScenario, FaultAction, NetworkKind, ReadMix,
    Scenario,
};
use raft::Timing;
use wire::{Consistency, NodeId};

fn mixed(seed: u64) -> Scenario {
    let mut s = Scenario::fig3_base(seed, 0.0);
    s.target_commits = Some(40);
    s.reads = Some(ReadMix::half_linearizable());
    s
}

#[test]
fn fast_raft_mixed_workload_lin_checked() {
    let (report, metrics) = run_fast_raft(&mixed(21));
    assert!(report.safety_ok);
    assert_eq!(report.completed, 41, "40 ops + the final linearizable read");
    assert!(
        report.lin_reads_checked > 0,
        "no linearizable read was checked"
    );
    assert!(metrics.read_samples.len() as u64 >= report.lin_reads_checked / 2);
    assert!(report.read_latency.count > 0);
    // A ReadIndex round is one network round trip — it must undercut the
    // fast-track write latency (two rounds gated on the decision tick).
    assert!(
        report.read_latency.p50_ms < report.latency.p50_ms,
        "read p50 {}ms should undercut write p50 {}ms",
        report.read_latency.p50_ms,
        report.latency.p50_ms
    );
}

#[test]
fn classic_raft_mixed_workload_lin_checked() {
    let (report, _) = run_classic_raft(&mixed(22));
    assert!(report.safety_ok);
    assert_eq!(report.completed, 41);
    assert!(report.lin_reads_checked > 0);
}

#[test]
fn stale_reads_complete_without_lin_check() {
    let mut s = mixed(23);
    s.reads = Some(ReadMix {
        ratio: 0.5,
        consistency: Consistency::StaleLocal,
        final_read: false,
    });
    let (report, _) = run_fast_raft(&s);
    assert!(report.safety_ok);
    assert_eq!(report.completed, 40);
    assert_eq!(
        report.lin_reads_checked, 0,
        "stale reads are exempt from the linearizability check"
    );
    assert!(report.read_latency.count > 0);
}

#[test]
fn craft_mixed_workload_serves_global_reads() {
    let s = Scenario {
        seed: 29,
        sites: 6,
        network: NetworkKind::Regions { regions: 2 },
        loss: 0.0,
        timing: Timing::lan(),
        proposers: vec![NodeId(1), NodeId(4)],
        payload_bytes: 64,
        target_commits: Some(30),
        duration: SimDuration::from_secs(120),
        warmup: SimDuration::from_secs(5),
        faults: Vec::new(),
        leader_bias: None,
        reads: Some(ReadMix::half_linearizable()),
        unbatched_persists: false,
    };
    let (report, _) = run_craft(&s, &CRaftScenario::paper(2));
    assert!(report.safety_ok);
    // 30 ops + one final read per client; ops already in flight when the
    // target is crossed may complete too, so allow the overshoot.
    assert!(
        (32..=33).contains(&report.completed),
        "completed {}",
        report.completed
    );
    assert!(
        report.lin_reads_checked > 0,
        "C-Raft global reads never confirmed"
    );
}

#[test]
fn retry_under_crash_is_exactly_once() {
    // Crash the (biased) leader mid-run with a mixed workload: client
    // retries + session dedup keep every write exactly-once, which the
    // per-run safety checker plus duplicate counters make visible.
    let mut s = mixed(31);
    s.target_commits = Some(400);
    s.duration = SimDuration::from_secs(120);
    s.leader_bias = Some(NodeId(0));
    s.proposers = vec![NodeId(4)];
    // Take down a quorum: nothing can commit or confirm for 4 s, which is
    // twice the client timeout — the in-flight op must be resubmitted.
    s.faults = vec![
        (SimTime::from_secs(5), FaultAction::Crash(NodeId(0))),
        (SimTime::from_secs(5), FaultAction::Crash(NodeId(1))),
        (SimTime::from_secs(5), FaultAction::Crash(NodeId(2))),
        (SimTime::from_secs(9), FaultAction::Recover(NodeId(0))),
        (SimTime::from_secs(9), FaultAction::Recover(NodeId(1))),
        (SimTime::from_secs(9), FaultAction::Recover(NodeId(2))),
    ];
    let (report, _) = run_fast_raft(&s);
    assert!(report.safety_ok, "lin or commit safety violated under crash");
    assert_eq!(report.completed, 401);
    assert!(
        report.client_retries > 0,
        "the crash window should force client retries"
    );
}
