//! Adversarial clock-skew coverage for leader leases, over the time-driven
//! runner with the online linearizability checker active.
//!
//! The runner spreads node clocks evenly over `[0, RunnerConfig::clock_skew]`
//! by rank (see `RunnerConfig::clock_skew`), so the sweep controls the
//! *actual* worst-case clock disagreement independently of the
//! `Timing::max_clock_skew` the protocol was told to tolerate:
//!
//! - up to the modeled bound, leases serve linearizable reads locally and
//!   the checker stays green;
//! - beyond it, the grant-admission guard rejects provably-ahead grants —
//!   reads degrade to the ReadIndex round rather than going unsafe.

use des::{SimDuration, SimRng, SimTime};
use harness::{
    run_classic_raft, run_craft, run_fast_raft, CRaftScenario, FaultAction, NetworkKind, ReadMix,
    Runner, RunnerConfig, SafetyChecker, Scenario, Workload,
};
use consensus_core::FastRaftNode;
use raft::{RaftNode, Timing};
use simnet::Network;
use wire::{Configuration, Consistency, LogScope, NodeId};

/// Builds a 3-site fast-raft runner with node 0 biased to lead (short
/// election window, lease scaled into it per `Timing::validate`) and a
/// read-heavy closed-loop client at node 1, injecting `skew` of actual
/// clock disagreement.
fn fast_runner(skew: SimDuration, seed: u64) -> Runner<FastRaftNode> {
    let cfg: Configuration = (0..3).map(NodeId).collect();
    let root = SimRng::seed_from_u64(seed);
    let nodes = (0..3).map(|i| {
        let mut t = Timing::lan();
        scale_lease(&mut t);
        if i == 0 {
            t.election_min = SimDuration::from_millis(250);
            t.election_max = SimDuration::from_millis(300);
        }
        FastRaftNode::new(NodeId(i), cfg.clone(), t, root.split_indexed("n", i))
    });
    let workload = Workload {
        proposers: vec![NodeId(1)],
        payload_bytes: 64,
        target_commits: Some(60),
        start_at: SimTime::from_secs(3),
        read_ratio: 0.7,
        read_consistency: Consistency::Linearizable,
        final_read: true,
        client_timeout: SimDuration::from_secs(2),
        register_sessions: false,
    };
    Runner::new(
        nodes,
        Network::reliable_lan((0..3).map(NodeId)),
        workload,
        Vec::new(),
        RunnerConfig {
            seed,
            ack_scope: LogScope::Global,
            measure_from: SimTime::from_secs(3),
            clock_skew: skew,
            disk_fsync_latency: SimDuration::ZERO,
            unbatched_persists: false,
            persist_stalls: None,
        },
        SafetyChecker::new(),
    )
}

/// Node 0's shortened election window must keep the lease invariant
/// (`Timing::validate` rejects lan()'s 300+50 against a 250 ms
/// election_min), and the lease must stay **uniform** across the cluster:
/// grant admission reconstructs a grant's stamp as `until -
/// lease_duration`, so every node runs the scaled-down lease.
fn scale_lease(t: &mut Timing) {
    t.lease_duration = SimDuration::from_millis(150);
    t.max_clock_skew = SimDuration::from_millis(25);
}

#[test]
fn skew_at_or_below_bound_serves_lease_reads_safely() {
    // Injected disagreement up to the modeled 25 ms bound: the checker
    // stays green and a majority of lin reads are served from the lease.
    for skew_ms in [0u64, 12, 25] {
        let mut runner = fast_runner(SimDuration::from_millis(skew_ms), 1700 + skew_ms);
        runner.run_until(SimTime::from_secs(120));
        assert!(
            runner.safety().is_ok(),
            "lin checker violated at {skew_ms}ms skew"
        );
        let m = runner.metrics();
        assert!(
            m.lease_reads > m.readindex_reads,
            "at {skew_ms}ms skew leases should dominate: lease={} readindex={}",
            m.lease_reads,
            m.readindex_reads
        );
        assert!(runner.completed() >= 60, "workload starved at {skew_ms}ms");
    }
}

#[test]
fn skew_beyond_bound_degrades_to_readindex_not_unsafety() {
    // 400 ms of actual disagreement across 3 nodes puts both followers
    // 200/400 ms ahead of the biased rank-0 leader — beyond the 25 ms
    // bound, so every grant is rejected at admission: zero lease reads,
    // everything falls back to the quorum round, and the checker stays
    // green throughout.
    let mut runner = fast_runner(SimDuration::from_millis(400), 1800);
    runner.run_until(SimTime::from_secs(120));
    assert!(runner.safety().is_ok(), "beyond-bound skew went unsafe");
    let m = runner.metrics();
    assert_eq!(
        m.lease_reads, 0,
        "a lease validated from clocks beyond the modeled bound"
    );
    assert!(m.readindex_reads > 0, "no read ever completed");
    assert!(runner.completed() >= 60);
}

#[test]
fn classic_raft_sweep_stays_green() {
    for skew_ms in [0u64, 12, 25] {
        let cfg: Configuration = (0..3).map(NodeId).collect();
        let root = SimRng::seed_from_u64(2000 + skew_ms);
        let nodes = (0..3).map(|i| {
            let mut t = Timing::lan();
            scale_lease(&mut t);
            if i == 0 {
                t.election_min = SimDuration::from_millis(250);
                t.election_max = SimDuration::from_millis(300);
            }
            RaftNode::new(NodeId(i), cfg.clone(), t, root.split_indexed("n", i))
        });
        let workload = Workload {
            proposers: vec![NodeId(1)],
            payload_bytes: 64,
            target_commits: Some(40),
            start_at: SimTime::from_secs(3),
            read_ratio: 0.7,
            read_consistency: Consistency::Linearizable,
            final_read: true,
            client_timeout: SimDuration::from_secs(2),
            register_sessions: false,
        };
        let mut runner = Runner::new(
            nodes,
            Network::reliable_lan((0..3).map(NodeId)),
            workload,
            Vec::new(),
            RunnerConfig {
                seed: 2000 + skew_ms,
                ack_scope: LogScope::Global,
                measure_from: SimTime::from_secs(3),
                clock_skew: SimDuration::from_millis(skew_ms),
                disk_fsync_latency: SimDuration::ZERO,
                unbatched_persists: false,
                persist_stalls: None,
            },
            SafetyChecker::new(),
        );
        runner.run_until(SimTime::from_secs(120));
        assert!(
            runner.safety().is_ok(),
            "classic raft lin checker violated at {skew_ms}ms skew"
        );
        assert!(
            runner.metrics().lease_reads + runner.metrics().readindex_reads > 0,
            "no linearizable read completed at {skew_ms}ms"
        );
        assert!(runner.completed() >= 40);
    }
}

#[test]
fn craft_sweep_stays_green() {
    // C-Raft through the scenario path: the runner injects the modeled
    // bound itself, and the sweep varies that bound (leases at both the
    // local level and the recursive global level).
    for (skew_ms, seed) in [(0u64, 31u64), (25, 32), (50, 33)] {
        let mut timing = Timing::lan();
        timing.max_clock_skew = SimDuration::from_millis(skew_ms);
        let s = Scenario {
            seed,
            sites: 6,
            network: NetworkKind::Regions { regions: 2 },
            loss: 0.0,
            timing,
            proposers: vec![NodeId(1), NodeId(4)],
            payload_bytes: 64,
            target_commits: Some(30),
            duration: SimDuration::from_secs(120),
            warmup: SimDuration::from_secs(5),
            faults: Vec::new(),
            leader_bias: None,
            reads: Some(ReadMix::half_linearizable()),
            unbatched_persists: false,
        };
        let (report, _) = run_craft(&s, &CRaftScenario::paper(2));
        assert!(report.safety_ok, "c-raft checker violated at {skew_ms}ms");
        assert!(report.lin_reads_checked > 0);
    }
}

#[test]
fn leader_crash_interleaves_lease_and_readindex_reads() {
    // A read-heavy mix with the biased leader crashing mid-run: reads are
    // lease-served before the crash, fall back to ReadIndex inside the new
    // leader's enable barrier, then go local again — all linearizable.
    let mut s = Scenario::fig3_base(91, 0.0);
    s.target_commits = Some(2000);
    s.duration = SimDuration::from_secs(120);
    s.leader_bias = Some(NodeId(0));
    s.proposers = vec![NodeId(4)];
    s.reads = Some(ReadMix {
        ratio: 0.8,
        consistency: Consistency::Linearizable,
        final_read: true,
    });
    // Crash shortly after clients start (warmup is 3 s) so the leadership
    // change lands mid-workload, not after it drained.
    s.faults = vec![
        (SimTime::from_millis(3400), FaultAction::Crash(NodeId(0))),
        (SimTime::from_secs(10), FaultAction::Recover(NodeId(0))),
    ];
    let (report, metrics) = run_fast_raft(&s);
    assert!(report.safety_ok, "lin violated across the leadership change");
    assert!(report.leaderships >= 2, "the crash never forced a new leader");
    assert!(
        metrics.lease_reads > 0,
        "no lease read before/after the crash"
    );
    assert!(
        metrics.readindex_reads > 0,
        "no ReadIndex fallback around the leadership change"
    );
    assert_eq!(report.completed, 2001);

    // Classic raft, same shape.
    let mut s2 = s.clone();
    s2.seed = 92;
    let (report2, metrics2) = run_classic_raft(&s2);
    assert!(report2.safety_ok);
    assert!(report2.leaderships >= 2);
    assert!(metrics2.lease_reads > 0);
    assert!(metrics2.readindex_reads > 0);
}
