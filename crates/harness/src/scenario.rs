//! Concrete scenario builders for the three protocols.
//!
//! A [`Scenario`] describes a deployment (sites, network, workload, faults);
//! `run_classic_raft`, `run_fast_raft`, and `run_craft` instantiate the
//! respective protocol over it and return a [`RunReport`] plus the raw
//! [`Metrics`] for series-level analysis (Fig. 4 plots individual
//! proposals).

use consensus_core::{CRaftConfig, CRaftNode, FastRaftNode};
use des::{SimDuration, SimRng, SimTime};
use raft::{RaftNode, Timing};
use simnet::{BernoulliLoss, Network, RegionLatency, Topology, UniformLatency};
use wire::{ClusterId, Configuration, Consistency, LogScope, NodeId};

/// Client read mix layered onto a scenario's closed-loop sessions.
#[derive(Clone, Copy, Debug)]
pub struct ReadMix {
    /// Fraction of client operations that are reads (drawn per operation).
    pub ratio: f64,
    /// Consistency level of the mixed-in reads.
    pub consistency: Consistency,
    /// Each client issues one final `Linearizable` read after the target
    /// is reached (read-your-writes handshake).
    pub final_read: bool,
}

impl ReadMix {
    /// A 50/50 linearizable read-write mix with the final read enabled.
    pub fn half_linearizable() -> Self {
        ReadMix {
            ratio: 0.5,
            consistency: Consistency::Linearizable,
            final_read: true,
        }
    }
}

use crate::{FaultAction, Metrics, Runner, RunnerConfig, RunReport, SafetyChecker, Workload};

/// The network environment of a scenario.
#[derive(Clone, Debug)]
pub enum NetworkKind {
    /// One region, sub-millisecond RTT (the paper's Fig. 3/4 setting).
    SingleRegion,
    /// `regions` regions with AWS-like inter-region latency, sites assigned
    /// row-major (the paper's Fig. 5 setting).
    Regions {
        /// Number of regions; sites are split evenly across them.
        regions: u64,
    },
    /// A fixed one-way delay on every link — used by the message-round
    /// experiment (Figs. 1–2) to count hops as latency / delay.
    ConstantDelay {
        /// One-way delay in microseconds.
        one_way_us: u64,
    },
    /// One region with **bursty** (Gilbert–Elliott) loss instead of i.i.d.
    /// drops; the scenario's `loss` field is the stationary loss rate.
    SingleRegionBursty {
        /// Mean burst length in messages (`1 / p_bg`).
        mean_burst: f64,
    },
}

/// A complete experiment description.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// RNG seed (drives every random choice in the run).
    pub seed: u64,
    /// Number of sites.
    pub sites: u64,
    /// Network environment.
    pub network: NetworkKind,
    /// Bernoulli message-loss probability (the paper's `tc`-forced loss).
    pub loss: f64,
    /// Protocol timing.
    pub timing: Timing,
    /// Proposing sites (closed loop).
    pub proposers: Vec<NodeId>,
    /// Proposal payload size in bytes.
    pub payload_bytes: usize,
    /// Stop after this many completed proposals (None = run to `duration`).
    pub target_commits: Option<u64>,
    /// Total simulated duration.
    pub duration: SimDuration,
    /// Warmup excluded from measurements (elections settle).
    pub warmup: SimDuration,
    /// Scheduled faults.
    pub faults: Vec<(SimTime, FaultAction)>,
    /// Bias this node to win the first election (its election timeout is
    /// shortened). Used by experiments that need a known leader.
    pub leader_bias: Option<NodeId>,
    /// Client read mix (None = the all-write workload every experiment
    /// used before the session API).
    pub reads: Option<ReadMix>,
    /// Apply each persist command as its own fsync boundary instead of
    /// group-committing a step's commands into one batch — the honest twin
    /// for write-path measurements (same durable contents, N fsyncs where
    /// group commit pays one). Scenarios leave this off.
    pub unbatched_persists: bool,
}

impl Scenario {
    /// The paper's single-cluster base scenario: 5 sites, one region,
    /// one random proposer, 100 measured commits.
    pub fn fig3_base(seed: u64, loss: f64) -> Self {
        let mut rng = SimRng::seed_from_u64(seed ^ 0xF163);
        let proposer = NodeId(rng.gen_range(0..5u64));
        Scenario {
            seed,
            sites: 5,
            network: NetworkKind::SingleRegion,
            loss,
            timing: Timing::lan(),
            proposers: vec![proposer],
            payload_bytes: 64,
            target_commits: Some(100),
            duration: SimDuration::from_secs(300),
            warmup: SimDuration::from_secs(3),
            faults: Vec::new(),
            leader_bias: None,
            reads: None,
            unbatched_persists: false,
        }
    }

    /// The timing for one node, honoring [`Scenario::leader_bias`].
    fn timing_for(&self, id: NodeId) -> Timing {
        let mut t = self.timing;
        if self.leader_bias == Some(id) {
            // Race the first election: well under everyone's election_min,
            // but still >= 2 heartbeats (Timing::validate) and long enough
            // for vote round trips to finish before the timer re-fires.
            // The window also stays >= lease + skew (Timing::validate):
            // the lease itself must not shrink, because grant admission
            // reconstructs a grant's stamp as `until - lease_duration` and
            // therefore needs the duration uniform across the cluster.
            let floor = t.lease_duration + t.max_clock_skew;
            let lo = (t.election_min / 5).max(t.heartbeat * 2).max(floor);
            let hi = (t.election_min / 4).max(lo + t.heartbeat);
            t.election_min = lo;
            t.election_max = hi;
        }
        t
    }

    fn build_network(&self) -> Network {
        let nodes: Vec<NodeId> = (0..self.sites).map(NodeId).collect();
        match self.network {
            NetworkKind::SingleRegion => {
                let topo = Topology::single_region("local", nodes);
                Network::new(
                    topo,
                    Box::new(UniformLatency::new(
                        SimDuration::from_micros(100),
                        SimDuration::from_micros(500),
                    )),
                    Box::new(BernoulliLoss::new(self.loss)),
                )
            }
            NetworkKind::Regions { regions } => {
                let mut topo = Topology::new();
                let per = self.sites / regions;
                assert!(per > 0, "more regions than sites");
                let region_ids: Vec<_> = (0..regions)
                    .map(|r| topo.add_region(format!("region-{r}")))
                    .collect();
                for n in 0..self.sites {
                    let r = (n / per).min(regions - 1) as usize;
                    topo.place(NodeId(n), region_ids[r]);
                }
                let latency = RegionLatency::aws_global(topo.clone());
                Network::new(
                    topo,
                    Box::new(latency),
                    Box::new(BernoulliLoss::new(self.loss)),
                )
            }
            NetworkKind::ConstantDelay { one_way_us } => {
                let topo = Topology::single_region("constant", nodes);
                Network::new(
                    topo,
                    Box::new(simnet::ConstantLatency(SimDuration::from_micros(one_way_us))),
                    Box::new(BernoulliLoss::new(self.loss)),
                )
            }
            NetworkKind::SingleRegionBursty { mean_burst } => {
                let topo = Topology::single_region("bursty", nodes);
                // Stationary loss = pi_bad * p_bad with p_bad = 1:
                // pi_bad = p_gb / (p_gb + p_bg); choose p_bg = 1/mean_burst.
                let p_bg = 1.0 / mean_burst.max(1.0);
                let p_gb = if self.loss >= 1.0 {
                    1.0
                } else {
                    p_bg * self.loss / (1.0 - self.loss)
                };
                Network::new(
                    topo,
                    Box::new(UniformLatency::new(
                        SimDuration::from_micros(100),
                        SimDuration::from_micros(500),
                    )),
                    Box::new(simnet::GilbertElliott::new(p_gb.min(1.0), p_bg, 0.0, 1.0)),
                )
            }
        }
    }

    fn workload(&self) -> Workload {
        let mut w = Workload::writes_only(
            self.proposers.clone(),
            self.payload_bytes,
            self.target_commits,
            SimTime::ZERO + self.warmup,
        );
        if let Some(mix) = &self.reads {
            w.read_ratio = mix.ratio;
            w.read_consistency = mix.consistency;
            w.final_read = mix.final_read;
        }
        w
    }

    fn runner_cfg(&self, ack_scope: LogScope) -> RunnerConfig {
        RunnerConfig {
            seed: self.seed,
            ack_scope,
            measure_from: SimTime::ZERO + self.warmup,
            // Scenarios run at the full skew the timing claims to tolerate:
            // leases must stay linearizable under their own worst case.
            clock_skew: self.timing.max_clock_skew,
            disk_fsync_latency: self.timing.disk_fsync_latency,
            unbatched_persists: self.unbatched_persists,
            persist_stalls: None,
        }
    }

    fn measured_seconds(&self, end: SimTime) -> f64 {
        end.saturating_since(SimTime::ZERO + self.warmup).as_secs_f64()
    }
}

/// Runs classic Raft over the scenario.
pub fn run_classic_raft(s: &Scenario) -> (RunReport, Metrics) {
    let cfg: Configuration = (0..s.sites).map(NodeId).collect();
    let root = SimRng::seed_from_u64(s.seed);
    let timing = s.timing;
    let nodes = (0..s.sites).map(|i| {
        RaftNode::new(
            NodeId(i),
            cfg.clone(),
            s.timing_for(NodeId(i)),
            root.split_indexed("raft-node", i),
        )
    });
    let mut runner = Runner::new(
        nodes,
        s.build_network(),
        s.workload(),
        s.faults.clone(),
        s.runner_cfg(LogScope::Global),
        SafetyChecker::new(),
    );
    let cfg2 = cfg.clone();
    let recover_rng = root.split("recover");
    runner.set_recovery(move |id, stable| {
        RaftNode::recover(
            id,
            stable,
            cfg2.clone(),
            timing,
            recover_rng.split_indexed("r", id.as_u64()),
        )
    });
    finish(runner, s, "raft")
}

/// Runs Fast Raft over the scenario.
pub fn run_fast_raft(s: &Scenario) -> (RunReport, Metrics) {
    let cfg: Configuration = (0..s.sites).map(NodeId).collect();
    let root = SimRng::seed_from_u64(s.seed);
    let timing = s.timing;
    let nodes = (0..s.sites).map(|i| {
        FastRaftNode::new(
            NodeId(i),
            cfg.clone(),
            s.timing_for(NodeId(i)),
            root.split_indexed("fast-node", i),
        )
    });
    let mut runner = Runner::new(
        nodes,
        s.build_network(),
        s.workload(),
        s.faults.clone(),
        s.runner_cfg(LogScope::Global),
        SafetyChecker::new(),
    );
    let cfg2 = cfg.clone();
    let recover_rng = root.split("recover");
    runner.set_recovery(move |id, stable| {
        FastRaftNode::recover(
            id,
            stable,
            cfg2.clone(),
            timing,
            recover_rng.split_indexed("r", id.as_u64()),
        )
    });
    finish(runner, s, "fast-raft")
}

/// C-Raft-specific parameters on top of a [`Scenario`].
#[derive(Clone, Debug)]
pub struct CRaftScenario {
    /// Number of clusters (sites are split evenly, row-major; the scenario's
    /// `NetworkKind::Regions` should use the same count).
    pub clusters: u64,
    /// Local commits per global batch.
    pub batch_size: usize,
    /// Byte budget per global batch (0 disables the byte cap; see
    /// [`consensus_core::CRaftConfig::max_batch_bytes`]).
    pub max_batch_bytes: usize,
    /// Snapshot threshold for the global log (0 disables compaction; see
    /// [`consensus_core::CRaftConfig::global_snapshot_threshold`]).
    pub global_snapshot_threshold: u64,
    /// Inter-cluster timing.
    pub global_timing: Timing,
    /// Global-level proposal mode (see [`consensus_core::ProposalMode`]).
    pub global_proposal_mode: consensus_core::ProposalMode,
}

impl CRaftScenario {
    /// The paper's Fig. 5 C-Raft parameters.
    pub fn paper(clusters: u64) -> Self {
        CRaftScenario {
            clusters,
            batch_size: 10,
            max_batch_bytes: Timing::wan().max_bytes_per_append,
            global_snapshot_threshold: Timing::wan().snapshot_threshold,
            global_timing: Timing::wan(),
            global_proposal_mode: consensus_core::ProposalMode::LeaderForward,
        }
    }
}

/// Runs C-Raft over the scenario.
///
/// # Panics
///
/// Panics if sites are not evenly divisible across clusters.
pub fn run_craft(s: &Scenario, c: &CRaftScenario) -> (RunReport, Metrics) {
    assert_eq!(
        s.sites % c.clusters,
        0,
        "sites must divide evenly into clusters"
    );
    let per = s.sites / c.clusters;
    let mode = c.global_proposal_mode;
    let (nodes, global_bootstrap) = consensus_core::build_deployment(
        c.clusters,
        per,
        |cluster: ClusterId| CRaftConfig {
            cluster,
            local_timing: s.timing,
            global_timing: c.global_timing,
            batch_size: c.batch_size,
            max_batch_bytes: c.max_batch_bytes,
            batch_flush_ms: 1000,
            global_snapshot_threshold: c.global_snapshot_threshold,
            global_proposal_mode: mode,
        },
        s.seed,
    );
    let mut runner = Runner::new(
        nodes,
        s.build_network(),
        s.workload(),
        s.faults.clone(),
        s.runner_cfg(LogScope::Local),
        SafetyChecker::with_domains(move |n| n.as_u64() / per),
    );
    let local_timing = s.timing;
    let global_timing = c.global_timing;
    let batch = c.batch_size;
    let batch_bytes = c.max_batch_bytes;
    let global_snapshot_threshold = c.global_snapshot_threshold;
    let seed = s.seed;
    runner.set_recovery(move |id, stable| {
        let cluster = id.as_u64() / per;
        let members: Configuration = (0..per).map(|i| NodeId(cluster * per + i)).collect();
        CRaftNode::recover(
            id,
            stable,
            members,
            global_bootstrap.clone(),
            CRaftConfig {
                cluster: ClusterId(cluster),
                local_timing,
                global_timing,
                batch_size: batch,
                max_batch_bytes: batch_bytes,
                batch_flush_ms: 1000,
                global_snapshot_threshold,
                global_proposal_mode: mode,
            },
            SimRng::seed_from_u64(seed).split_indexed("craft-recover", id.as_u64()),
        )
    });
    finish(runner, s, "c-raft")
}

fn finish<P: wire::ConsensusProtocol>(
    mut runner: Runner<P>,
    s: &Scenario,
    name: &str,
) -> (RunReport, Metrics) {
    runner.run_until(SimTime::ZERO + s.duration);
    let report = RunReport::assemble(
        name,
        s.seed,
        runner.now().as_secs_f64(),
        s.measured_seconds(runner.now()),
        runner.metrics(),
        runner.net_stats(),
        runner.safety(),
        runner.completed(),
    );
    runner.safety().assert_ok();
    (report, runner.metrics().clone())
}
