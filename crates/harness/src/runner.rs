//! The time-driven simulation runner.
//!
//! Hosts a set of protocol nodes on the deterministic event simulator:
//! messages travel through the simulated network ([`simnet::Network`]),
//! timers are armed/cancelled per the sans-IO contract, persistence commands
//! apply to the simulated disk **before** messages are released
//! (write-ahead), and a fault injector executes scheduled silent leaves,
//! crashes, recoveries, and partitions.
//!
//! The workload is a set of **closed-loop session clients** (one per
//! proposer site, as in the paper's evaluation §VI, extended with the
//! client contract): each client holds a session, issues typed
//! [`wire::ClientRequest`]s — writes, or reads at a configurable mix and
//! consistency level — waits for the typed [`wire::ClientOutcome`], retries
//! the same `(session, seq)` on `Redirect`/`Retry` outcomes or after a
//! timeout (exactly-once writes make this safe), and only then moves to the
//! next operation. Every `Linearizable` read is checked online by the
//! [`SafetyChecker`]: its returned commit floor must not precede any
//! previously completed write or read.

use std::collections::{BTreeMap, HashMap, HashSet};

use bytes::Bytes;
use des::{EventId, SimDuration, SimRng, SimTime, Simulation};
use simnet::{Network, Verdict};
use storage::{PersistBatch, SimDisk, StableState};
use wire::{
    Actions, ClientOp, ClientOutcome, ClientRequest, Consistency, ConsensusProtocol, LogScope,
    Message, NodeId, Observation, Payload, SessionId, TimerKind,
};

use crate::{Metrics, SafetyChecker};

/// A scheduled fault.
#[derive(Clone, Debug)]
pub enum FaultAction {
    /// The site disappears without announcement (§IV-D "silent leave").
    SilentLeave(NodeId),
    /// The site crashes; stable storage survives.
    Crash(NodeId),
    /// A crashed site restarts from stable storage.
    Recover(NodeId),
    /// The network splits into two sides.
    Partition {
        /// One side of the split.
        side_a: Vec<NodeId>,
        /// The other side.
        side_b: Vec<NodeId>,
    },
    /// All partitions heal.
    Heal,
}

/// Events flowing through the simulator.
#[derive(Debug)]
enum SimEvent<M> {
    Deliver { from: NodeId, to: NodeId, msg: M },
    Timer { node: NodeId, kind: TimerKind },
    Propose { node: NodeId },
    /// Client-level retry: resubmit the outstanding `(session, seq)` at
    /// `node` if `seq` is still the one in flight.
    ClientRetry { node: NodeId, seq: u64 },
    /// Pipelined apply: drain `node`'s apply queue as its own stage, after
    /// the step that advanced the commit index has released its effects.
    ApplyDrain { node: NodeId },
    Fault(FaultAction),
}

/// Workload configuration: closed-loop session clients (each waits for its
/// previous operation's typed outcome before issuing the next, §VI).
#[derive(Clone, Debug)]
pub struct Workload {
    /// The proposing sites (one client session per site).
    pub proposers: Vec<NodeId>,
    /// Payload size per write.
    pub payload_bytes: usize,
    /// Stop after this many completed client operations in total (None =
    /// run until the deadline).
    pub target_commits: Option<u64>,
    /// When clients start.
    pub start_at: SimTime,
    /// Fraction of operations that are reads (0.0 = the pre-session
    /// all-write workload; drawn per operation).
    pub read_ratio: f64,
    /// Consistency level of the mixed-in reads.
    pub read_consistency: Consistency,
    /// After the target is reached, each client issues one final
    /// `Linearizable` read and the run ends when they complete — the
    /// "read your writes back" handshake the examples demonstrate.
    pub final_read: bool,
    /// Client-side retry timeout: an unanswered `(session, seq)` is
    /// resubmitted after this long (safe for writes by session dedup).
    pub client_timeout: SimDuration,
    /// Each client's first operation is an explicit [`ClientOp::Register`]
    /// (consuming seq 1) before any write or read. Combined with a
    /// partition fault covering the workload start, this produces the
    /// thundering-herd reconnect shape: every client's registration and
    /// first op retry together the moment the partition heals. `false`
    /// keeps the pre-session workloads byte-identical.
    pub register_sessions: bool,
}

impl Workload {
    /// An all-write workload with the default 2 s client retry timeout.
    pub fn writes_only(
        proposers: Vec<NodeId>,
        payload_bytes: usize,
        target_commits: Option<u64>,
        start_at: SimTime,
    ) -> Self {
        Workload {
            proposers,
            payload_bytes,
            target_commits,
            start_at,
            read_ratio: 0.0,
            read_consistency: Consistency::Linearizable,
            final_read: false,
            client_timeout: SimDuration::from_secs(2),
            register_sessions: false,
        }
    }
}

/// Runner-level configuration.
#[derive(Clone, Debug)]
pub struct RunnerConfig {
    /// Seed for network and workload randomness.
    pub seed: u64,
    /// Which log scope acknowledges a client write: `Global` for
    /// classic/Fast Raft, `Local` for C-Raft (clients are acknowledged at
    /// local commit, §V-A).
    pub ack_scope: LogScope,
    /// Samples completing before this instant are excluded from stats.
    pub measure_from: SimTime,
    /// Maximum injected clock offset across sites. Every node's local clock
    /// reads `sim_now + offset` with offsets spread evenly over
    /// `[0, clock_skew]` by node rank — the adversarial extreme where one
    /// clock runs at the bound ahead of another. Leases stay safe as long
    /// as this does not exceed the `Timing::max_clock_skew` the protocol
    /// was configured to tolerate; the skew-sweep tests push it past that
    /// bound on purpose.
    pub clock_skew: SimDuration,
    /// Simulated cost of one fsync boundary. A protocol step that persisted
    /// anything holds its outgoing messages back by this much (write-ahead:
    /// sends release only once the persist is durable) — once per step under
    /// group commit, once per command in the unbatched twin. `ZERO` keeps
    /// every trace byte-identical to the latency-free model.
    pub disk_fsync_latency: SimDuration,
    /// Apply each persist command as its own fsync boundary instead of
    /// group-committing a step's commands into one batch. The honest twin
    /// for write-path measurements: same durable contents, N boundaries
    /// (and N × `disk_fsync_latency`) where group commit pays one.
    pub unbatched_persists: bool,
    /// Seed-driven slow-disk spikes layered on top of `disk_fsync_latency`:
    /// each fsync boundary may stall for an extra sampled duration, holding
    /// that step's outgoing messages back accordingly (write-ahead). `None`
    /// — the default — draws no randomness and keeps traces byte-identical.
    pub persist_stalls: Option<simnet::PersistStalls>,
}

struct Slot<P> {
    node: P,
    /// Armed timer per [`TimerKind`], dense-indexed by discriminant. A
    /// fixed array instead of a `HashMap<TimerKind, EventId>`: timer
    /// set/cancel is on the per-step hot path (every heartbeat re-arm paid
    /// an allocation + hash), and eleven slots fit in a cache line.
    timers: [Option<EventId>; TimerKind::COUNT],
    up: bool,
}

/// One client operation in flight at its gateway.
#[derive(Clone, Debug)]
struct OutstandingOp {
    session: SessionId,
    seq: u64,
    op: ClientOp,
    /// Set for the end-of-run linearizable read.
    is_final: bool,
}

/// Factory rebuilding a node from persisted state after a crash.
type RecoveryFn<P> = Box<dyn Fn(NodeId, &StableState) -> P>;

/// A running simulation of one protocol deployment.
pub struct Runner<P: ConsensusProtocol> {
    sim: Simulation<SimEvent<P::Message>>,
    net: Network,
    disk: SimDisk,
    slots: BTreeMap<NodeId, Slot<P>>,
    /// Per-node clock offset (see [`RunnerConfig::clock_skew`]); a node's
    /// local clock is stamped `sim_now + offset` before every handler.
    clock_offsets: BTreeMap<NodeId, SimDuration>,
    metrics: Metrics,
    safety: SafetyChecker,
    workload: Workload,
    cfg: RunnerConfig,
    recover_fn: Option<RecoveryFn<P>>,
    net_rng: SimRng,
    payload_rng: SimRng,
    /// Per-operation read/write coin flips (untouched when `read_ratio` is
    /// zero, so all-write runs are bit-identical to the pre-read harness).
    op_rng: SimRng,
    /// Outstanding closed-loop operation per client.
    outstanding: HashMap<NodeId, OutstandingOp>,
    /// Next session seq per client (survives node crashes — the client
    /// outlives its gateway).
    next_seq: BTreeMap<NodeId, u64>,
    /// Clients that already issued their final linearizable read.
    final_issued: HashSet<NodeId>,
    /// Nodes with an [`SimEvent::ApplyDrain`] already in flight (pipelined
    /// apply schedules at most one drain per node at a time).
    drains_scheduled: HashSet<NodeId>,
    /// Dedicated stream for [`RunnerConfig::persist_stalls`] (drawn from
    /// only when stalls are configured, so stall-free runs are unchanged).
    stall_rng: SimRng,
    /// Scratch buffer for duplicate-copy delays from
    /// [`Network::judge_chaos`]; reused across sends.
    chaos_extras: Vec<SimDuration>,
    final_done: u64,
    completed: u64,
}

impl<P: ConsensusProtocol> Runner<P> {
    /// Builds a runner over `nodes`, bootstrapping each (initial timers
    /// armed at t = 0) and scheduling the workload and `faults`.
    pub fn new(
        nodes: impl IntoIterator<Item = P>,
        net: Network,
        workload: Workload,
        faults: Vec<(SimTime, FaultAction)>,
        cfg: RunnerConfig,
        safety: SafetyChecker,
    ) -> Self {
        let mut sim = Simulation::new(cfg.seed);
        let net_rng = sim.rng().split("net");
        let payload_rng = sim.rng().split("payload");
        let op_rng = sim.rng().split("ops");
        let stall_rng = sim.rng().split("stalls");
        let mut runner = Runner {
            sim,
            net,
            disk: SimDisk::new(),
            slots: nodes
                .into_iter()
                .map(|n| {
                    (
                        n.id(),
                        Slot {
                            node: n,
                            timers: [None; TimerKind::COUNT],
                            up: true,
                        },
                    )
                })
                .collect(),
            clock_offsets: BTreeMap::new(),
            metrics: Metrics::new(cfg.measure_from),
            safety,
            workload,
            cfg,
            recover_fn: None,
            net_rng,
            payload_rng,
            op_rng,
            outstanding: HashMap::new(),
            next_seq: BTreeMap::new(),
            final_issued: HashSet::new(),
            drains_scheduled: HashSet::new(),
            stall_rng,
            chaos_extras: Vec::new(),
            final_done: 0,
            completed: 0,
        };
        let ids: Vec<NodeId> = runner.slots.keys().copied().collect();
        // Spread node clocks evenly over [0, clock_skew] by rank: the first
        // node reads true simulation time, the last runs the full skew
        // ahead, so the worst pairwise disagreement equals the configured
        // bound exactly.
        let skew_us = runner.cfg.clock_skew.as_micros();
        if skew_us > 0 && ids.len() > 1 {
            let span = (ids.len() - 1) as u64;
            for (rank, id) in ids.iter().enumerate() {
                let offset = SimDuration::from_micros(skew_us * rank as u64 / span);
                runner.clock_offsets.insert(*id, offset);
            }
        }
        for id in ids {
            runner.with_node(id, |n, out| n.bootstrap(out));
        }
        for proposer in runner.workload.proposers.clone() {
            let at = runner.workload.start_at;
            runner
                .sim
                .schedule_at(at, SimEvent::Propose { node: proposer });
        }
        for (at, fault) in faults {
            runner.sim.schedule_at(at, SimEvent::Fault(fault));
        }
        runner
    }

    /// Installs the crash-recovery factory used by [`FaultAction::Recover`].
    pub fn set_recovery(&mut self, f: impl Fn(NodeId, &StableState) -> P + 'static) {
        self.recover_fn = Some(Box::new(f));
    }

    /// Runs until `deadline` or until the workload target is reached.
    pub fn run_until(&mut self, deadline: SimTime) {
        while !self.workload_done() {
            let Some(firing) = self.sim.next_event_before(deadline) else {
                break;
            };
            self.dispatch(firing.id, firing.event);
        }
    }

    /// `true` once the configured number of operations completed (plus the
    /// final linearizable reads, when enabled).
    pub fn workload_done(&self) -> bool {
        let Some(target) = self.workload.target_commits else {
            return false;
        };
        if self.completed < target {
            return false;
        }
        !self.workload.final_read || self.final_done >= self.workload.proposers.len() as u64
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The safety checker.
    pub fn safety(&self) -> &SafetyChecker {
        &self.safety
    }

    /// Network statistics.
    pub fn net_stats(&self) -> &simnet::NetStats {
        self.net.stats()
    }

    /// Completed workload operations.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Read access to a node, if present and up.
    pub fn node(&self, id: NodeId) -> Option<&P> {
        self.slots.get(&id).filter(|s| s.up).map(|s| &s.node)
    }

    /// The disk farm (for recovery assertions).
    pub fn disk(&self) -> &SimDisk {
        &self.disk
    }

    /// Client operations currently in flight (no typed outcome yet).
    /// Liveness checks assert this reaches zero once the run quiesces.
    pub fn outstanding_ops(&self) -> usize {
        self.outstanding.len()
    }

    // ------------------------------------------------------------------

    fn dispatch(&mut self, firing_id: EventId, event: SimEvent<P::Message>) {
        match event {
            SimEvent::Deliver { from, to, msg } => {
                self.with_node(to, |n, out| n.on_message(from, msg, out));
            }
            SimEvent::Timer { node, kind } => {
                // Only fire if this is still the armed instance.
                let armed = self
                    .slots
                    .get(&node)
                    .and_then(|s| s.timers[kind.index()]);
                if armed == Some(firing_id) {
                    if let Some(slot) = self.slots.get_mut(&node) {
                        slot.timers[kind.index()] = None;
                    }
                    self.with_node(node, |n, out| n.on_timer(kind, out));
                }
            }
            SimEvent::Propose { node } => self.issue_op(node),
            SimEvent::ClientRetry { node, seq } => self.client_retry(node, seq),
            SimEvent::ApplyDrain { node } => {
                self.drains_scheduled.remove(&node);
                self.with_node(node, |n, out| n.drain_applies(out));
            }
            SimEvent::Fault(fault) => self.apply_fault(fault),
        }
    }

    fn with_node(&mut self, id: NodeId, f: impl FnOnce(&mut P, &mut Actions<P::Message>)) {
        let Some(slot) = self.slots.get_mut(&id) else {
            return;
        };
        if !slot.up {
            return;
        }
        // Stamp the node's local clock before the handler: simulation time
        // plus this node's skew offset. Nodes never read a shared clock —
        // this is the only place "now" enters the sans-IO stack.
        let now = self.sim.now();
        let local = self
            .clock_offsets
            .get(&id)
            .map_or(now, |&o| now.saturating_add(o));
        slot.node.set_local_clock(local);
        let mut out = Actions::new();
        f(&mut slot.node, &mut out);
        // Pipelined apply: the handler may have advanced the commit index
        // past the applied index. Drain as a separate zero-delay stage (one
        // in-flight event per node) so the apply lands after this step's
        // effects are released. Inline mode never leaves a queue behind, so
        // no event is ever scheduled and traces stay byte-identical.
        let wants_drain = slot.node.pending_applies() > 0;
        self.process_actions(id, out);
        if wants_drain && self.drains_scheduled.insert(id) {
            self.sim
                .schedule_after(SimDuration::ZERO, SimEvent::ApplyDrain { node: id });
        }
    }

    fn process_actions(&mut self, from: NodeId, mut out: Actions<P::Message>) {
        // Write-ahead: persistence lands before any message is released.
        // Group commit: every command a step emitted shares one fsync
        // boundary; the unbatched twin pays one boundary per command.
        let persist_cmds = out.persists.len() as u64;
        let fsync_boundaries = if persist_cmds == 0 {
            0
        } else if self.cfg.unbatched_persists {
            self.disk.apply(from, out.persists.iter());
            persist_cmds
        } else {
            let batch = PersistBatch::from_cmds(std::mem::take(&mut out.persists));
            self.disk.apply_batch(from, &batch);
            1
        };
        if fsync_boundaries > 0 {
            self.metrics.note_persists(fsync_boundaries, persist_cmds);
            // Track peak per-site log residency at every write boundary so
            // compaction wins (and their absence) are visible in reports.
            if let Some(stable) = self.disk.read(from) {
                let retained = stable.global.log.len() + stable.local.log.len();
                self.metrics.note_residency(retained as u64);
            }
        }
        // A step that persisted holds its outgoing messages until the fsync
        // completes. Timers are local bookkeeping and commit/observation
        // effects are applied state — neither waits on the disk.
        let mut persist_delay = self.cfg.disk_fsync_latency * fsync_boundaries;
        if let Some(stalls) = &self.cfg.persist_stalls {
            for _ in 0..fsync_boundaries {
                persist_delay += stalls.sample(&mut self.stall_rng);
            }
        }

        for cmd in out.timers {
            match cmd {
                wire::TimerCmd::Set { kind, after } => {
                    let id = self
                        .sim
                        .schedule_after(after, SimEvent::Timer { node: from, kind });
                    if let Some(slot) = self.slots.get_mut(&from) {
                        if let Some(old) = slot.timers[kind.index()].replace(id) {
                            self.sim.cancel(old);
                        }
                    } else {
                        self.sim.cancel(id);
                    }
                }
                wire::TimerCmd::Cancel { kind } => {
                    if let Some(slot) = self.slots.get_mut(&from) {
                        if let Some(old) = slot.timers[kind.index()].take() {
                            self.sim.cancel(old);
                        }
                    }
                }
            }
        }

        let mut sent_msgs = 0u64;
        let mut sent_bytes = 0u64;
        for (to, msg) in out.sends {
            let size = msg.wire_size();
            sent_msgs += 1;
            sent_bytes += size as u64;
            self.chaos_extras.clear();
            match self
                .net
                .judge_chaos(from, to, size, &mut self.net_rng, &mut self.chaos_extras)
            {
                Verdict::Deliver { after } => {
                    // Duplicate copies (chaos only) ship first so the
                    // original's `msg` moves without a clone on the
                    // chaos-free path.
                    for i in 0..self.chaos_extras.len() {
                        let extra = self.chaos_extras[i];
                        self.sim.schedule_after(
                            extra + persist_delay,
                            SimEvent::Deliver {
                                from,
                                to,
                                msg: msg.clone(),
                            },
                        );
                    }
                    self.sim
                        .schedule_after(after + persist_delay, SimEvent::Deliver { from, to, msg });
                }
                Verdict::Drop { .. } => {}
            }
        }
        if sent_msgs > 0 {
            self.metrics.record_dispatch(sent_msgs, sent_bytes);
        }

        let now = self.sim.now();
        for commit in out.commits {
            self.safety
                .record(from, commit.scope, commit.index, commit.entry.id);
            if commit.scope == LogScope::Global {
                let items = match &commit.entry.payload {
                    Payload::Data(_) | Payload::Write { .. } => 1,
                    Payload::Batch(b) => b.len() as u64,
                    _ => 0,
                };
                if items > 0 {
                    self.metrics.global_commit(commit.index, items, now);
                }
            }
        }

        let mut responses: Vec<(SessionId, u64, ClientOutcome)> = Vec::new();
        let trace = harness_trace_enabled();
        for obs in out.observations {
            if trace {
                eprintln!("[{:.3}s] {} {:?}", self.sim.now().as_secs_f64(), from, obs);
            }
            match obs {
                Observation::ClientResponse {
                    session,
                    seq,
                    outcome,
                } => {
                    // Only the response for the client's outstanding op at
                    // its own gateway advances the closed loop.
                    let is_current = self
                        .outstanding
                        .get(&from)
                        .is_some_and(|o| o.session == session && o.seq == seq);
                    if is_current {
                        responses.push((session, seq, outcome));
                    }
                }
                // NOTE: Observation::SessionDuplicate fires at *every*
                // replica applying the duplicate commit; counting it here
                // would inflate the metric by the cluster size. Suppression
                // is counted once, at the gateway, when the client's retry
                // completes with a Duplicate outcome (handle_response).
                Observation::ElectionStarted { .. } => self.metrics.elections += 1,
                Observation::BecameLeader { .. } => self.metrics.leaderships += 1,
                Observation::FastTrackCommit { .. } => self.metrics.fast_commits += 1,
                Observation::ClassicTrackCommit { .. } => self.metrics.classic_commits += 1,
                Observation::MemberSuspected { .. } => self.metrics.member_suspected += 1,
                Observation::ConfigCommitted { .. } => self.metrics.config_commits += 1,
                Observation::HoleRepairTriggered { .. } => self.metrics.hole_repairs += 1,
                Observation::LogCompacted { .. } => self.metrics.compactions += 1,
                Observation::SnapshotInstalled { .. } => self.metrics.snapshot_installs += 1,
                Observation::GlobalViewGap { .. } => self.metrics.global_view_gaps += 1,
                Observation::LeaseRead { .. } => self.metrics.lease_reads += 1,
                Observation::ReadIndexRead { .. } => self.metrics.readindex_reads += 1,
                _ => {}
            }
        }
        for (session, seq, outcome) in responses {
            self.handle_response(from, session, seq, outcome);
        }
    }

    /// Advances a client's closed loop on a typed outcome.
    fn handle_response(
        &mut self,
        node: NodeId,
        session: SessionId,
        seq: u64,
        outcome: ClientOutcome,
    ) {
        let now = self.sim.now();
        let Some(op) = self.outstanding.get(&node).cloned() else {
            return;
        };
        match outcome {
            ClientOutcome::Committed { index } => {
                self.safety.write_completed(self.cfg.ack_scope, index);
                self.metrics.op_completed((session, seq), now, false);
                self.finish_op(node, &op);
            }
            ClientOutcome::Duplicate { first_index } => {
                // The write took effect on an earlier attempt: done, and
                // the retry was suppressed rather than double-applied.
                self.metrics.duplicates_suppressed += 1;
                if !first_index.is_zero() {
                    self.safety.write_completed(self.cfg.ack_scope, first_index);
                }
                self.metrics.op_completed((session, seq), now, false);
                self.finish_op(node, &op);
            }
            ClientOutcome::ReadOk {
                scope,
                commit_floor,
            } => {
                if matches!(op.op, ClientOp::Read(Consistency::Linearizable)) {
                    self.safety
                        .read_completed(session, seq, scope, commit_floor);
                }
                self.metrics.op_completed((session, seq), now, true);
                self.finish_op(node, &op);
            }
            ClientOutcome::Redirect { .. } | ClientOutcome::Retry => {
                // Not done: retry the same (session, seq) after a short
                // backoff — the gateway updated its leader hint from the
                // redirect, so the resubmission routes better. The counter
                // ticks when the resubmission actually fires (client_retry),
                // so each retry counts once.
                let backoff = SimDuration::from_millis(50);
                self.sim
                    .schedule_after(backoff, SimEvent::ClientRetry { node, seq });
            }
            ClientOutcome::Registered { .. } => {
                // Explicit session registration applied (issued as each
                // client's first op under `Workload::register_sessions`).
                self.metrics.op_completed((session, seq), now, false);
                self.finish_op(node, &op);
            }
            ClientOutcome::SessionExpired => {
                // Terminal: the session idled past the TTL and its dedup
                // history is gone — re-sending the same (session, seq)
                // would loop forever. The op was *not* applied by this
                // request; a fuller client would reopen a session and
                // resubmit there. The closed-loop harness counts it
                // completed and moves on (its scenarios run with expiry
                // disabled, so this arm is exercised by unit tests only).
                self.metrics.sessions_expired += 1;
                self.metrics.op_completed((session, seq), now, false);
                self.finish_op(node, &op);
            }
        }
    }

    fn finish_op(&mut self, node: NodeId, op: &OutstandingOp) {
        self.outstanding.remove(&node);
        self.completed += 1;
        if op.is_final {
            self.final_done += 1;
        }
        if !self.workload_done() {
            // Closed loop: issue the next operation immediately.
            self.issue_op(node);
        }
    }

    /// Client-side timeout/backoff firing: resubmit the outstanding op if
    /// `seq` is still the one in flight.
    fn client_retry(&mut self, node: NodeId, seq: u64) {
        let Some(op) = self.outstanding.get(&node).cloned() else {
            return;
        };
        if op.seq != seq || !self.slots.get(&node).is_some_and(|s| s.up) {
            return;
        }
        self.metrics.client_retries += 1;
        self.submit(node, &op);
    }

    /// Issues the next operation of `node`'s closed loop.
    fn issue_op(&mut self, node: NodeId) {
        if self.outstanding.contains_key(&node) {
            return;
        }
        let up = self.slots.get(&node).is_some_and(|s| s.up);
        if !up {
            return;
        }
        let target_reached = self
            .workload
            .target_commits
            .is_some_and(|t| self.completed >= t);
        let op = if target_reached {
            // Final phase: one linearizable read per client, if configured.
            if !self.workload.final_read || !self.final_issued.insert(node) {
                return;
            }
            OutstandingOp {
                session: SessionId::client(node.as_u64()),
                seq: self.bump_seq(node),
                op: ClientOp::Read(Consistency::Linearizable),
                is_final: true,
            }
        } else if self.workload.register_sessions && !self.next_seq.contains_key(&node) {
            // Session-first contract: the client opens its session before
            // any data op. Under a partition this registration is what
            // retries en masse at heal time (thundering herd).
            OutstandingOp {
                session: SessionId::client(node.as_u64()),
                seq: self.bump_seq(node),
                op: ClientOp::Register,
                is_final: false,
            }
        } else {
            let is_read = self.workload.read_ratio > 0.0
                && self.op_rng.chance(self.workload.read_ratio);
            let op = if is_read {
                ClientOp::Read(self.workload.read_consistency)
            } else {
                let mut payload = vec![0u8; self.workload.payload_bytes];
                self.payload_rng.fill_bytes_infallible(&mut payload);
                ClientOp::Write(Bytes::from(payload))
            };
            OutstandingOp {
                session: SessionId::client(node.as_u64()),
                seq: self.bump_seq(node),
                op,
                is_final: false,
            }
        };
        let now = self.sim.now();
        self.metrics.op_started((op.session, op.seq), now);
        if matches!(op.op, ClientOp::Read(Consistency::Linearizable)) {
            self.safety.read_started(op.session, op.seq);
        }
        self.outstanding.insert(node, op.clone());
        self.submit(node, &op);
    }

    fn bump_seq(&mut self, node: NodeId) -> u64 {
        let c = self.next_seq.entry(node).or_insert(0);
        *c += 1;
        *c
    }

    /// Hands the request to the gateway node and arms the client timeout.
    fn submit(&mut self, node: NodeId, op: &OutstandingOp) {
        let req = ClientRequest {
            session: op.session,
            seq: op.seq,
            op: op.op.clone(),
        };
        self.with_node(node, |n, out| n.on_client_request(req, out));
        let timeout = self.workload.client_timeout;
        let seq = op.seq;
        self.sim
            .schedule_after(timeout, SimEvent::ClientRetry { node, seq });
    }

    fn apply_fault(&mut self, fault: FaultAction) {
        match fault {
            FaultAction::SilentLeave(node) | FaultAction::Crash(node) => {
                if let Some(slot) = self.slots.get_mut(&node) {
                    slot.up = false;
                    for armed in &mut slot.timers {
                        if let Some(id) = armed.take() {
                            self.sim.cancel(id);
                        }
                    }
                }
                self.net.set_down(node);
                // The client's op stays outstanding: a recovered gateway
                // gets the same (session, seq) resubmitted — the dedup
                // table makes that exactly-once.
            }
            FaultAction::Recover(node) => {
                let Some(factory) = &self.recover_fn else {
                    return;
                };
                let stable = self.disk.read(node).cloned().unwrap_or_default();
                let fresh = factory(node, &stable);
                if let Some(slot) = self.slots.get_mut(&node) {
                    slot.node = fresh;
                    slot.up = true;
                }
                self.net.set_up(node);
                self.with_node(node, |n, out| n.bootstrap(out));
                // Restart the client loop: resubmit the in-flight op (the
                // gateway's volatile request state died with it), or start
                // fresh if none was outstanding.
                if self.workload.proposers.contains(&node) {
                    let kick = SimDuration::from_millis(100);
                    match self.outstanding.get(&node) {
                        Some(op) => {
                            let seq = op.seq;
                            self.sim
                                .schedule_after(kick, SimEvent::ClientRetry { node, seq });
                        }
                        None => {
                            self.sim.schedule_after(kick, SimEvent::Propose { node });
                        }
                    }
                }
            }
            FaultAction::Partition { side_a, side_b } => {
                self.net.partitions_mut().split(&side_a, &side_b);
            }
            FaultAction::Heal => {
                self.net.partitions_mut().heal_all();
            }
        }
    }
}

/// Cached `HARNESS_TRACE` env check: per-observation tracing to stderr.
fn harness_trace_enabled() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| std::env::var_os("HARNESS_TRACE").is_some())
}

/// Infallible byte filling for [`SimRng`] (extension helper).
trait FillBytes {
    fn fill_bytes_infallible(&mut self, dest: &mut [u8]);
}

impl FillBytes for SimRng {
    fn fill_bytes_infallible(&mut self, dest: &mut [u8]) {
        use rand::RngCore;
        self.fill_bytes(dest);
    }
}
