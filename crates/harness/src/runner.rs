//! The time-driven simulation runner.
//!
//! Hosts a set of protocol nodes on the deterministic event simulator:
//! messages travel through the simulated network ([`simnet::Network`]),
//! timers are armed/cancelled per the sans-IO contract, persistence commands
//! apply to the simulated disk **before** messages are released
//! (write-ahead), closed-loop proposers drive the workload exactly as in the
//! paper's evaluation, and a fault injector executes scheduled silent
//! leaves, crashes, recoveries, and partitions.

use std::collections::{BTreeMap, HashMap};

use bytes::Bytes;
use des::{EventId, SimRng, SimTime, Simulation};
use simnet::{Network, Verdict};
use storage::{SimDisk, StableState};
use wire::{
    Actions, ConsensusProtocol, EntryId, LogScope, Message, NodeId, Observation, Payload,
    TimerKind,
};

use crate::{Metrics, SafetyChecker};

/// A scheduled fault.
#[derive(Clone, Debug)]
pub enum FaultAction {
    /// The site disappears without announcement (§IV-D "silent leave").
    SilentLeave(NodeId),
    /// The site crashes; stable storage survives.
    Crash(NodeId),
    /// A crashed site restarts from stable storage.
    Recover(NodeId),
    /// The network splits into two sides.
    Partition {
        /// One side of the split.
        side_a: Vec<NodeId>,
        /// The other side.
        side_b: Vec<NodeId>,
    },
    /// All partitions heal.
    Heal,
}

/// Events flowing through the simulator.
#[derive(Debug)]
enum SimEvent<M> {
    Deliver { from: NodeId, to: NodeId, msg: M },
    Timer { node: NodeId, kind: TimerKind },
    Propose { node: NodeId },
    Fault(FaultAction),
}

/// Workload configuration: closed-loop proposers (each waits for its
/// previous proposal to commit before issuing the next, §VI).
#[derive(Clone, Debug)]
pub struct Workload {
    /// The proposing sites.
    pub proposers: Vec<NodeId>,
    /// Payload size per proposal.
    pub payload_bytes: usize,
    /// Stop after this many completed proposals in total (None = run until
    /// the deadline).
    pub target_commits: Option<u64>,
    /// When proposers start.
    pub start_at: SimTime,
}

/// Runner-level configuration.
#[derive(Clone, Debug)]
pub struct RunnerConfig {
    /// Seed for network and workload randomness.
    pub seed: u64,
    /// Which `ProposalCommitted` scope completes a workload item: `Global`
    /// for classic/Fast Raft, `Local` for C-Raft (clients are acknowledged
    /// at local commit, §V-A).
    pub ack_scope: LogScope,
    /// Samples completing before this instant are excluded from stats.
    pub measure_from: SimTime,
}

struct Slot<P> {
    node: P,
    timers: HashMap<TimerKind, EventId>,
    up: bool,
}

/// Factory rebuilding a node from persisted state after a crash.
type RecoveryFn<P> = Box<dyn Fn(NodeId, &StableState) -> P>;

/// A running simulation of one protocol deployment.
pub struct Runner<P: ConsensusProtocol> {
    sim: Simulation<SimEvent<P::Message>>,
    net: Network,
    disk: SimDisk,
    slots: BTreeMap<NodeId, Slot<P>>,
    metrics: Metrics,
    safety: SafetyChecker,
    workload: Workload,
    cfg: RunnerConfig,
    recover_fn: Option<RecoveryFn<P>>,
    net_rng: SimRng,
    payload_rng: SimRng,
    /// Outstanding closed-loop proposal per proposer.
    outstanding: HashMap<NodeId, EntryId>,
    completed: u64,
}

impl<P: ConsensusProtocol> Runner<P> {
    /// Builds a runner over `nodes`, bootstrapping each (initial timers
    /// armed at t = 0) and scheduling the workload and `faults`.
    pub fn new(
        nodes: impl IntoIterator<Item = P>,
        net: Network,
        workload: Workload,
        faults: Vec<(SimTime, FaultAction)>,
        cfg: RunnerConfig,
        safety: SafetyChecker,
    ) -> Self {
        let mut sim = Simulation::new(cfg.seed);
        let net_rng = sim.rng().split("net");
        let payload_rng = sim.rng().split("payload");
        let mut runner = Runner {
            sim,
            net,
            disk: SimDisk::new(),
            slots: nodes
                .into_iter()
                .map(|n| {
                    (
                        n.id(),
                        Slot {
                            node: n,
                            timers: HashMap::new(),
                            up: true,
                        },
                    )
                })
                .collect(),
            metrics: Metrics::new(cfg.measure_from),
            safety,
            workload,
            cfg,
            recover_fn: None,
            net_rng,
            payload_rng,
            outstanding: HashMap::new(),
            completed: 0,
        };
        let ids: Vec<NodeId> = runner.slots.keys().copied().collect();
        for id in ids {
            runner.with_node(id, |n, out| n.bootstrap(out));
        }
        for proposer in runner.workload.proposers.clone() {
            let at = runner.workload.start_at;
            runner
                .sim
                .schedule_at(at, SimEvent::Propose { node: proposer });
        }
        for (at, fault) in faults {
            runner.sim.schedule_at(at, SimEvent::Fault(fault));
        }
        runner
    }

    /// Installs the crash-recovery factory used by [`FaultAction::Recover`].
    pub fn set_recovery(&mut self, f: impl Fn(NodeId, &StableState) -> P + 'static) {
        self.recover_fn = Some(Box::new(f));
    }

    /// Runs until `deadline` or until the workload target is reached.
    pub fn run_until(&mut self, deadline: SimTime) {
        while !self.workload_done() {
            let Some(firing) = self.sim.next_event_before(deadline) else {
                break;
            };
            self.dispatch(firing.id, firing.event);
        }
    }

    /// `true` once the configured number of proposals completed.
    pub fn workload_done(&self) -> bool {
        self.workload
            .target_commits
            .is_some_and(|t| self.completed >= t)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The safety checker.
    pub fn safety(&self) -> &SafetyChecker {
        &self.safety
    }

    /// Network statistics.
    pub fn net_stats(&self) -> &simnet::NetStats {
        self.net.stats()
    }

    /// Completed workload proposals.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Read access to a node, if present and up.
    pub fn node(&self, id: NodeId) -> Option<&P> {
        self.slots.get(&id).filter(|s| s.up).map(|s| &s.node)
    }

    /// The disk farm (for recovery assertions).
    pub fn disk(&self) -> &SimDisk {
        &self.disk
    }

    // ------------------------------------------------------------------

    fn dispatch(&mut self, firing_id: EventId, event: SimEvent<P::Message>) {
        match event {
            SimEvent::Deliver { from, to, msg } => {
                self.with_node(to, |n, out| n.on_message(from, msg, out));
            }
            SimEvent::Timer { node, kind } => {
                // Only fire if this is still the armed instance.
                let armed = self
                    .slots
                    .get(&node)
                    .and_then(|s| s.timers.get(&kind))
                    .copied();
                if armed == Some(firing_id) {
                    if let Some(slot) = self.slots.get_mut(&node) {
                        slot.timers.remove(&kind);
                    }
                    self.with_node(node, |n, out| n.on_timer(kind, out));
                }
            }
            SimEvent::Propose { node } => self.issue_proposal(node),
            SimEvent::Fault(fault) => self.apply_fault(fault),
        }
    }

    fn with_node(&mut self, id: NodeId, f: impl FnOnce(&mut P, &mut Actions<P::Message>)) {
        let Some(slot) = self.slots.get_mut(&id) else {
            return;
        };
        if !slot.up {
            return;
        }
        let mut out = Actions::new();
        f(&mut slot.node, &mut out);
        self.process_actions(id, out);
    }

    fn process_actions(&mut self, from: NodeId, out: Actions<P::Message>) {
        // Write-ahead: persistence lands before any message is released.
        let wrote = !out.persists.is_empty();
        self.disk.apply(from, out.persists.iter());
        if wrote {
            // Track peak per-site log residency at every write boundary so
            // compaction wins (and their absence) are visible in reports.
            if let Some(stable) = self.disk.read(from) {
                let retained = stable.global.log.len() + stable.local.log.len();
                self.metrics.note_residency(retained as u64);
            }
        }

        for cmd in out.timers {
            match cmd {
                wire::TimerCmd::Set { kind, after } => {
                    let id = self
                        .sim
                        .schedule_after(after, SimEvent::Timer { node: from, kind });
                    if let Some(slot) = self.slots.get_mut(&from) {
                        if let Some(old) = slot.timers.insert(kind, id) {
                            self.sim.cancel(old);
                        }
                    } else {
                        self.sim.cancel(id);
                    }
                }
                wire::TimerCmd::Cancel { kind } => {
                    if let Some(slot) = self.slots.get_mut(&from) {
                        if let Some(old) = slot.timers.remove(&kind) {
                            self.sim.cancel(old);
                        }
                    }
                }
            }
        }

        let mut sent_msgs = 0u64;
        let mut sent_bytes = 0u64;
        for (to, msg) in out.sends {
            let size = msg.wire_size();
            sent_msgs += 1;
            sent_bytes += size as u64;
            match self.net.judge(from, to, size, &mut self.net_rng) {
                Verdict::Deliver { after } => {
                    self.sim
                        .schedule_after(after, SimEvent::Deliver { from, to, msg });
                }
                Verdict::Drop { .. } => {}
            }
        }
        if sent_msgs > 0 {
            self.metrics.record_dispatch(sent_msgs, sent_bytes);
        }

        let now = self.sim.now();
        for commit in out.commits {
            self.safety
                .record(from, commit.scope, commit.index, commit.entry.id);
            if commit.scope == LogScope::Global {
                let items = match &commit.entry.payload {
                    Payload::Data(_) => 1,
                    Payload::Batch(b) => b.len() as u64,
                    _ => 0,
                };
                if items > 0 {
                    self.metrics.global_commit(commit.index, items, now);
                }
            }
        }

        let mut completions: Vec<EntryId> = Vec::new();
        let trace = harness_trace_enabled();
        for obs in out.observations {
            if trace {
                eprintln!("[{:.3}s] {} {:?}", self.sim.now().as_secs_f64(), from, obs);
            }
            match obs {
                Observation::ProposalCommitted { id, scope, .. }
                    if scope == self.cfg.ack_scope
                        && id.proposer == from
                        && self.outstanding.get(&from) == Some(&id)
                    => {
                        completions.push(id);
                    }
                Observation::ElectionStarted { .. } => self.metrics.elections += 1,
                Observation::BecameLeader { .. } => self.metrics.leaderships += 1,
                Observation::FastTrackCommit { .. } => self.metrics.fast_commits += 1,
                Observation::ClassicTrackCommit { .. } => self.metrics.classic_commits += 1,
                Observation::MemberSuspected { .. } => self.metrics.member_suspected += 1,
                Observation::ConfigCommitted { .. } => self.metrics.config_commits += 1,
                Observation::HoleRepairTriggered { .. } => self.metrics.hole_repairs += 1,
                Observation::LogCompacted { .. } => self.metrics.compactions += 1,
                Observation::SnapshotInstalled { .. } => self.metrics.snapshot_installs += 1,
                _ => {}
            }
        }
        for id in completions {
            let now = self.sim.now();
            self.metrics.proposal_completed(id, now);
            self.outstanding.remove(&from);
            self.completed += 1;
            if !self.workload_done() {
                // Closed loop: propose the next value immediately.
                self.issue_proposal(from);
            }
        }
    }

    fn issue_proposal(&mut self, node: NodeId) {
        if self.workload_done() || self.outstanding.contains_key(&node) {
            return;
        }
        let up = self.slots.get(&node).is_some_and(|s| s.up);
        if !up {
            return;
        }
        let mut payload = vec![0u8; self.workload.payload_bytes];
        self.payload_rng.fill_bytes_infallible(&mut payload);
        let data = Bytes::from(payload);
        let now = self.sim.now();
        let (id, actions) = {
            let slot = self.slots.get_mut(&node).expect("checked above");
            let mut out = Actions::new();
            let id = slot.node.on_client_propose(data, &mut out);
            (id, out)
        };
        self.metrics.proposal_started(id, now);
        self.outstanding.insert(node, id);
        self.process_actions(node, actions);
    }

    fn apply_fault(&mut self, fault: FaultAction) {
        match fault {
            FaultAction::SilentLeave(node) | FaultAction::Crash(node) => {
                if let Some(slot) = self.slots.get_mut(&node) {
                    slot.up = false;
                    for (_, id) in slot.timers.drain() {
                        self.sim.cancel(id);
                    }
                }
                self.net.set_down(node);
                self.outstanding.remove(&node);
            }
            FaultAction::Recover(node) => {
                let Some(factory) = &self.recover_fn else {
                    return;
                };
                let stable = self.disk.read(node).cloned().unwrap_or_default();
                let fresh = factory(node, &stable);
                if let Some(slot) = self.slots.get_mut(&node) {
                    slot.node = fresh;
                    slot.up = true;
                }
                self.net.set_up(node);
                self.with_node(node, |n, out| n.bootstrap(out));
                // A recovered proposer lost its in-flight proposal with its
                // volatile state; restart its closed loop.
                if self.workload.proposers.contains(&node)
                    && !self.outstanding.contains_key(&node)
                {
                    let kick = des::SimDuration::from_millis(100);
                    self.sim.schedule_after(kick, SimEvent::Propose { node });
                }
            }
            FaultAction::Partition { side_a, side_b } => {
                self.net.partitions_mut().split(&side_a, &side_b);
            }
            FaultAction::Heal => {
                self.net.partitions_mut().heal_all();
            }
        }
    }
}

/// Cached `HARNESS_TRACE` env check: per-observation tracing to stderr.
fn harness_trace_enabled() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| std::env::var_os("HARNESS_TRACE").is_some())
}

/// Infallible byte filling for [`SimRng`] (extension helper).
trait FillBytes {
    fn fill_bytes_infallible(&mut self, dest: &mut [u8]);
}

impl FillBytes for SimRng {
    fn fill_bytes_infallible(&mut self, dest: &mut [u8]) {
        use rand::RngCore;
        self.fill_bytes(dest);
    }
}
