//! Run summaries.

use serde::Serialize;

use crate::{LatencyStats, Metrics, SafetyChecker};

/// Network traffic summary for a run.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct NetSummary {
    /// Messages offered to the network.
    pub offered: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Messages dropped by random loss.
    pub dropped_loss: u64,
    /// Messages dropped by partitions.
    pub dropped_partition: u64,
    /// Messages dropped at down nodes.
    pub dropped_down: u64,
    /// Bytes on intra-region links.
    pub intra_region_bytes: u64,
    /// Bytes on inter-region links.
    pub inter_region_bytes: u64,
    /// Observed random-loss rate.
    pub loss_rate: f64,
}

impl From<&simnet::NetStats> for NetSummary {
    fn from(s: &simnet::NetStats) -> Self {
        NetSummary {
            offered: s.offered,
            delivered: s.delivered,
            dropped_loss: s.dropped_loss,
            dropped_partition: s.dropped_partition,
            dropped_down: s.dropped_node_down,
            intra_region_bytes: s.intra_region_bytes,
            inter_region_bytes: s.inter_region_bytes,
            loss_rate: s.observed_loss_rate(),
        }
    }
}

/// The summary of one simulation run.
#[derive(Clone, Debug, Serialize)]
pub struct RunReport {
    /// Protocol name ("raft", "fast-raft", "c-raft").
    pub protocol: String,
    /// The run seed.
    pub seed: u64,
    /// Simulated duration in seconds.
    pub sim_seconds: f64,
    /// Client operations completed by the workload.
    pub completed: u64,
    /// Write-latency statistics (client-measured).
    pub latency: LatencyStats,
    /// Read-latency statistics (client-measured, all consistency levels).
    pub read_latency: LatencyStats,
    /// Values committed to the global log in the measurement window.
    pub global_items: u64,
    /// Global-log throughput in values per simulated second.
    pub throughput_per_s: f64,
    /// Fast-track commits at leaders.
    pub fast_commits: u64,
    /// Classic-track commits at leaders.
    pub classic_commits: u64,
    /// Fraction of leader commits on the fast track.
    pub fast_track_ratio: f64,
    /// Elections started.
    pub elections: u64,
    /// Leaderships assumed.
    pub leaderships: u64,
    /// Members suspected of silent leaves.
    pub member_suspected: u64,
    /// Times a leader's liveness guard repaired a blocked log hole.
    pub hole_repairs: u64,
    /// Log-prefix compactions performed across all sites.
    pub compactions: u64,
    /// Snapshots installed via leader transfer across all sites.
    pub snapshot_installs: u64,
    /// Client retries answered `Duplicate` (suppressed, not re-applied).
    pub duplicates_suppressed: u64,
    /// Client-side resubmissions (timeouts plus Redirect/Retry outcomes).
    pub client_retries: u64,
    /// Linearizable reads verified by the safety checker.
    pub lin_reads_checked: u64,
    /// Linearizable reads served from a live leader lease (zero messages).
    pub lease_reads: u64,
    /// Linearizable reads that paid a ReadIndex quorum round.
    pub readindex_reads: u64,
    /// Front-gapped global-view detections (C-Raft leader flap probe).
    pub global_view_gaps: u64,
    /// Peak per-site retained log entries (both scopes) over the whole run —
    /// bounded by the snapshot thresholds when compaction is on.
    pub peak_log_residency: u64,
    /// Mean encoded bytes offered to the network per message-producing
    /// protocol step.
    pub bytes_per_dispatch: f64,
    /// Fsync boundaries charged across all sites (group commit: one per
    /// persisting step; unbatched twin: one per command).
    pub persist_batches: u64,
    /// Persist commands written across all sites.
    pub persist_cmds: u64,
    /// Mean persist commands coalesced per fsync boundary.
    pub cmds_per_batch: f64,
    /// Network summary.
    pub net: NetSummary,
    /// Whether the safety property held.
    pub safety_ok: bool,
    /// Number of commit notifications checked.
    pub commits_checked: u64,
}

impl RunReport {
    /// Assembles a report from run components.
    #[allow(clippy::too_many_arguments)]
    pub fn assemble(
        protocol: &str,
        seed: u64,
        sim_seconds: f64,
        measured_seconds: f64,
        metrics: &Metrics,
        net: &simnet::NetStats,
        safety: &SafetyChecker,
        completed: u64,
    ) -> Self {
        RunReport {
            protocol: protocol.to_string(),
            seed,
            sim_seconds,
            completed,
            latency: metrics.latency_stats(),
            read_latency: metrics.read_latency_stats(),
            global_items: metrics.global_committed_items(),
            throughput_per_s: metrics
                .throughput(des::SimDuration::from_secs_f64(measured_seconds.max(1e-9))),
            fast_commits: metrics.fast_commits,
            classic_commits: metrics.classic_commits,
            fast_track_ratio: metrics.fast_track_ratio(),
            elections: metrics.elections,
            leaderships: metrics.leaderships,
            member_suspected: metrics.member_suspected,
            hole_repairs: metrics.hole_repairs,
            compactions: metrics.compactions,
            snapshot_installs: metrics.snapshot_installs,
            duplicates_suppressed: metrics.duplicates_suppressed,
            client_retries: metrics.client_retries,
            lin_reads_checked: safety.reads_checked(),
            lease_reads: metrics.lease_reads,
            readindex_reads: metrics.readindex_reads,
            global_view_gaps: metrics.global_view_gaps,
            peak_log_residency: metrics.log_residency_peak,
            bytes_per_dispatch: metrics.bytes_per_dispatch(),
            persist_batches: metrics.persist_batches,
            persist_cmds: metrics.persist_cmds,
            cmds_per_batch: metrics.cmds_per_batch(),
            net: NetSummary::from(net),
            safety_ok: safety.is_ok(),
            commits_checked: safety.commits_seen(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::SimTime;

    #[test]
    fn assemble_carries_counters() {
        let mut metrics = Metrics::new(SimTime::ZERO);
        metrics.fast_commits = 7;
        metrics.classic_commits = 3;
        let net = simnet::NetStats::new();
        let safety = SafetyChecker::new();
        let r = RunReport::assemble("fast-raft", 9, 10.0, 10.0, &metrics, &net, &safety, 42);
        assert_eq!(r.protocol, "fast-raft");
        assert_eq!(r.completed, 42);
        assert_eq!(r.fast_commits, 7);
        assert!((r.fast_track_ratio - 0.7).abs() < 1e-12);
        assert!(r.safety_ok);
    }
}
