//! Run metrics: commit latency, throughput, protocol-track counters.

use std::collections::BTreeMap;

use des::{SimDuration, SimTime};
use serde::Serialize;
use wire::{LogIndex, NodeId, SessionId};

/// Key of one client operation: its `(session, seq)`.
pub type ClientOpKey = (SessionId, u64);

/// One completed proposal, as measured at its proposer (the paper's
/// methodology: "the proposer started a timer when first proposing an entry
/// and stopped the timer when ... notified ... that the entry was
/// committed", §VI).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct LatencySample {
    /// The issuing session (sessions are node-derived in the harness).
    pub proposer: NodeId,
    /// When the value was first proposed.
    pub proposed_at: SimTime,
    /// When the proposer learned of the commit.
    pub committed_at: SimTime,
}

impl LatencySample {
    /// The commit latency.
    pub fn latency(&self) -> SimDuration {
        self.committed_at.saturating_since(self.proposed_at)
    }
}

/// Aggregated statistics over a set of durations.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Mean, in milliseconds.
    pub mean_ms: f64,
    /// Median, in milliseconds.
    pub p50_ms: f64,
    /// 95th percentile, in milliseconds.
    pub p95_ms: f64,
    /// Maximum, in milliseconds.
    pub max_ms: f64,
}

impl LatencyStats {
    /// Computes stats from raw durations.
    pub fn from_durations(mut v: Vec<SimDuration>) -> Self {
        if v.is_empty() {
            return LatencyStats::default();
        }
        v.sort_unstable();
        let count = v.len();
        let sum: u64 = v.iter().map(|d| d.as_micros()).sum();
        let pct = |p: f64| -> f64 {
            let idx = ((count as f64 - 1.0) * p).round() as usize;
            v[idx].as_micros() as f64 / 1e3
        };
        LatencyStats {
            count,
            mean_ms: sum as f64 / count as f64 / 1e3,
            p50_ms: pct(0.5),
            p95_ms: pct(0.95),
            max_ms: v[count - 1].as_micros() as f64 / 1e3,
        }
    }
}

/// Metrics collected over one simulation run.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Completed writes in completion order.
    pub samples: Vec<LatencySample>,
    /// Completed reads in completion order (client-measured, from first
    /// submission to the typed `ReadOk`).
    pub read_samples: Vec<LatencySample>,
    /// Outstanding client operations by `(session, seq)`.
    inflight: BTreeMap<ClientOpKey, SimTime>,
    /// Items committed to the global log, by unique global index.
    global_items: BTreeMap<LogIndex, u64>,
    /// Leader fast-track commits observed.
    pub fast_commits: u64,
    /// Leader classic-track commits observed.
    pub classic_commits: u64,
    /// Elections started.
    pub elections: u64,
    /// Leaderships assumed.
    pub leaderships: u64,
    /// Members suspected of silent leaves.
    pub member_suspected: u64,
    /// Configuration entries committed.
    pub config_commits: u64,
    /// Times a leader's liveness guard re-proposed a no-op at a blocked log
    /// hole (tick-based stall or proactive ack-driven repair).
    pub hole_repairs: u64,
    /// Log-prefix compactions performed (all sites, both scopes).
    pub compactions: u64,
    /// Snapshots installed from a leader transfer (all sites, both scopes).
    pub snapshot_installs: u64,
    /// Client retries answered `Duplicate` — the write took effect on an
    /// earlier attempt and the resubmission was suppressed, not re-applied
    /// (counted once per suppressed retry, at its gateway).
    pub duplicates_suppressed: u64,
    /// Client-side resubmissions (timeouts plus Redirect/Retry outcomes).
    pub client_retries: u64,
    /// Writes refused or skipped because their session idled past
    /// `Timing::session_ttl` and was garbage-collected (terminal
    /// `SessionExpired` outcomes observed at gateways).
    pub sessions_expired: u64,
    /// Front-gapped global view detections at (re)activating C-Raft
    /// cluster leaders (ROADMAP snapshot item b probe).
    pub global_view_gaps: u64,
    /// Linearizable reads served from a live leader lease (zero messages).
    pub lease_reads: u64,
    /// Linearizable reads that ran a ReadIndex quorum round (no lease, or
    /// the lease had lapsed / was still behind the enable barrier).
    pub readindex_reads: u64,
    /// Peak per-site log residency: the maximum, over sites and time, of
    /// retained stable-storage log entries (both scopes combined). With
    /// compaction enabled this stays bounded by the snapshot thresholds;
    /// without it, it grows linearly with run length.
    pub log_residency_peak: u64,
    /// Fsync boundaries charged across all sites: one per persisting
    /// protocol step under group commit, one per command in the unbatched
    /// twin. The honest write-path cost — `persist_cmds / persist_batches`
    /// is the coalescing factor group commit buys.
    pub persist_batches: u64,
    /// Persist commands written across all sites (identical between the
    /// batched and unbatched twins; only the boundary count differs).
    pub persist_cmds: u64,
    /// Protocol steps that released at least one message.
    pub dispatches: u64,
    /// Messages offered to the network across all dispatches.
    pub messages_sent: u64,
    /// Encoded bytes offered to the network across all dispatches.
    pub bytes_sent: u64,
    /// When measurement began (samples before this are ignored).
    pub measure_from: SimTime,
}

impl Metrics {
    /// Fresh metrics measuring from `measure_from`.
    pub fn new(measure_from: SimTime) -> Self {
        Metrics {
            measure_from,
            ..Metrics::default()
        }
    }

    /// Records a client operation being issued (first submission only:
    /// retries of the same key keep the original start time, measuring
    /// client-perceived latency).
    pub fn op_started(&mut self, key: ClientOpKey, now: SimTime) {
        self.inflight.entry(key).or_insert(now);
    }

    /// Records the client receiving its typed outcome. Returns the sample
    /// when the operation was tracked.
    pub fn op_completed(
        &mut self,
        key: ClientOpKey,
        now: SimTime,
        is_read: bool,
    ) -> Option<LatencySample> {
        let proposed_at = self.inflight.remove(&key)?;
        let sample = LatencySample {
            proposer: NodeId(key.0.as_u64()),
            proposed_at,
            committed_at: now,
        };
        if now >= self.measure_from {
            if is_read {
                self.read_samples.push(sample);
            } else {
                self.samples.push(sample);
            }
        }
        Some(sample)
    }

    /// Records a committed global-log entry carrying `items` application
    /// values. Deduplicated by index: each global slot counts once.
    pub fn global_commit(&mut self, index: LogIndex, items: u64, now: SimTime) {
        if now >= self.measure_from {
            self.global_items.entry(index).or_insert(items);
        }
    }

    /// Completed-write latency statistics.
    pub fn latency_stats(&self) -> LatencyStats {
        LatencyStats::from_durations(self.samples.iter().map(LatencySample::latency).collect())
    }

    /// Completed-read latency statistics.
    pub fn read_latency_stats(&self) -> LatencyStats {
        LatencyStats::from_durations(
            self.read_samples
                .iter()
                .map(LatencySample::latency)
                .collect(),
        )
    }

    /// Total application values committed to the global log in the
    /// measurement window.
    pub fn global_committed_items(&self) -> u64 {
        self.global_items.values().sum()
    }

    /// Throughput in committed values per simulated second over `window`.
    pub fn throughput(&self, window: SimDuration) -> f64 {
        if window.is_zero() {
            return 0.0;
        }
        self.global_committed_items() as f64 / window.as_secs_f64()
    }

    /// Records one protocol step that offered `messages` totalling `bytes`
    /// to the network.
    pub fn record_dispatch(&mut self, messages: u64, bytes: u64) {
        self.dispatches += 1;
        self.messages_sent += messages;
        self.bytes_sent += bytes;
    }

    /// Records one persisting protocol step: `boundaries` fsync boundaries
    /// covering `cmds` persist commands.
    pub fn note_persists(&mut self, boundaries: u64, cmds: u64) {
        self.persist_batches += boundaries;
        self.persist_cmds += cmds;
    }

    /// Mean persist commands coalesced per fsync boundary (1.0 in the
    /// unbatched twin by construction; higher is cheaper).
    pub fn cmds_per_batch(&self) -> f64 {
        if self.persist_batches == 0 {
            0.0
        } else {
            self.persist_cmds as f64 / self.persist_batches as f64
        }
    }

    /// Records one site's current stable-log residency (retained entries
    /// across both scopes), keeping the running peak.
    pub fn note_residency(&mut self, entries: u64) {
        if entries > self.log_residency_peak {
            self.log_residency_peak = entries;
        }
    }

    /// Mean encoded bytes released per message-producing protocol step —
    /// the fan-out cost the zero-copy fabric amortizes.
    pub fn bytes_per_dispatch(&self) -> f64 {
        if self.dispatches == 0 {
            0.0
        } else {
            self.bytes_sent as f64 / self.dispatches as f64
        }
    }

    /// Fraction of leader commits that used the fast track.
    pub fn fast_track_ratio(&self) -> f64 {
        let total = self.fast_commits + self.classic_commits;
        if total == 0 {
            0.0
        } else {
            self.fast_commits as f64 / total as f64
        }
    }

    /// Proposals still outstanding.
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64, s: u64) -> ClientOpKey {
        (SessionId::client(n), s)
    }

    #[test]
    fn latency_roundtrip() {
        let mut m = Metrics::new(SimTime::ZERO);
        m.op_started(id(1, 0), SimTime::from_millis(10));
        let s = m
            .op_completed(id(1, 0), SimTime::from_millis(35), false)
            .unwrap();
        assert_eq!(s.latency(), SimDuration::from_millis(25));
        assert_eq!(m.samples.len(), 1);
        assert_eq!(m.inflight(), 0);
    }

    #[test]
    fn unknown_completion_is_none() {
        let mut m = Metrics::new(SimTime::ZERO);
        assert!(m.op_completed(id(1, 0), SimTime::ZERO, false).is_none());
    }

    #[test]
    fn warmup_samples_are_dropped_from_stats() {
        let mut m = Metrics::new(SimTime::from_secs(1));
        m.op_started(id(1, 0), SimTime::from_millis(100));
        m.op_completed(id(1, 0), SimTime::from_millis(200), false);
        assert_eq!(m.samples.len(), 0, "pre-warmup sample recorded");
        m.op_started(id(1, 1), SimTime::from_millis(999));
        m.op_completed(id(1, 1), SimTime::from_millis(1500), false);
        assert_eq!(m.samples.len(), 1);
    }

    #[test]
    fn global_commits_deduplicate_by_index() {
        let mut m = Metrics::new(SimTime::ZERO);
        m.global_commit(LogIndex(1), 10, SimTime::from_millis(1));
        m.global_commit(LogIndex(1), 10, SimTime::from_millis(2));
        m.global_commit(LogIndex(2), 5, SimTime::from_millis(3));
        assert_eq!(m.global_committed_items(), 15);
        assert!((m.throughput(SimDuration::from_secs(3)) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn stats_percentiles() {
        let durations: Vec<SimDuration> =
            (1..=100).map(SimDuration::from_millis).collect();
        let s = LatencyStats::from_durations(durations);
        assert_eq!(s.count, 100);
        assert!((s.mean_ms - 50.5).abs() < 1e-9);
        assert!((s.p50_ms - 50.0).abs() <= 1.0);
        assert!((s.p95_ms - 95.0).abs() <= 1.0);
        assert!((s.max_ms - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = LatencyStats::from_durations(Vec::new());
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_ms, 0.0);
    }

    #[test]
    fn residency_peak_is_monotone() {
        let mut m = Metrics::new(SimTime::ZERO);
        m.note_residency(10);
        m.note_residency(4);
        assert_eq!(m.log_residency_peak, 10);
        m.note_residency(25);
        assert_eq!(m.log_residency_peak, 25);
    }

    #[test]
    fn fast_track_ratio() {
        let mut m = Metrics::new(SimTime::ZERO);
        assert_eq!(m.fast_track_ratio(), 0.0);
        m.fast_commits = 3;
        m.classic_commits = 1;
        assert!((m.fast_track_ratio() - 0.75).abs() < 1e-12);
    }
}
