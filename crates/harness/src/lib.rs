//! # `harness` — simulation harness and experiment suite
//!
//! Reproduces the paper's evaluation environment on the deterministic
//! simulator:
//!
//! - [`Runner`]: hosts protocol nodes over [`simnet::Network`] +
//!   [`storage::SimDisk`], with write-ahead persistence, timer management,
//!   closed-loop proposers (as in §VI), and a fault injector
//!   ([`FaultAction`]: silent leaves, crashes, recoveries, partitions);
//! - [`Metrics`] / [`RunReport`]: proposer-measured commit latency, global
//!   throughput, fast/classic track ratios, traffic accounting;
//! - [`SafetyChecker`]: online Definition-2.1 checking across all sites in
//!   every run;
//! - [`Scenario`] builders for classic Raft, Fast Raft, and C-Raft; and
//! - [`experiments`]: one function per figure of the paper plus extension
//!   studies.
//!
//! # Examples
//!
//! ```
//! use harness::{run_fast_raft, Scenario};
//!
//! let mut s = Scenario::fig3_base(7, 0.0);
//! s.target_commits = Some(10);
//! let (report, _metrics) = run_fast_raft(&s);
//! assert!(report.safety_ok);
//! assert_eq!(report.completed, 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
mod metrics;
mod report;
mod runner;
mod safety;
mod scenario;

pub use metrics::{LatencySample, LatencyStats, Metrics};
pub use report::{NetSummary, RunReport};
pub use runner::{FaultAction, Runner, RunnerConfig, Workload};
pub use safety::{LinViolation, SafetyChecker, SafetyViolation};
pub use scenario::{
    run_classic_raft, run_craft, run_fast_raft, CRaftScenario, NetworkKind, ReadMix, Scenario,
};
