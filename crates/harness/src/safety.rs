//! Online safety checking (Definition 2.1) plus client-level
//! linearizability checking for `Linearizable` reads.
//!
//! Every commit notification from every node flows through a
//! [`SafetyChecker`]; if two sites ever commit different entries at the same
//! index of the same log, the run records a violation with full context.
//! Experiments assert [`SafetyChecker::assert_ok`] at the end of every run,
//! including runs with crash/churn/partition schedules.
//!
//! The linearizability check works on real-time order at the client
//! boundary: when a `Linearizable` read is **first submitted**, the checker
//! snapshots, per scope, the highest commit index of any *completed* write
//! and the highest floor of any *completed* linearizable read. When the
//! read completes, its returned commit floor must be at least that
//! snapshot — a linearizable read may never answer from a point before an
//! operation that finished before the read began.

use std::collections::HashMap;

use wire::{EntryId, LogIndex, LogScope, NodeId, SessionId};

/// A detected violation of the safety property.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SafetyViolation {
    /// The log scope disagreed on.
    pub scope: LogScope,
    /// The index disagreed on.
    pub index: LogIndex,
    /// First committer and its entry.
    pub first: (NodeId, EntryId),
    /// Conflicting committer and its entry.
    pub second: (NodeId, EntryId),
}

impl std::fmt::Display for SafetyViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "safety violation at {:?} {}: {} committed {} but {} committed {}",
            self.scope, self.index, self.first.0, self.first.1, self.second.0, self.second.1
        )
    }
}

/// A linearizability violation: a read answered from before its bound.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinViolation {
    /// The reading session.
    pub session: SessionId,
    /// The read's sequence number.
    pub seq: u64,
    /// The scope of the returned floor.
    pub scope: LogScope,
    /// The commit floor the read returned.
    pub floor: LogIndex,
    /// The minimum floor real-time order required.
    pub bound: LogIndex,
}

impl std::fmt::Display for LinViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "linearizability violation: read {}:{} returned {:?} floor {} below bound {} \
             (an operation completed before the read began reached that index)",
            self.session, self.seq, self.scope, self.floor, self.bound
        )
    }
}

/// Cross-site commit consistency checker.
///
/// Local-scope commits are compared within a *domain* (a cluster); Global
/// commits are system-wide. The domain of a node is defined by a caller
/// -provided mapping (identity/constant for single-cluster protocols).
#[derive(Default)]
pub struct SafetyChecker {
    chosen: HashMap<(u64, LogScope, LogIndex), (NodeId, EntryId)>,
    violations: Vec<SafetyViolation>,
    domain_of: Option<Box<dyn Fn(NodeId) -> u64 + Send>>,
    commits_seen: u64,
    /// Per scope: the highest index any *completed* operation (write commit
    /// or linearizable-read floor) is known to have reached.
    completed_bound: HashMap<LogScope, LogIndex>,
    /// In-flight linearizable reads: the per-scope bound snapshot taken at
    /// first submission.
    read_bounds: HashMap<(SessionId, u64), [(LogScope, LogIndex); 2]>,
    lin_violations: Vec<LinViolation>,
    reads_checked: u64,
}

impl std::fmt::Debug for SafetyChecker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SafetyChecker")
            .field("commits_seen", &self.commits_seen)
            .field("violations", &self.violations)
            .field("reads_checked", &self.reads_checked)
            .field("lin_violations", &self.lin_violations)
            .finish_non_exhaustive()
    }
}

impl SafetyChecker {
    /// A checker with all nodes in one local domain.
    pub fn new() -> Self {
        SafetyChecker::default()
    }

    /// A checker with a cluster mapping for Local-scope commits.
    pub fn with_domains(f: impl Fn(NodeId) -> u64 + Send + 'static) -> Self {
        SafetyChecker {
            domain_of: Some(Box::new(f)),
            ..SafetyChecker::default()
        }
    }

    /// Records a commit observed at `node`.
    pub fn record(&mut self, node: NodeId, scope: LogScope, index: LogIndex, id: EntryId) {
        self.commits_seen += 1;
        let domain = match scope {
            LogScope::Global => u64::MAX,
            LogScope::Local => self.domain_of.as_ref().map_or(0, |f| f(node)),
        };
        match self.chosen.entry((domain, scope, index)) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert((node, id));
            }
            std::collections::hash_map::Entry::Occupied(o) => {
                let first = *o.get();
                if first.1 != id {
                    self.violations.push(SafetyViolation {
                        scope,
                        index,
                        first,
                        second: (node, id),
                    });
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Client-level linearizability checking
    // ------------------------------------------------------------------

    /// Records a client write completing with its application index: later
    /// linearizable reads must not answer from before it.
    pub fn write_completed(&mut self, scope: LogScope, index: LogIndex) {
        let bound = self.completed_bound.entry(scope).or_insert(LogIndex::ZERO);
        if index > *bound {
            *bound = index;
        }
    }

    /// Records a linearizable read being **first submitted**: snapshots the
    /// current per-scope bounds the eventual answer must respect.
    /// Idempotent for retries of the same `(session, seq)` — the
    /// linearization window opens at the first invocation.
    pub fn read_started(&mut self, session: SessionId, seq: u64) {
        let snapshot = [
            (
                LogScope::Global,
                self.completed_bound
                    .get(&LogScope::Global)
                    .copied()
                    .unwrap_or(LogIndex::ZERO),
            ),
            (
                LogScope::Local,
                self.completed_bound
                    .get(&LogScope::Local)
                    .copied()
                    .unwrap_or(LogIndex::ZERO),
            ),
        ];
        self.read_bounds.entry((session, seq)).or_insert(snapshot);
    }

    /// Records a linearizable read completing with its answered floor,
    /// checking it against the bound snapshotted at submission and folding
    /// it into the bound for subsequent reads (reads must also be monotone
    /// among themselves in real time).
    pub fn read_completed(
        &mut self,
        session: SessionId,
        seq: u64,
        scope: LogScope,
        floor: LogIndex,
    ) {
        self.reads_checked += 1;
        if let Some(snapshot) = self.read_bounds.remove(&(session, seq)) {
            let bound = snapshot
                .iter()
                .find(|(s, _)| *s == scope)
                .map(|(_, b)| *b)
                .unwrap_or(LogIndex::ZERO);
            if floor < bound {
                self.lin_violations.push(LinViolation {
                    session,
                    seq,
                    scope,
                    floor,
                    bound,
                });
            }
        }
        // This read's floor becomes part of the bound: a later read must
        // not observe less.
        let bound = self.completed_bound.entry(scope).or_insert(LogIndex::ZERO);
        if floor > *bound {
            *bound = floor;
        }
    }

    /// Linearizability violations recorded so far.
    pub fn lin_violations(&self) -> &[LinViolation] {
        &self.lin_violations
    }

    /// Number of linearizable reads checked.
    pub fn reads_checked(&self) -> u64 {
        self.reads_checked
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[SafetyViolation] {
        &self.violations
    }

    /// Total commits checked.
    pub fn commits_seen(&self) -> u64 {
        self.commits_seen
    }

    /// `true` if no violation (commit-consistency or linearizability) was
    /// recorded.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty() && self.lin_violations.is_empty()
    }

    /// Panics with diagnostics on any violation.
    ///
    /// # Panics
    ///
    /// Panics if the safety property (or read linearizability) was violated
    /// during the run.
    pub fn assert_ok(&self) {
        if let Some(v) = self.violations.first() {
            panic!("{v} ({} more)", self.violations.len() - 1);
        }
        if let Some(v) = self.lin_violations.first() {
            panic!("{v} ({} more)", self.lin_violations.len() - 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64, s: u64) -> EntryId {
        EntryId::new(NodeId(n), s)
    }

    #[test]
    fn agreeing_commits_pass() {
        let mut c = SafetyChecker::new();
        c.record(NodeId(1), LogScope::Global, LogIndex(1), id(9, 0));
        c.record(NodeId(2), LogScope::Global, LogIndex(1), id(9, 0));
        assert!(c.is_ok());
        assert_eq!(c.commits_seen(), 2);
        c.assert_ok();
    }

    #[test]
    fn conflicting_commits_flagged() {
        let mut c = SafetyChecker::new();
        c.record(NodeId(1), LogScope::Global, LogIndex(1), id(9, 0));
        c.record(NodeId(2), LogScope::Global, LogIndex(1), id(9, 1));
        assert!(!c.is_ok());
        assert_eq!(c.violations().len(), 1);
        let v = &c.violations()[0];
        assert_eq!(v.first, (NodeId(1), id(9, 0)));
        assert_eq!(v.second, (NodeId(2), id(9, 1)));
        assert!(v.to_string().contains("safety violation"));
    }

    #[test]
    #[should_panic(expected = "safety violation")]
    fn assert_ok_panics_on_violation() {
        let mut c = SafetyChecker::new();
        c.record(NodeId(1), LogScope::Global, LogIndex(1), id(9, 0));
        c.record(NodeId(2), LogScope::Global, LogIndex(1), id(9, 1));
        c.assert_ok();
    }

    #[test]
    fn local_domains_are_independent() {
        let mut c = SafetyChecker::with_domains(|n| n.as_u64() / 3);
        // Nodes 0..2 are cluster 0; nodes 3..5 cluster 1.
        c.record(NodeId(0), LogScope::Local, LogIndex(1), id(0, 0));
        c.record(NodeId(3), LogScope::Local, LogIndex(1), id(3, 0));
        assert!(c.is_ok(), "different clusters may differ at Local #1");
        // Within a cluster they must agree.
        c.record(NodeId(1), LogScope::Local, LogIndex(1), id(1, 5));
        assert!(!c.is_ok());
    }

    #[test]
    fn linearizable_read_below_completed_write_is_flagged() {
        let mut c = SafetyChecker::new();
        let s = SessionId::client(1);
        c.write_completed(LogScope::Global, LogIndex(10));
        c.read_started(s, 1);
        c.read_completed(s, 1, LogScope::Global, LogIndex(9));
        assert!(!c.is_ok());
        assert_eq!(c.lin_violations().len(), 1);
        assert_eq!(c.lin_violations()[0].bound, LogIndex(10));
        assert!(c.lin_violations()[0].to_string().contains("linearizability"));
    }

    #[test]
    fn linearizable_read_at_or_above_bound_passes() {
        let mut c = SafetyChecker::new();
        let s = SessionId::client(1);
        c.write_completed(LogScope::Global, LogIndex(10));
        c.read_started(s, 1);
        // A write completing *after* the read started does not raise the
        // read's bound (real-time order permits either answer).
        c.write_completed(LogScope::Global, LogIndex(50));
        c.read_completed(s, 1, LogScope::Global, LogIndex(10));
        assert!(c.is_ok());
        assert_eq!(c.reads_checked(), 1);
        c.assert_ok();
    }

    #[test]
    fn reads_are_monotone_among_themselves() {
        let mut c = SafetyChecker::new();
        let a = SessionId::client(1);
        let b = SessionId::client(2);
        c.read_started(a, 1);
        c.read_completed(a, 1, LogScope::Global, LogIndex(30));
        // A read starting after a completed read must not see less.
        c.read_started(b, 1);
        c.read_completed(b, 1, LogScope::Global, LogIndex(29));
        assert!(!c.is_ok());
    }

    #[test]
    #[should_panic(expected = "linearizability violation")]
    fn assert_ok_panics_on_lin_violation() {
        let mut c = SafetyChecker::new();
        let s = SessionId::client(1);
        c.write_completed(LogScope::Global, LogIndex(5));
        c.read_started(s, 1);
        c.read_completed(s, 1, LogScope::Global, LogIndex(1));
        c.assert_ok();
    }

    #[test]
    fn scopes_bound_independently() {
        let mut c = SafetyChecker::new();
        let s = SessionId::client(1);
        c.write_completed(LogScope::Local, LogIndex(40));
        c.read_started(s, 1);
        // A Global-scope answer is not bounded by Local-scope completions.
        c.read_completed(s, 1, LogScope::Global, LogIndex(2));
        assert!(c.is_ok());
    }

    #[test]
    fn global_scope_ignores_domains() {
        let mut c = SafetyChecker::with_domains(|n| n.as_u64());
        c.record(NodeId(0), LogScope::Global, LogIndex(4), id(0, 0));
        c.record(NodeId(9), LogScope::Global, LogIndex(4), id(0, 1));
        assert!(!c.is_ok());
    }
}
