//! Online safety checking (Definition 2.1).
//!
//! Every commit notification from every node flows through a
//! [`SafetyChecker`]; if two sites ever commit different entries at the same
//! index of the same log, the run records a violation with full context.
//! Experiments assert [`SafetyChecker::assert_ok`] at the end of every run,
//! including runs with crash/churn/partition schedules.

use std::collections::HashMap;

use wire::{EntryId, LogIndex, LogScope, NodeId};

/// A detected violation of the safety property.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SafetyViolation {
    /// The log scope disagreed on.
    pub scope: LogScope,
    /// The index disagreed on.
    pub index: LogIndex,
    /// First committer and its entry.
    pub first: (NodeId, EntryId),
    /// Conflicting committer and its entry.
    pub second: (NodeId, EntryId),
}

impl std::fmt::Display for SafetyViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "safety violation at {:?} {}: {} committed {} but {} committed {}",
            self.scope, self.index, self.first.0, self.first.1, self.second.0, self.second.1
        )
    }
}

/// Cross-site commit consistency checker.
///
/// Local-scope commits are compared within a *domain* (a cluster); Global
/// commits are system-wide. The domain of a node is defined by a caller
/// -provided mapping (identity/constant for single-cluster protocols).
#[derive(Default)]
pub struct SafetyChecker {
    chosen: HashMap<(u64, LogScope, LogIndex), (NodeId, EntryId)>,
    violations: Vec<SafetyViolation>,
    domain_of: Option<Box<dyn Fn(NodeId) -> u64 + Send>>,
    commits_seen: u64,
}

impl std::fmt::Debug for SafetyChecker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SafetyChecker")
            .field("commits_seen", &self.commits_seen)
            .field("violations", &self.violations)
            .finish_non_exhaustive()
    }
}

impl SafetyChecker {
    /// A checker with all nodes in one local domain.
    pub fn new() -> Self {
        SafetyChecker::default()
    }

    /// A checker with a cluster mapping for Local-scope commits.
    pub fn with_domains(f: impl Fn(NodeId) -> u64 + Send + 'static) -> Self {
        SafetyChecker {
            domain_of: Some(Box::new(f)),
            ..SafetyChecker::default()
        }
    }

    /// Records a commit observed at `node`.
    pub fn record(&mut self, node: NodeId, scope: LogScope, index: LogIndex, id: EntryId) {
        self.commits_seen += 1;
        let domain = match scope {
            LogScope::Global => u64::MAX,
            LogScope::Local => self.domain_of.as_ref().map_or(0, |f| f(node)),
        };
        match self.chosen.entry((domain, scope, index)) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert((node, id));
            }
            std::collections::hash_map::Entry::Occupied(o) => {
                let first = *o.get();
                if first.1 != id {
                    self.violations.push(SafetyViolation {
                        scope,
                        index,
                        first,
                        second: (node, id),
                    });
                }
            }
        }
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[SafetyViolation] {
        &self.violations
    }

    /// Total commits checked.
    pub fn commits_seen(&self) -> u64 {
        self.commits_seen
    }

    /// `true` if no violation was recorded.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics with diagnostics on any violation.
    ///
    /// # Panics
    ///
    /// Panics if the safety property was violated during the run.
    pub fn assert_ok(&self) {
        if let Some(v) = self.violations.first() {
            panic!("{v} ({} more)", self.violations.len() - 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64, s: u64) -> EntryId {
        EntryId::new(NodeId(n), s)
    }

    #[test]
    fn agreeing_commits_pass() {
        let mut c = SafetyChecker::new();
        c.record(NodeId(1), LogScope::Global, LogIndex(1), id(9, 0));
        c.record(NodeId(2), LogScope::Global, LogIndex(1), id(9, 0));
        assert!(c.is_ok());
        assert_eq!(c.commits_seen(), 2);
        c.assert_ok();
    }

    #[test]
    fn conflicting_commits_flagged() {
        let mut c = SafetyChecker::new();
        c.record(NodeId(1), LogScope::Global, LogIndex(1), id(9, 0));
        c.record(NodeId(2), LogScope::Global, LogIndex(1), id(9, 1));
        assert!(!c.is_ok());
        assert_eq!(c.violations().len(), 1);
        let v = &c.violations()[0];
        assert_eq!(v.first, (NodeId(1), id(9, 0)));
        assert_eq!(v.second, (NodeId(2), id(9, 1)));
        assert!(v.to_string().contains("safety violation"));
    }

    #[test]
    #[should_panic(expected = "safety violation")]
    fn assert_ok_panics_on_violation() {
        let mut c = SafetyChecker::new();
        c.record(NodeId(1), LogScope::Global, LogIndex(1), id(9, 0));
        c.record(NodeId(2), LogScope::Global, LogIndex(1), id(9, 1));
        c.assert_ok();
    }

    #[test]
    fn local_domains_are_independent() {
        let mut c = SafetyChecker::with_domains(|n| n.as_u64() / 3);
        // Nodes 0..2 are cluster 0; nodes 3..5 cluster 1.
        c.record(NodeId(0), LogScope::Local, LogIndex(1), id(0, 0));
        c.record(NodeId(3), LogScope::Local, LogIndex(1), id(3, 0));
        assert!(c.is_ok(), "different clusters may differ at Local #1");
        // Within a cluster they must agree.
        c.record(NodeId(1), LogScope::Local, LogIndex(1), id(1, 5));
        assert!(!c.is_ok());
    }

    #[test]
    fn global_scope_ignores_domains() {
        let mut c = SafetyChecker::with_domains(|n| n.as_u64());
        c.record(NodeId(0), LogScope::Global, LogIndex(4), id(0, 0));
        c.record(NodeId(9), LogScope::Global, LogIndex(4), id(0, 1));
        assert!(!c.is_ok());
    }
}
