//! Fig. 5: global-log throughput of classic Raft vs C-Raft as 20 sites are
//! split into more, smaller clusters across regions (one proposer per
//! cluster, C-Raft batch = 10, trials of simulated minutes).

use des::{SimDuration, SimRng};
use serde::Serialize;
use wire::NodeId;

use crate::{run_classic_raft, run_craft, CRaftScenario, NetworkKind, Scenario};
use raft::Timing;

/// One point of the figure.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Fig5Row {
    /// Number of clusters (= regions).
    pub clusters: u64,
    /// Classic Raft throughput (committed entries / simulated second).
    pub raft_tput: f64,
    /// C-Raft throughput.
    pub craft_tput: f64,
    /// C-Raft / Raft ratio.
    pub speedup: f64,
}

/// The whole figure.
#[derive(Clone, Debug, Serialize)]
pub struct Fig5Result {
    /// One row per cluster count.
    pub rows: Vec<Fig5Row>,
    /// Speedup at the largest cluster count (paper: ~5x at 10 clusters).
    pub max_speedup: f64,
}

/// Builds the shared scenario for one (clusters, seed) cell.
fn scenario(sites: u64, clusters: u64, seed: u64, secs: u64) -> Scenario {
    let per = sites / clusters;
    // One proposer per cluster, chosen at random within the cluster (§VI-C).
    let mut rng = SimRng::seed_from_u64(seed ^ 0xF1_65);
    let proposers: Vec<NodeId> = (0..clusters)
        .map(|c| NodeId(c * per + rng.gen_range(0..per)))
        .collect();
    Scenario {
        seed,
        sites,
        network: NetworkKind::Regions { regions: clusters },
        loss: 0.0,
        timing: Timing::lan(),
        proposers,
        payload_bytes: 64,
        target_commits: None,
        duration: SimDuration::from_secs(secs + 10),
        warmup: SimDuration::from_secs(10),
        faults: Vec::new(),
        leader_bias: None,
        reads: None,
        unbatched_persists: false,
    }
}

/// Runs the sweep over `cluster_counts`, each trial lasting `secs`
/// simulated seconds of measurement, averaging throughput over `seeds`.
pub fn run(seeds: &[u64], cluster_counts: &[u64], sites: u64, secs: u64) -> Fig5Result {
    let mut rows = Vec::new();
    for &clusters in cluster_counts {
        assert_eq!(sites % clusters, 0, "sites must split evenly");
        let mut raft_acc = 0.0;
        let mut craft_acc = 0.0;
        for &seed in seeds {
            let s = scenario(sites, clusters, seed, secs);
            let (raft_report, _) = run_classic_raft(&s);
            let (craft_report, _) = run_craft(&s, &CRaftScenario::paper(clusters));
            assert!(raft_report.safety_ok && craft_report.safety_ok);
            raft_acc += raft_report.throughput_per_s;
            craft_acc += craft_report.throughput_per_s;
        }
        let n = seeds.len() as f64;
        let raft_tput = raft_acc / n;
        let craft_tput = craft_acc / n;
        rows.push(Fig5Row {
            clusters,
            raft_tput,
            craft_tput,
            speedup: if raft_tput > 0.0 {
                craft_tput / raft_tput
            } else {
                f64::INFINITY
            },
        });
    }
    let max_speedup = rows.iter().map(|r| r.speedup).fold(0.0, f64::max);
    Fig5Result { rows, max_speedup }
}

impl Fig5Result {
    /// Machine-readable JSON for the CI bench gate: one flat `series`
    /// object mapping `protocol/clusters` to throughput (entries/s).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"bench\": \"fig5\",\n  \"series\": {\n");
        for (i, r) in self.rows.iter().enumerate() {
            let comma = if i + 1 == self.rows.len() { "" } else { "," };
            s.push_str(&format!(
                "    \"raft/{c}\": {raft:.2},\n    \"craft/{c}\": {craft:.2}{comma}\n",
                c = r.clusters,
                raft = r.raft_tput,
                craft = r.craft_tput,
            ));
        }
        s.push_str("  }\n}\n");
        s
    }

    /// Renders the figure's series.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Fig 5: global throughput, classic Raft vs C-Raft (20 sites, regions = clusters)\n");
        out.push_str("clusters  raft(entries/s)  c-raft(entries/s)  speedup\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{:8}  {:15.2}  {:17.2}  {:6.2}x\n",
                r.clusters, r.raft_tput, r.craft_tput, r.speedup
            ));
        }
        out.push_str(&format!(
            "max speedup: {:.2}x (paper: ~5x at 10 clusters)\n",
            self.max_speedup
        ));
        out
    }
}
