//! Write-path probe: what group commit buys when the disk is honest.
//!
//! Runs the same write-only closed-loop workload (11-site classic Raft, every
//! site proposing, node 0 biased to lead) three times from one seed with
//! `disk_fsync_latency` modeled at 10 ms:
//!
//! - **grouped** — each protocol step's persist commands coalesce into one
//!   fsync boundary ([`storage::PersistBatch`]); a heartbeat-gated dispatch
//!   window means a follower pays *one* fsync for the whole AppendEntries
//!   payload;
//! - **unbatched** — the honest twin: identical durable contents, but every
//!   persist command is its own boundary, so the same step stalls its
//!   outgoing messages behind N fsyncs instead of one;
//! - **pipelined** — the grouped run with `Timing::pipelined_apply` on:
//!   state-machine apply drains as a separate zero-delay stage. Apply is a
//!   scheduling change only, so the run must finish with every node's
//!   committed-sequence digest identical to the grouped (inline) twin.
//!
//! The deterministic simulator makes the triple directly comparable: fewer
//! fsync boundaries per committed entry (the `BENCH_commit.json` headline),
//! and a throughput win in the latency-on cell because the fsync stall is
//! paid once per step rather than once per command.

use des::{SimDuration, SimRng, SimTime};
use raft::{RaftNode, Timing};
use serde::Serialize;
use simnet::Network;
use wire::{Configuration, LogScope, NodeId};

use crate::{Runner, RunnerConfig, RunReport, SafetyChecker, Workload};

/// Sites in the probe cell (all propose; enough followers that the
/// dispatch-window batching dominates the boundary count).
const SITES: u64 = 11;
/// Modeled fsync cost — large enough to dominate LAN message latency, far
/// below the biased leader's 250 ms election floor (`Timing::validate`).
const FSYNC_MS: u64 = 10;

/// One twin's measurements.
#[derive(Clone, Debug, Serialize)]
pub struct CommitCell {
    /// "grouped", "unbatched", or "pipelined".
    pub mode: &'static str,
    /// Completed client operations.
    pub completed: u64,
    /// Fsync boundaries charged over the run.
    pub persist_batches: u64,
    /// Persist commands those boundaries covered.
    pub persist_cmds: u64,
    /// Mean commands per boundary (1.0 in the unbatched twin by
    /// construction).
    pub cmds_per_batch: f64,
    /// Fsync boundaries per committed entry — the honest write-path cost.
    pub batches_per_commit: f64,
    /// Committed entries per measured second.
    pub throughput_per_s: f64,
    /// Mean client-measured commit latency (ms).
    pub commit_mean_ms: f64,
}

/// The probe result: grouped / unbatched / pipelined cells plus the
/// per-node digest comparison between the pipelined and inline twins.
#[derive(Clone, Debug, Serialize)]
pub struct CommitPathResult {
    /// `[grouped, unbatched, pipelined]`.
    pub cells: Vec<CommitCell>,
    /// Per-node `(state_digest, commit_index)` matched between the grouped
    /// (inline-apply) and pipelined runs.
    pub digests_match: bool,
}

fn runner(seed: u64, ops: u64, unbatched: bool, pipelined: bool) -> Runner<RaftNode> {
    let cfg: Configuration = (0..SITES).map(NodeId).collect();
    let root = SimRng::seed_from_u64(seed);
    let nodes = (0..SITES).map(|i| {
        let mut t = Timing::lan();
        t.disk_fsync_latency = SimDuration::from_millis(FSYNC_MS);
        t.pipelined_apply = pipelined;
        // Keep the lease invariant inside the biased window
        // (`Timing::validate`: election_min >= lease + skew), uniform
        // across the cluster.
        t.lease_duration = SimDuration::from_millis(150);
        t.max_clock_skew = SimDuration::from_millis(25);
        if i == 0 {
            t.election_min = SimDuration::from_millis(250);
            t.election_max = SimDuration::from_millis(300);
        }
        RaftNode::new(NodeId(i), cfg.clone(), t, root.split_indexed("n", i))
    });
    let workload = Workload::writes_only(
        (0..SITES).map(NodeId).collect(),
        64,
        Some(ops),
        SimTime::from_secs(3),
    );
    Runner::new(
        nodes,
        Network::reliable_lan((0..SITES).map(NodeId)),
        workload,
        Vec::new(),
        RunnerConfig {
            seed,
            ack_scope: LogScope::Global,
            measure_from: SimTime::from_secs(3),
            clock_skew: SimDuration::ZERO,
            disk_fsync_latency: SimDuration::from_millis(FSYNC_MS),
            unbatched_persists: unbatched,
            persist_stalls: None,
        },
        SafetyChecker::new(),
    )
}

fn cell(mode: &'static str, seed: u64, ops: u64) -> (CommitCell, Vec<(u64, u64)>) {
    let (unbatched, pipelined) = match mode {
        "grouped" => (false, false),
        "unbatched" => (true, false),
        "pipelined" => (false, true),
        _ => unreachable!(),
    };
    let mut r = runner(seed, ops, unbatched, pipelined);
    r.run_until(SimTime::from_secs(600));
    r.safety().assert_ok();
    let digests = (0..SITES)
        .map(|i| {
            let n = r.node(NodeId(i)).expect("node exists");
            assert_eq!(
                n.applied_index(),
                n.commit_index(),
                "{mode}: node {i} finished with an undrained apply queue"
            );
            (n.state_digest(), n.commit_index().as_u64())
        })
        .collect();
    let report = RunReport::assemble(
        mode,
        seed,
        r.now().as_secs_f64(),
        r.now().saturating_since(SimTime::from_secs(3)).as_secs_f64(),
        r.metrics(),
        r.net_stats(),
        r.safety(),
        r.completed(),
    );
    assert!(report.safety_ok, "{mode}: safety violated");
    assert!(
        report.completed >= ops,
        "{mode}: workload starved ({} / {ops})",
        report.completed
    );
    let c = CommitCell {
        mode,
        completed: report.completed,
        persist_batches: report.persist_batches,
        persist_cmds: report.persist_cmds,
        cmds_per_batch: report.cmds_per_batch,
        batches_per_commit: report.persist_batches as f64 / report.completed as f64,
        throughput_per_s: report.throughput_per_s,
        commit_mean_ms: report.latency.mean_ms,
    };
    (c, digests)
}

/// Runs the grouped / unbatched / pipelined triple.
///
/// # Panics
///
/// Panics when any cell violates safety or starves, when the unbatched twin
/// fails to charge one boundary per command, when group commit fails to cut
/// boundaries-per-commit or throughput against the unbatched twin, or when
/// the pipelined run's per-node digests diverge from the inline twin's.
pub fn run(seed: u64, ops: u64) -> CommitPathResult {
    let (grouped, inline_digests) = cell("grouped", seed, ops);
    let (unbatched, _) = cell("unbatched", seed, ops);
    let (pipelined, piped_digests) = cell("pipelined", seed, ops);
    assert!(
        (unbatched.cmds_per_batch - 1.0).abs() < 1e-9,
        "unbatched twin must charge one boundary per command, got {}",
        unbatched.cmds_per_batch
    );
    // The twins run different schedules (the per-command stall shifts every
    // downstream message), so command counts need not match exactly — but
    // serializing the fsyncs can only add retransmission work, never save
    // writes.
    assert!(
        unbatched.persist_cmds as f64 >= 0.95 * grouped.persist_cmds as f64,
        "unbatched twin persisted fewer commands than grouped: {} vs {}",
        unbatched.persist_cmds,
        grouped.persist_cmds
    );
    assert!(
        grouped.batches_per_commit < unbatched.batches_per_commit,
        "group commit failed to cut fsync boundaries: grouped={:.2} unbatched={:.2}",
        grouped.batches_per_commit,
        unbatched.batches_per_commit
    );
    assert!(
        grouped.throughput_per_s > unbatched.throughput_per_s,
        "group commit failed to win on throughput: grouped={:.1}/s unbatched={:.1}/s",
        grouped.throughput_per_s,
        unbatched.throughput_per_s
    );
    let digests_match = inline_digests == piped_digests;
    assert!(
        digests_match,
        "pipelined apply changed observable state: inline={inline_digests:?} piped={piped_digests:?}"
    );
    CommitPathResult {
        cells: vec![grouped, unbatched, pipelined],
        digests_match,
    }
}

impl CommitPathResult {
    /// Fsync-boundary ratio per committed entry, unbatched over grouped
    /// (> 1: group commit wins; the `BENCH_commit.json` headline).
    pub fn fsync_batch_ratio(&self) -> f64 {
        let (g, u) = (&self.cells[0], &self.cells[1]);
        if g.batches_per_commit <= 0.0 {
            0.0
        } else {
            u.batches_per_commit / g.batches_per_commit
        }
    }

    /// Throughput ratio, grouped over unbatched (> 1: group commit wins).
    pub fn tput_speedup(&self) -> f64 {
        let (g, u) = (&self.cells[0], &self.cells[1]);
        if u.throughput_per_s <= 0.0 {
            0.0
        } else {
            g.throughput_per_s / u.throughput_per_s
        }
    }

    /// Mean persist commands coalesced per fsync boundary in the grouped
    /// run.
    pub fn cmds_per_batch(&self) -> f64 {
        self.cells[0].cmds_per_batch
    }

    /// Throughput ratio, pipelined over grouped (apply is off the commit
    /// path, so ~1.0; gated so the drain stage never costs throughput).
    pub fn pipelined_tput_ratio(&self) -> f64 {
        let (g, p) = (&self.cells[0], &self.cells[2]);
        if g.throughput_per_s <= 0.0 {
            0.0
        } else {
            p.throughput_per_s / g.throughput_per_s
        }
    }

    /// Machine-readable JSON for the CI bench gate (higher is better for
    /// every series).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"bench\": \"commit_path\",\n  \"series\": {{\n    \
             \"commit/fsync_batch_ratio\": {:.3},\n    \
             \"commit/cmds_per_batch\": {:.3},\n    \
             \"commit/tput_speedup\": {:.3},\n    \
             \"commit/pipelined_tput_ratio\": {:.3}\n  }}\n}}\n",
            self.fsync_batch_ratio(),
            self.cmds_per_batch(),
            self.tput_speedup(),
            self.pipelined_tput_ratio(),
        )
    }

    /// Renders the probe.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Write-path probe: group commit + pipelined apply, fsync 10 ms modeled\n");
        out.push_str("mode        ops    batches     cmds   cmds/b  b/commit  tput/s   lat-ms\n");
        for c in &self.cells {
            out.push_str(&format!(
                "{:10}  {:5}  {:8}  {:7}  {:6.2}  {:8.3}  {:6.1}  {:7.2}\n",
                c.mode,
                c.completed,
                c.persist_batches,
                c.persist_cmds,
                c.cmds_per_batch,
                c.batches_per_commit,
                c.throughput_per_s,
                c.commit_mean_ms
            ));
        }
        out.push_str(&format!(
            "fsync ratio {:.2}x  tput speedup {:.2}x  pipelined/grouped {:.3}  digests {}\n",
            self.fsync_batch_ratio(),
            self.tput_speedup(),
            self.pipelined_tput_ratio(),
            if self.digests_match { "match" } else { "DIVERGED" }
        ));
        out
    }
}
