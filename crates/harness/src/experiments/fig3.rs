//! Fig. 3: mean commit latency of classic Raft vs Fast Raft under message
//! loss (five sites, one region, one closed-loop proposer, 100 committed
//! entries per trial, loss swept 0–10 %).

use serde::Serialize;

use crate::{run_classic_raft, run_fast_raft, Scenario};

/// One row of the figure: a loss rate and both protocols' latencies.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Fig3Row {
    /// Forced message-loss percentage.
    pub loss_pct: f64,
    /// Classic Raft mean commit latency (ms), averaged over trials.
    pub raft_ms: f64,
    /// Fast Raft mean commit latency (ms), averaged over trials.
    pub fast_ms: f64,
    /// Fraction of Fast Raft leader commits taken on the fast track.
    pub fast_track_ratio: f64,
}

/// The whole figure.
#[derive(Clone, Debug, Serialize)]
pub struct Fig3Result {
    /// One row per loss rate.
    pub rows: Vec<Fig3Row>,
    /// Fast Raft speedup (raft/fast latency ratio) at zero loss — the
    /// paper's headline "about half the latency".
    pub speedup_at_zero_loss: f64,
    /// The loss percentage where Fast Raft first becomes slower than
    /// classic Raft, if observed in the sweep.
    pub crossover_pct: Option<f64>,
}

/// Runs the sweep. `commits` proposals are measured per (protocol, loss,
/// seed) trial and trial means are averaged.
pub fn run(seeds: &[u64], losses_pct: &[f64], commits: u64) -> Fig3Result {
    assert!(!seeds.is_empty() && !losses_pct.is_empty());
    let mut rows = Vec::new();
    for &loss_pct in losses_pct {
        let loss = loss_pct / 100.0;
        let mut raft_acc = 0.0;
        let mut fast_acc = 0.0;
        let mut ratio_acc = 0.0;
        for &seed in seeds {
            let mut s = Scenario::fig3_base(seed, loss);
            s.target_commits = Some(commits);
            let (raft_report, _) = run_classic_raft(&s);
            let (fast_report, _) = run_fast_raft(&s);
            assert!(raft_report.safety_ok && fast_report.safety_ok);
            raft_acc += raft_report.latency.mean_ms;
            fast_acc += fast_report.latency.mean_ms;
            ratio_acc += fast_report.fast_track_ratio;
        }
        let n = seeds.len() as f64;
        rows.push(Fig3Row {
            loss_pct,
            raft_ms: raft_acc / n,
            fast_ms: fast_acc / n,
            fast_track_ratio: ratio_acc / n,
        });
    }
    let first = rows.first().expect("nonempty sweep");
    let speedup = if first.fast_ms > 0.0 {
        first.raft_ms / first.fast_ms
    } else {
        f64::INFINITY
    };
    let crossover = rows
        .iter()
        .find(|r| r.fast_ms > r.raft_ms)
        .map(|r| r.loss_pct);
    Fig3Result {
        rows,
        speedup_at_zero_loss: speedup,
        crossover_pct: crossover,
    }
}

impl Fig3Result {
    /// Renders the figure as the table the paper plots.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Fig 3: mean commit latency vs message loss (5 sites, 1 region)\n");
        out.push_str("loss%   raft(ms)  fast-raft(ms)  fast-track\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{:5.1} {} {}      {:5.1}%\n",
                r.loss_pct,
                super::fmt_ms(r.raft_ms),
                super::fmt_ms(r.fast_ms),
                r.fast_track_ratio * 100.0
            ));
        }
        out.push_str(&format!(
            "speedup at 0% loss: {:.2}x (paper: ~2x)\n",
            self.speedup_at_zero_loss
        ));
        match self.crossover_pct {
            Some(p) => out.push_str(&format!(
                "fast raft falls behind classic at ~{p:.0}% loss (paper: degrades past ~5%)\n"
            )),
            None => out.push_str("no crossover observed in this sweep\n"),
        }
        out
    }
}
