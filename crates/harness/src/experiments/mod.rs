//! One module per figure of the paper's evaluation, plus extension studies.
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`rounds`] | Figs. 1–2: message rounds per commit (classic 4 one-way hops proposer→notify, fast 3) |
//! | [`fig3`] | Fig. 3: mean commit latency vs. message loss, classic vs Fast Raft |
//! | [`fig4`] | Fig. 4: latency time series across a silent leave of 2/5 sites |
//! | [`fig5`] | Fig. 5: global throughput vs. cluster count, classic Raft vs C-Raft |
//! | [`ext`]  | Extensions: batch-size sweep, proposer contention, leader failover |
//! | [`residency`] | Long-run log residency: snapshot compaction bounds per-site memory |
//! | [`read_mix`] | Client-API probe: 50/50 linearizable-read/write sessions, dedup + lin-check |
//! | [`lease_mix`] | Leader-lease probe: lease-on vs lease-off twins on a read-heavy lin workload |
//! | [`commit_path`] | Write-path probe: group commit vs unbatched fsyncs, pipelined vs inline apply |
//!
//! Each experiment returns a structured result with a `render()` method that
//! prints the same rows/series the paper reports; the `bench` crate exposes
//! one binary per experiment.

pub mod commit_path;
pub mod ext;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod lease_mix;
pub mod read_mix;
pub mod residency;
pub mod rounds;

/// Formats a floating value for experiment tables.
pub(crate) fn fmt_ms(v: f64) -> String {
    format!("{v:8.2}")
}
