//! Read/write-mix probe: the workload-diversity unlock of the client API.
//!
//! Every pre-session experiment was 100% writes. This probe runs a 50/50
//! linearizable-read/write session workload over a Fast Raft cell (5 sites,
//! one region) and a C-Raft cell (2 clusters × 3 sites across regions,
//! where linearizable reads are **global** reads confirmed through the
//! global engine), with every read checked online for linearizability and a
//! crash/recover window in the fast cell exercising retry + session dedup.
//!
//! The CI gate watches two series per cell: write throughput (committed
//! values/s) and read speed (1000 / mean read latency ms — inverted so that
//! "higher is better" matches the gate's regression direction).

use des::{SimDuration, SimTime};
use serde::Serialize;
use wire::NodeId;

use crate::{
    run_craft, run_fast_raft, CRaftScenario, FaultAction, NetworkKind, ReadMix, Scenario,
};
use raft::Timing;

/// One protocol's mixed-workload measurements.
#[derive(Clone, Debug, Serialize)]
pub struct ReadMixCell {
    /// "fast" or "craft".
    pub protocol: &'static str,
    /// Completed client operations.
    pub completed: u64,
    /// Write throughput (committed values per measured second).
    pub write_tput: f64,
    /// Mean client-measured write latency (ms).
    pub write_mean_ms: f64,
    /// Mean client-measured read latency (ms).
    pub read_mean_ms: f64,
    /// p95 read latency (ms).
    pub read_p95_ms: f64,
    /// Linearizable reads verified by the safety checker.
    pub lin_reads_checked: u64,
    /// Server-side duplicate suppressions (retries recognized).
    pub duplicates_suppressed: u64,
    /// Client-side resubmissions.
    pub client_retries: u64,
}

impl ReadMixCell {
    /// 1000 / mean read latency — a "reads are fast" score where higher is
    /// better, so the CI gate's lower-bound check points the right way.
    pub fn read_speed(&self) -> f64 {
        if self.read_mean_ms <= 0.0 {
            0.0
        } else {
            1e3 / self.read_mean_ms
        }
    }
}

/// The probe result.
#[derive(Clone, Debug, Serialize)]
pub struct ReadMixResult {
    /// One cell per protocol.
    pub cells: Vec<ReadMixCell>,
}

fn fast_scenario(seed: u64, ops: u64) -> Scenario {
    let mut s = Scenario::fig3_base(seed, 0.0);
    s.proposers = vec![NodeId(1), NodeId(2)];
    s.target_commits = Some(ops);
    s.duration = SimDuration::from_secs(600);
    s.leader_bias = Some(NodeId(0));
    s.reads = Some(ReadMix::half_linearizable());
    // A proposer-side crash window: its in-flight (session, seq) is
    // resubmitted on recovery, exercising retry + duplicate suppression.
    s.faults = vec![
        (SimTime::from_secs(6), FaultAction::Crash(NodeId(2))),
        (SimTime::from_secs(8), FaultAction::Recover(NodeId(2))),
    ];
    s
}

fn craft_scenario(seed: u64, ops: u64) -> (Scenario, CRaftScenario) {
    let s = Scenario {
        seed,
        sites: 6,
        network: NetworkKind::Regions { regions: 2 },
        loss: 0.0,
        timing: Timing::lan(),
        proposers: vec![NodeId(1), NodeId(4)],
        payload_bytes: 64,
        target_commits: Some(ops),
        duration: SimDuration::from_secs(600),
        warmup: SimDuration::from_secs(5),
        faults: Vec::new(),
        leader_bias: None,
        reads: Some(ReadMix::half_linearizable()),
        unbatched_persists: false,
    };
    (s, CRaftScenario::paper(2))
}

/// Runs both cells.
///
/// # Panics
///
/// Panics when a cell violates safety, a linearizable read goes unchecked,
/// or the crash window fails to exercise the retry path.
pub fn run(seed: u64, ops: u64) -> ReadMixResult {
    let (fast, fast_metrics) = run_fast_raft(&fast_scenario(seed, ops));
    assert!(fast.safety_ok, "fast cell violated safety");
    assert!(
        fast.lin_reads_checked > 0,
        "fast cell: no linearizable read was checked"
    );

    let (s, c) = craft_scenario(seed, ops);
    let (craft, craft_metrics) = run_craft(&s, &c);
    assert!(craft.safety_ok, "craft cell violated safety");
    assert!(
        craft.lin_reads_checked > 0,
        "craft cell: no global read was confirmed"
    );

    ReadMixResult {
        cells: vec![
            ReadMixCell {
                protocol: "fast",
                completed: fast.completed,
                write_tput: fast.throughput_per_s,
                write_mean_ms: fast.latency.mean_ms,
                read_mean_ms: fast.read_latency.mean_ms,
                read_p95_ms: fast.read_latency.p95_ms,
                lin_reads_checked: fast.lin_reads_checked,
                duplicates_suppressed: fast.duplicates_suppressed,
                client_retries: fast.client_retries,
            },
            ReadMixCell {
                protocol: "craft",
                completed: craft.completed,
                write_tput: craft.throughput_per_s,
                write_mean_ms: craft.latency.mean_ms,
                read_mean_ms: craft.read_latency.mean_ms,
                read_p95_ms: craft.read_latency.p95_ms,
                lin_reads_checked: craft.lin_reads_checked,
                duplicates_suppressed: craft.duplicates_suppressed,
                client_retries: craft.client_retries,
            },
        ],
    }
    .also_checked(fast_metrics.read_samples.len(), craft_metrics.read_samples.len())
}

impl ReadMixResult {
    fn also_checked(self, fast_reads: usize, craft_reads: usize) -> Self {
        assert!(fast_reads > 0 && craft_reads > 0, "a cell completed no reads");
        self
    }

    /// Machine-readable JSON for the CI bench gate.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"bench\": \"read_mix\",\n  \"series\": {\n");
        for (i, c) in self.cells.iter().enumerate() {
            let comma = if i + 1 == self.cells.len() { "" } else { "," };
            s.push_str(&format!(
                "    \"{p}/wtput\": {t:.2},\n    \"{p}/rspeed\": {r:.2}{comma}\n",
                p = c.protocol,
                t = c.write_tput,
                r = c.read_speed(),
            ));
        }
        s.push_str("  }\n}\n");
        s
    }

    /// Renders the probe.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Read/write mix probe: 50/50 linearizable reads, sessions + dedup\n");
        out.push_str(
            "proto  ops    wtput   wlat-ms  rlat-ms  r-p95   lin-checked  dups  retries\n",
        );
        for c in &self.cells {
            out.push_str(&format!(
                "{:5}  {:5}  {:6.1}  {:7.2}  {:7.2}  {:6.2}  {:11}  {:4}  {:7}\n",
                c.protocol,
                c.completed,
                c.write_tput,
                c.write_mean_ms,
                c.read_mean_ms,
                c.read_p95_ms,
                c.lin_reads_checked,
                c.duplicates_suppressed,
                c.client_retries
            ));
        }
        out
    }
}
