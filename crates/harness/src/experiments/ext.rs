//! Extension experiments beyond the paper's figures (ablations listed in
//! DESIGN.md).

use des::{SimDuration, SimTime};
use serde::Serialize;
use wire::NodeId;

use crate::{
    run_craft, run_fast_raft, CRaftScenario, FaultAction, NetworkKind, Scenario,
};
use raft::Timing;

// ---------------------------------------------------------------------
// Ext-B: C-Raft batch-size sweep
// ---------------------------------------------------------------------

/// One row of the batch-size sweep.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct BatchRow {
    /// Local commits per global batch.
    pub batch_size: usize,
    /// Global throughput (entries/s).
    pub tput: f64,
    /// Mean proposer-visible (local commit) latency, ms.
    pub local_latency_ms: f64,
    /// Inter-region bytes per committed entry.
    pub wan_bytes_per_entry: f64,
}

/// Sweep result.
#[derive(Clone, Debug, Serialize)]
pub struct BatchSweepResult {
    /// One row per batch size.
    pub rows: Vec<BatchRow>,
}

/// Runs the batch sweep on an 8-cluster, 40-site deployment (doubled from
/// the original 4x20 so the sweep exercises the fan-out the zero-copy
/// fabric targets).
pub fn batch_sweep(seed: u64, batch_sizes: &[usize], secs: u64) -> BatchSweepResult {
    let clusters = 8u64;
    let sites = 40u64;
    let per = sites / clusters;
    let proposers: Vec<NodeId> = (0..clusters).map(|c| NodeId(c * per + 1)).collect();
    let mut rows = Vec::new();
    for &batch_size in batch_sizes {
        let s = Scenario {
            seed,
            sites,
            network: NetworkKind::Regions { regions: clusters },
            loss: 0.0,
            timing: Timing::lan(),
            proposers: proposers.clone(),
            payload_bytes: 64,
            target_commits: None,
            duration: SimDuration::from_secs(secs + 10),
            warmup: SimDuration::from_secs(10),
            faults: Vec::new(),
            leader_bias: None,
            reads: None,
            unbatched_persists: false,
        };
        let craft = CRaftScenario {
            clusters,
            batch_size,
            max_batch_bytes: Timing::wan().max_bytes_per_append,
            global_snapshot_threshold: Timing::wan().snapshot_threshold,
            global_timing: Timing::wan(),
            global_proposal_mode: consensus_core::ProposalMode::LeaderForward,
        };
        let (report, _) = run_craft(&s, &craft);
        assert!(report.safety_ok);
        let entries = report.global_items.max(1);
        rows.push(BatchRow {
            batch_size,
            tput: report.throughput_per_s,
            local_latency_ms: report.latency.mean_ms,
            wan_bytes_per_entry: report.net.inter_region_bytes as f64 / entries as f64,
        });
    }
    BatchSweepResult { rows }
}

impl BatchSweepResult {
    /// Machine-readable JSON for the CI bench gate: one flat `series`
    /// object mapping `craft/b<batch>` to throughput (entries/s).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"bench\": \"ext_batch\",\n  \"series\": {\n");
        for (i, r) in self.rows.iter().enumerate() {
            let comma = if i + 1 == self.rows.len() { "" } else { "," };
            s.push_str(&format!(
                "    \"craft/b{}\": {:.2}{}\n",
                r.batch_size, r.tput, comma
            ));
        }
        s.push_str("  }\n}\n");
        s
    }

    /// Renders the sweep.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Ext-B: C-Raft batch-size sweep (8 clusters, 40 sites)\n");
        out.push_str("batch   tput(entries/s)  local-lat(ms)  wan-bytes/entry\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{:5}   {:15.2}  {:13.2}  {:15.0}\n",
                r.batch_size, r.tput, r.local_latency_ms, r.wan_bytes_per_entry
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------
// Ext-C: proposer contention on the fast track
// ---------------------------------------------------------------------

/// One row of the contention study.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct ContentionRow {
    /// Number of concurrent closed-loop proposers.
    pub proposers: usize,
    /// Mean commit latency (ms).
    pub latency_ms: f64,
    /// Fraction of leader commits on the fast track.
    pub fast_track_ratio: f64,
    /// Aggregate commit throughput (proposals/s).
    pub tput: f64,
}

/// The contention study result.
#[derive(Clone, Debug, Serialize)]
pub struct ContentionResult {
    /// One row per proposer count.
    pub rows: Vec<ContentionRow>,
}

/// Measures how concurrent proposals erode Fast Raft's fast track
/// (the liveness condition of §IV-F motivates this).
pub fn contention(seed: u64, max_proposers: usize, secs: u64) -> ContentionResult {
    let mut rows = Vec::new();
    for k in 1..=max_proposers {
        let proposers: Vec<NodeId> = (0..k as u64).map(NodeId).collect();
        let s = Scenario {
            seed,
            sites: 5,
            network: NetworkKind::SingleRegion,
            loss: 0.0,
            timing: Timing::lan(),
            proposers,
            payload_bytes: 64,
            target_commits: None,
            duration: SimDuration::from_secs(secs + 3),
            warmup: SimDuration::from_secs(3),
            faults: Vec::new(),
            leader_bias: None,
            reads: None,
            unbatched_persists: false,
        };
        let (report, metrics) = run_fast_raft(&s);
        assert!(report.safety_ok);
        rows.push(ContentionRow {
            proposers: k,
            latency_ms: report.latency.mean_ms,
            fast_track_ratio: report.fast_track_ratio,
            tput: metrics.samples.len() as f64 / secs as f64,
        });
    }
    ContentionResult { rows }
}

impl ContentionResult {
    /// Renders the study.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Ext-C: concurrent proposers vs the fast track (Fast Raft, 5 sites, 0% loss)\n");
        out.push_str("proposers  latency(ms)  fast-track  commits/s\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{:9}  {:11.2}  {:9.1}%  {:9.1}\n",
                r.proposers,
                r.latency_ms,
                r.fast_track_ratio * 100.0,
                r.tput
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------
// Ext-D: leader-failure recovery gap
// ---------------------------------------------------------------------

/// Result of the failover study.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct FailoverResult {
    /// When the leader crashed (s).
    pub crash_at_s: f64,
    /// Largest gap between consecutive commits around the crash (ms) —
    /// the unavailability window.
    pub outage_ms: f64,
    /// Mean latency before the crash (ms).
    pub before_ms: f64,
    /// Mean latency after recovery (ms).
    pub after_ms: f64,
    /// Elections observed.
    pub elections: u64,
    /// Times the new leader's liveness guard repaired a blocked log hole
    /// (the ROADMAP "measure how often this path triggers" number).
    pub hole_repairs: u64,
    /// Whether safety held.
    pub safety_ok: bool,
}

/// Crashes every plausible initial leader candidate at `crash_at_s` (the
/// node that won the first election is the one whose crash matters; we
/// crash node 0 and pick a seed where node 0 leads — asserted via the
/// leadership count staying ≥ 2).
pub fn failover(seed: u64, crash_at_s: u64, total_s: u64) -> FailoverResult {
    let crash_at = SimTime::from_secs(crash_at_s);
    let s = Scenario {
        seed,
        sites: 5,
        network: NetworkKind::SingleRegion,
        loss: 0.0,
        timing: Timing::lan(),
        proposers: vec![NodeId(2)],
        payload_bytes: 64,
        target_commits: None,
        duration: SimDuration::from_secs(total_s),
        warmup: SimDuration::from_secs(3),
        faults: vec![(crash_at, FaultAction::Crash(NodeId(0)))],
        leader_bias: Some(NodeId(0)),
        reads: None,
        unbatched_persists: false,
    };
    let (report, metrics) = run_fast_raft(&s);
    let crash_s = crash_at.as_secs_f64();
    let mut outage_ms: f64 = 0.0;
    let mut prev = crash_s;
    for sample in &metrics.samples {
        let t = sample.committed_at.as_secs_f64();
        if t >= crash_s {
            outage_ms = outage_ms.max((t - prev) * 1e3);
            prev = t;
        } else {
            prev = t;
        }
    }
    let mean = |f: &dyn Fn(f64) -> bool| {
        let pts: Vec<f64> = metrics
            .samples
            .iter()
            .filter(|p| f(p.committed_at.as_secs_f64()))
            .map(|p| p.latency().as_millis_f64())
            .collect();
        if pts.is_empty() {
            0.0
        } else {
            pts.iter().sum::<f64>() / pts.len() as f64
        }
    };
    FailoverResult {
        crash_at_s: crash_s,
        outage_ms,
        before_ms: mean(&|t| t < crash_s),
        after_ms: mean(&|t| t > crash_s + 2.0),
        elections: report.elections,
        hole_repairs: report.hole_repairs,
        safety_ok: report.safety_ok,
    }
}

impl FailoverResult {
    /// Renders the study.
    pub fn render(&self) -> String {
        format!(
            "Ext-D: leader crash at t={:.0}s (Fast Raft, 5 sites)\n\
             outage window: {:.0}ms | elections: {} | hole repairs: {} | latency before {:.1}ms, after {:.1}ms | safety: {}\n",
            self.crash_at_s,
            self.outage_ms,
            self.elections,
            self.hole_repairs,
            self.before_ms,
            self.after_ms,
            if self.safety_ok { "OK" } else { "VIOLATED" }
        )
    }
}

// ---------------------------------------------------------------------
// Ext-A: global proposal-mode ablation
// ---------------------------------------------------------------------

/// One row of the proposal-mode ablation.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct ModeRow {
    /// Number of clusters.
    pub clusters: u64,
    /// Throughput with the paper-literal broadcast fast track.
    pub broadcast_tput: f64,
    /// Throughput with leader-forwarded batches.
    pub forward_tput: f64,
}

/// The ablation result.
#[derive(Clone, Debug, Serialize)]
pub struct ModeAblationResult {
    /// One row per cluster count.
    pub rows: Vec<ModeRow>,
}

/// Compares C-Raft's global proposal modes: the paper-literal broadcast
/// fast track collides under concurrent per-cluster batch proposals
/// (§IV-F's liveness caveat), while leader forwarding keeps index
/// assignment contention-free.
pub fn mode_ablation(seed: u64, cluster_counts: &[u64], secs: u64) -> ModeAblationResult {
    let sites = 20u64;
    let mut rows = Vec::new();
    for &clusters in cluster_counts {
        let per = sites / clusters;
        let proposers: Vec<NodeId> = (0..clusters).map(|c| NodeId(c * per + 1 % per)).collect();
        let s = Scenario {
            seed,
            sites,
            network: NetworkKind::Regions { regions: clusters },
            loss: 0.0,
            timing: Timing::lan(),
            proposers,
            payload_bytes: 64,
            target_commits: None,
            duration: SimDuration::from_secs(secs + 10),
            warmup: SimDuration::from_secs(10),
            faults: Vec::new(),
            leader_bias: None,
            reads: None,
            unbatched_persists: false,
        };
        let mut broadcast = CRaftScenario::paper(clusters);
        broadcast.global_proposal_mode = consensus_core::ProposalMode::Broadcast;
        let forward = CRaftScenario::paper(clusters);
        let (b, _) = run_craft(&s, &broadcast);
        let (f, _) = run_craft(&s, &forward);
        assert!(b.safety_ok && f.safety_ok);
        rows.push(ModeRow {
            clusters,
            broadcast_tput: b.throughput_per_s,
            forward_tput: f.throughput_per_s,
        });
    }
    ModeAblationResult { rows }
}

impl ModeAblationResult {
    /// Renders the ablation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "Ext-A: C-Raft global proposal mode (broadcast fast track vs leader forward)\n",
        );
        out.push_str("clusters  broadcast(entries/s)  leader-forward(entries/s)\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{:8}  {:20.2}  {:25.2}\n",
                r.clusters, r.broadcast_tput, r.forward_tput
            ));
        }
        out.push_str(
            "(broadcast collapses as concurrent clusters collide on global indices;\n\
             leader forwarding matches the paper's scaling)\n",
        );
        out
    }
}


// ---------------------------------------------------------------------
// Ext-E: bursty vs i.i.d. loss at equal average rates
// ---------------------------------------------------------------------

/// One row of the burst study.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct BurstRow {
    /// Stationary loss rate (%).
    pub loss_pct: f64,
    /// Fast Raft latency under i.i.d. loss (ms).
    pub iid_ms: f64,
    /// Fast Raft latency under bursty loss at the same rate (ms).
    pub bursty_ms: f64,
    /// Fast-track share under i.i.d. loss.
    pub iid_fast_ratio: f64,
    /// Fast-track share under bursty loss.
    pub bursty_fast_ratio: f64,
}

/// Burst study result.
#[derive(Clone, Debug, Serialize)]
pub struct BurstResult {
    /// One row per loss rate.
    pub rows: Vec<BurstRow>,
}

/// Compares Fast Raft under Bernoulli vs Gilbert–Elliott loss with equal
/// stationary rates (mean burst length 5) — correlated drops take out whole
/// vote rounds at once, hurting the fast track more than their average rate
/// suggests.
pub fn burst(seed: u64, losses_pct: &[f64], commits: u64) -> BurstResult {
    let mut rows = Vec::new();
    for &loss_pct in losses_pct {
        let loss = loss_pct / 100.0;
        let mut iid = Scenario::fig3_base(seed, loss);
        iid.target_commits = Some(commits);
        let mut bursty = iid.clone();
        bursty.network = NetworkKind::SingleRegionBursty { mean_burst: 5.0 };
        let (iid_report, _) = run_fast_raft(&iid);
        let (bursty_report, _) = run_fast_raft(&bursty);
        assert!(iid_report.safety_ok && bursty_report.safety_ok);
        rows.push(BurstRow {
            loss_pct,
            iid_ms: iid_report.latency.mean_ms,
            bursty_ms: bursty_report.latency.mean_ms,
            iid_fast_ratio: iid_report.fast_track_ratio,
            bursty_fast_ratio: bursty_report.fast_track_ratio,
        });
    }
    BurstResult { rows }
}

impl BurstResult {
    /// Renders the study.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Ext-E: i.i.d. vs bursty loss (Fast Raft, equal stationary rates, burst~5)\n");
        out.push_str("loss%   iid(ms)  bursty(ms)  iid-fast  bursty-fast\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{:5.1} {:9.2} {:11.2} {:8.1}% {:11.1}%\n",
                r.loss_pct,
                r.iid_ms,
                r.bursty_ms,
                r.iid_fast_ratio * 100.0,
                r.bursty_fast_ratio * 100.0
            ));
        }
        out
    }
}
