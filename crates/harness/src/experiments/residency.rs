//! Long-run log-residency probe: demonstrates that snapshot + compaction
//! bounds peak per-site log residency (vs. linear growth with compaction
//! off) at unchanged committed throughput, and that a site rejoining after
//! the compaction horizon passed it catches up via snapshot transfer —
//! for both Fast Raft and C-Raft.

use des::{SimDuration, SimTime};
use serde::Serialize;
use wire::NodeId;

use crate::{
    run_craft, run_fast_raft, CRaftScenario, FaultAction, NetworkKind, Scenario,
};
use raft::Timing;

/// One protocol's compaction-on vs compaction-off comparison.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct ResidencyCell {
    /// "fast" or "craft".
    pub protocol: &'static str,
    /// The snapshot threshold used in the compacting run.
    pub threshold: u64,
    /// Peak per-site retained log entries with compaction on.
    pub peak_on: u64,
    /// Peak per-site retained log entries with compaction off.
    pub peak_off: u64,
    /// Committed throughput with compaction on (entries/s).
    pub tput_on: f64,
    /// Committed throughput with compaction off.
    pub tput_off: f64,
    /// Compactions performed in the compacting run.
    pub compactions: u64,
    /// Snapshots installed in the compacting run (the rejoin path).
    pub snapshot_installs: u64,
}

impl ResidencyCell {
    /// How many times smaller the bounded peak is than unbounded growth —
    /// the number the CI gate watches (a regression towards 1.0 means
    /// compaction stopped bounding memory).
    pub fn bound_ratio(&self) -> f64 {
        if self.peak_on == 0 {
            return 0.0;
        }
        self.peak_off as f64 / self.peak_on as f64
    }
}

/// The probe result.
#[derive(Clone, Debug, Serialize)]
pub struct ResidencyResult {
    /// One cell per protocol.
    pub cells: Vec<ResidencyCell>,
}

/// Fast Raft cell: 5 sites, one region, two proposers, one site absent
/// through the middle of the run (rejoining after the horizon passed it).
fn fast_scenario(seed: u64, secs: u64, threshold: u64) -> Scenario {
    Scenario {
        seed,
        sites: 5,
        network: NetworkKind::SingleRegion,
        loss: 0.0,
        timing: Timing {
            snapshot_threshold: threshold,
            ..Timing::lan()
        },
        proposers: vec![NodeId(1), NodeId(2)],
        payload_bytes: 64,
        target_commits: None,
        duration: SimDuration::from_secs(secs),
        warmup: SimDuration::from_secs(3),
        faults: vec![
            (SimTime::from_secs(secs / 4), FaultAction::Crash(NodeId(4))),
            (
                SimTime::from_secs(secs * 3 / 4),
                FaultAction::Recover(NodeId(4)),
            ),
        ],
        leader_bias: Some(NodeId(0)),
        reads: None,
        unbatched_persists: false,
    }
}

/// C-Raft cell: 3 clusters of 3, batch size 1 so the global log grows at
/// local-commit rate; cluster 0's leader dies mid-run, forcing its
/// successor to join the global level past the compaction horizon.
fn craft_scenario(seed: u64, secs: u64, threshold: u64) -> (Scenario, CRaftScenario) {
    let clusters = 3u64;
    let s = Scenario {
        seed,
        sites: 9,
        network: NetworkKind::Regions { regions: clusters },
        loss: 0.0,
        timing: Timing {
            snapshot_threshold: threshold,
            ..Timing::lan()
        },
        proposers: vec![NodeId(1), NodeId(4), NodeId(7)],
        payload_bytes: 64,
        target_commits: None,
        duration: SimDuration::from_secs(secs),
        warmup: SimDuration::from_secs(5),
        faults: vec![(SimTime::from_secs(secs / 3), FaultAction::Crash(NodeId(0)))],
        leader_bias: None,
        reads: None,
        unbatched_persists: false,
    };
    let mut c = CRaftScenario::paper(clusters);
    c.batch_size = 1;
    c.max_batch_bytes = 0;
    c.global_snapshot_threshold = threshold;
    (s, c)
}

/// Runs both cells, each with compaction on (`threshold`) and off (0).
pub fn run(seed: u64, secs: u64, threshold: u64) -> ResidencyResult {
    let (fast_on, _) = run_fast_raft(&fast_scenario(seed, secs, threshold));
    let (fast_off, _) = run_fast_raft(&fast_scenario(seed, secs, 0));
    assert!(fast_on.safety_ok && fast_off.safety_ok);

    let (s_on, c_on) = craft_scenario(seed, secs, threshold);
    let (s_off, c_off) = craft_scenario(seed, secs, 0);
    let (craft_on, _) = run_craft(&s_on, &c_on);
    let (craft_off, _) = run_craft(&s_off, &c_off);
    assert!(craft_on.safety_ok && craft_off.safety_ok);

    ResidencyResult {
        cells: vec![
            ResidencyCell {
                protocol: "fast",
                threshold,
                peak_on: fast_on.peak_log_residency,
                peak_off: fast_off.peak_log_residency,
                tput_on: fast_on.throughput_per_s,
                tput_off: fast_off.throughput_per_s,
                compactions: fast_on.compactions,
                snapshot_installs: fast_on.snapshot_installs,
            },
            ResidencyCell {
                protocol: "craft",
                threshold,
                peak_on: craft_on.peak_log_residency,
                peak_off: craft_off.peak_log_residency,
                tput_on: craft_on.throughput_per_s,
                tput_off: craft_off.throughput_per_s,
                compactions: craft_on.compactions,
                snapshot_installs: craft_on.snapshot_installs,
            },
        ],
    }
}

impl ResidencyResult {
    /// Machine-readable JSON for the CI bench gate: throughput (regression
    /// = slower) and bound ratio (regression = compaction stopped bounding
    /// residency) per protocol.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"bench\": \"residency\",\n  \"series\": {\n");
        for (i, c) in self.cells.iter().enumerate() {
            let comma = if i + 1 == self.cells.len() { "" } else { "," };
            s.push_str(&format!(
                "    \"{p}/tput\": {t:.2},\n    \"{p}/bound_ratio\": {r:.2}{comma}\n",
                p = c.protocol,
                t = c.tput_on,
                r = c.bound_ratio(),
            ));
        }
        s.push_str("  }\n}\n");
        s
    }

    /// Renders the probe.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Long-run residency probe: snapshot compaction on vs off\n");
        out.push_str(
            "proto  thresh  peak-on  peak-off  bound  tput-on  tput-off  compact  installs\n",
        );
        for c in &self.cells {
            out.push_str(&format!(
                "{:5}  {:6}  {:7}  {:8}  {:4.1}x  {:7.1}  {:8.1}  {:7}  {:8}\n",
                c.protocol,
                c.threshold,
                c.peak_on,
                c.peak_off,
                c.bound_ratio(),
                c.tput_on,
                c.tput_off,
                c.compactions,
                c.snapshot_installs
            ));
        }
        out
    }
}
