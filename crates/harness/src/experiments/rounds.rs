//! Figs. 1–2 as a measurement: the number of one-way message delays between
//! proposing a value and the proposer learning of its commit.
//!
//! The paper's flow diagrams give classic Raft four hops (P→L, L→F, F→L,
//! L→P) and Fast Raft three (P→all, F→L, L→P). On a network with a constant
//! one-way delay `D` and leader tick intervals made negligible, measured
//! latency divided by `D` recovers the hop count.

use des::{SimDuration, SimRng};
use serde::Serialize;
use wire::NodeId;

use crate::{run_classic_raft, run_fast_raft, NetworkKind, Scenario};
use raft::Timing;

/// The measured hop counts.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct RoundsResult {
    /// One-way delay used (ms).
    pub one_way_ms: f64,
    /// Classic Raft mean latency (ms).
    pub raft_ms: f64,
    /// Fast Raft mean latency (ms).
    pub fast_ms: f64,
    /// Classic Raft hops = latency / delay.
    pub raft_hops: f64,
    /// Fast Raft hops.
    pub fast_hops: f64,
}

/// Runs the measurement with a 10 ms one-way delay and near-zero ticks.
pub fn run(seed: u64, commits: u64) -> RoundsResult {
    let one_way = SimDuration::from_millis(10);
    // Shrink all leader periodicity so network delays dominate.
    let timing = Timing {
        heartbeat: SimDuration::from_millis(1),
        decision_tick: SimDuration::from_millis(1),
        election_min: SimDuration::from_millis(3000),
        election_max: SimDuration::from_millis(4000),
        proposal_timeout: SimDuration::from_millis(2000),
        join_timeout: SimDuration::from_millis(2000),
        member_timeout_beats: 2000,
        hole_fill_ticks: 500,
        max_entries_per_append: 128,
        max_bytes_per_append: 64 * 1024,
        snapshot_threshold: 1024,
        session_ttl: 0,
        // Leases disabled: this experiment measures write commit hops and
        // its figures predate (and are independent of) the read lease.
        lease_duration: SimDuration::ZERO,
        max_clock_skew: SimDuration::ZERO,
        disk_fsync_latency: SimDuration::ZERO,
        pipelined_apply: false,
    };
    // Proposer chosen among followers (the figures draw P distinct from L).
    let mut rng = SimRng::seed_from_u64(seed ^ 0x0F16);
    let proposer = NodeId(rng.gen_range(1..5u64));
    let scenario = Scenario {
        seed,
        sites: 5,
        network: NetworkKind::ConstantDelay {
            one_way_us: one_way.as_micros(),
        },
        loss: 0.0,
        timing,
        proposers: vec![proposer],
        payload_bytes: 64,
        target_commits: Some(commits),
        duration: SimDuration::from_secs(600),
        warmup: SimDuration::from_secs(5),
        faults: Vec::new(),
        leader_bias: Some(NodeId(0)),
        reads: None,
        unbatched_persists: false,
    };
    let (raft_report, _) = run_classic_raft(&scenario);
    let (fast_report, _) = run_fast_raft(&scenario);
    assert!(raft_report.safety_ok && fast_report.safety_ok);
    let d = one_way.as_millis_f64();
    RoundsResult {
        one_way_ms: d,
        raft_ms: raft_report.latency.mean_ms,
        fast_ms: fast_report.latency.mean_ms,
        raft_hops: raft_report.latency.mean_ms / d,
        fast_hops: fast_report.latency.mean_ms / d,
    }
}

impl RoundsResult {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        format!(
            "Figs 1-2: message rounds per committed proposal (one-way delay {:.0}ms)\n\
             classic raft: {:.2}ms  = {:.2} one-way hops (paper flow: 4)\n\
             fast raft:    {:.2}ms  = {:.2} one-way hops (paper flow: 3)\n\
             commit at leader: classic 3 hops vs fast 2 hops -- \"from three rounds to two\"\n",
            self.one_way_ms, self.raft_ms, self.raft_hops, self.fast_ms, self.fast_hops
        )
    }
}
