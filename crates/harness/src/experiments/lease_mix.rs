//! Leader-lease probe: what the lease buys on a read-heavy workload.
//!
//! Runs the same read-heavy linearizable workload (80/20 reads/writes over
//! a 5-site Fast Raft cell, leader crash + recovery mid-run) twice from one
//! seed: once with the leases configured by [`raft::Timing::lan`], once with
//! `lease_duration = 0` so every linearizable read pays the ReadIndex
//! quorum round. The deterministic simulator makes the pair directly
//! comparable:
//!
//! - with leases on, the majority of linearizable reads are served locally
//!   (`lease_reads > readindex_reads`) and the run offers **fewer messages
//!   to the network** than the lease-off twin — the lease read's zero
//!   message cost, visible end-to-end rather than asserted per-call;
//! - mean read latency drops, because a local answer beats a quorum round
//!   trip;
//! - the crash window forces the ReadIndex fallback (the new leader's
//!   enable barrier), so both paths are exercised in the same run and the
//!   online linearizability checker holds across the leadership change.

use des::{SimDuration, SimTime};
use serde::Serialize;
use wire::NodeId;

use crate::{run_fast_raft, FaultAction, ReadMix, Scenario};
use wire::Consistency;

/// One twin's measurements.
#[derive(Clone, Debug, Serialize)]
pub struct LeaseCell {
    /// "lease-on" or "lease-off".
    pub mode: &'static str,
    /// Completed client operations.
    pub completed: u64,
    /// Linearizable reads served from a live lease (zero messages).
    pub lease_reads: u64,
    /// Linearizable reads that paid the ReadIndex quorum round.
    pub readindex_reads: u64,
    /// Mean client-measured read latency (ms).
    pub read_mean_ms: f64,
    /// p95 read latency (ms).
    pub read_p95_ms: f64,
    /// Messages offered to the network over the whole run.
    pub messages_offered: u64,
    /// Leaderships assumed (≥ 2: the crash forced a change).
    pub leaderships: u64,
    /// Linearizable reads verified by the online checker.
    pub lin_reads_checked: u64,
}

/// The probe result: the lease-on/lease-off twin runs plus derived series.
#[derive(Clone, Debug, Serialize)]
pub struct LeaseMixResult {
    /// `[lease-on, lease-off]`.
    pub cells: Vec<LeaseCell>,
}

fn scenario(seed: u64, ops: u64, lease_on: bool) -> Scenario {
    let mut s = Scenario::fig3_base(seed, 0.0);
    s.proposers = vec![NodeId(4)];
    s.target_commits = Some(ops);
    s.duration = SimDuration::from_secs(600);
    s.leader_bias = Some(NodeId(0));
    s.reads = Some(ReadMix {
        ratio: 0.8,
        consistency: Consistency::Linearizable,
        final_read: true,
    });
    // Crash the biased leader shortly after clients start (warmup 3 s) so
    // the leadership change — and the new leader's lease enable barrier —
    // land mid-workload.
    s.faults = vec![
        (SimTime::from_millis(3400), FaultAction::Crash(NodeId(0))),
        (SimTime::from_secs(10), FaultAction::Recover(NodeId(0))),
    ];
    if !lease_on {
        s.timing.lease_duration = SimDuration::ZERO;
        s.timing.max_clock_skew = SimDuration::ZERO;
    }
    s
}

/// Runs the lease-on / lease-off twins.
///
/// # Panics
///
/// Panics when either twin violates safety, when leases fail to serve the
/// majority of linearizable reads (lease-on), when a lease read appears
/// with leases disabled, or when the lease run fails to beat its twin on
/// both message count and mean read latency.
pub fn run(seed: u64, ops: u64) -> LeaseMixResult {
    let cells: Vec<LeaseCell> = [true, false]
        .into_iter()
        .map(|lease_on| {
            let (report, _) = run_fast_raft(&scenario(seed, ops, lease_on));
            assert!(report.safety_ok, "lease_on={lease_on}: safety violated");
            assert!(
                report.leaderships >= 2,
                "lease_on={lease_on}: the crash never forced a new leader"
            );
            assert!(report.lin_reads_checked > 0);
            LeaseCell {
                mode: if lease_on { "lease-on" } else { "lease-off" },
                completed: report.completed,
                lease_reads: report.lease_reads,
                readindex_reads: report.readindex_reads,
                read_mean_ms: report.read_latency.mean_ms,
                read_p95_ms: report.read_latency.p95_ms,
                messages_offered: report.net.offered,
                leaderships: report.leaderships,
                lin_reads_checked: report.lin_reads_checked,
            }
        })
        .collect();
    let (on, off) = (&cells[0], &cells[1]);
    assert!(
        on.lease_reads > on.readindex_reads,
        "leases must serve the majority of lin reads: lease={} readindex={}",
        on.lease_reads,
        on.readindex_reads
    );
    assert!(
        on.readindex_reads > 0,
        "the crash window never exercised the ReadIndex fallback"
    );
    assert_eq!(
        off.lease_reads, 0,
        "a lease read appeared with lease_duration = 0"
    );
    // Zero message cost, end-to-end: same workload, strictly less traffic.
    assert!(
        on.messages_offered < off.messages_offered,
        "lease reads must remove the quorum round from the wire: on={} off={}",
        on.messages_offered,
        off.messages_offered
    );
    assert!(
        on.read_mean_ms < off.read_mean_ms,
        "local lease reads must beat the quorum round: on={:.3}ms off={:.3}ms",
        on.read_mean_ms,
        off.read_mean_ms
    );
    LeaseMixResult { cells }
}

impl LeaseMixResult {
    /// Fraction of linearizable reads the lease served locally (lease-on).
    pub fn lease_share(&self) -> f64 {
        let on = &self.cells[0];
        let total = on.lease_reads + on.readindex_reads;
        if total == 0 {
            0.0
        } else {
            on.lease_reads as f64 / total as f64
        }
    }

    /// Mean-read-latency ratio, lease-off over lease-on (> 1: leases win).
    pub fn read_speedup(&self) -> f64 {
        if self.cells[0].read_mean_ms <= 0.0 {
            0.0
        } else {
            self.cells[1].read_mean_ms / self.cells[0].read_mean_ms
        }
    }

    /// Messages the lease run kept off the wire, per lease-served read.
    pub fn msgs_saved_per_lease_read(&self) -> f64 {
        let (on, off) = (&self.cells[0], &self.cells[1]);
        if on.lease_reads == 0 {
            0.0
        } else {
            off.messages_offered.saturating_sub(on.messages_offered) as f64
                / on.lease_reads as f64
        }
    }

    /// Machine-readable JSON for the CI bench gate (higher is better for
    /// every series).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"bench\": \"lease_mix\",\n  \"series\": {{\n    \
             \"lease/share\": {:.4},\n    \
             \"lease/read_speedup\": {:.3},\n    \
             \"lease/msgs_saved_per_read\": {:.3}\n  }}\n}}\n",
            self.lease_share(),
            self.read_speedup(),
            self.msgs_saved_per_lease_read(),
        )
    }

    /// Renders the probe.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Leader-lease probe: read-heavy lin workload, leader crash mid-run\n");
        out.push_str("mode       ops    lease  readidx  rlat-ms  r-p95   msgs     ldrs\n");
        for c in &self.cells {
            out.push_str(&format!(
                "{:9}  {:5}  {:5}  {:7}  {:7.2}  {:6.2}  {:7}  {:4}\n",
                c.mode,
                c.completed,
                c.lease_reads,
                c.readindex_reads,
                c.read_mean_ms,
                c.read_p95_ms,
                c.messages_offered,
                c.leaderships
            ));
        }
        out.push_str(&format!(
            "lease share {:.1}%  read speedup {:.2}x  msgs saved/read {:.1}\n",
            100.0 * self.lease_share(),
            self.read_speedup(),
            self.msgs_saved_per_lease_read()
        ));
        out
    }
}
