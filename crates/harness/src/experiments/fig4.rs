//! Fig. 4: commit-latency time series while two of five sites silently
//! leave (5 % loss, member timeout of five missed heartbeat responses).

use des::{SimDuration, SimTime};
use serde::Serialize;
use wire::NodeId;

use crate::{run_fast_raft, FaultAction, NetworkKind, Scenario};
use raft::Timing;

/// One plotted proposal.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Fig4Point {
    /// Completion time (simulated seconds).
    pub t_s: f64,
    /// Commit latency (ms).
    pub latency_ms: f64,
}

/// The whole figure.
#[derive(Clone, Debug, Serialize)]
pub struct Fig4Result {
    /// Per-proposal series.
    pub points: Vec<Fig4Point>,
    /// When the two sites left (the figure's vertical red line).
    pub leave_at_s: f64,
    /// Mean latency before the leave.
    pub before_ms: f64,
    /// Peak latency in the disruption window after the leave.
    pub peak_after_ms: f64,
    /// Mean latency after the configuration change committed.
    pub recovered_ms: f64,
    /// Members the leader suspected (expected: the two leavers).
    pub members_suspected: u64,
    /// Whether safety held.
    pub safety_ok: bool,
}

/// Runs the experiment: five sites, nodes 3 and 4 leave silently at
/// `leave_at_s` seconds; the run lasts `total_s` seconds.
pub fn run(seed: u64, leave_at_s: u64, total_s: u64) -> Fig4Result {
    let leave_at = SimTime::from_secs(leave_at_s);
    let scenario = Scenario {
        seed,
        sites: 5,
        network: NetworkKind::SingleRegion,
        loss: 0.05,
        timing: Timing::lan(),
        proposers: vec![NodeId(1)],
        payload_bytes: 64,
        target_commits: None,
        duration: SimDuration::from_secs(total_s),
        warmup: SimDuration::from_secs(3),
        faults: vec![
            (leave_at, FaultAction::SilentLeave(NodeId(3))),
            (leave_at, FaultAction::SilentLeave(NodeId(4))),
        ],
        leader_bias: Some(NodeId(0)),
        reads: None,
        unbatched_persists: false,
    };
    let (report, metrics) = run_fast_raft(&scenario);
    let points: Vec<Fig4Point> = metrics
        .samples
        .iter()
        .map(|s| Fig4Point {
            t_s: s.committed_at.as_secs_f64(),
            latency_ms: s.latency().as_millis_f64(),
        })
        .collect();
    let leave_s = leave_at.as_secs_f64();
    // Disruption window: from the leave until the member timeout plus
    // reconfiguration can complete (5 missed beats * 100ms * 2 removals
    // plus slack).
    let recover_s = leave_s + 3.0;
    let mean = |pts: &[&Fig4Point]| {
        if pts.is_empty() {
            0.0
        } else {
            pts.iter().map(|p| p.latency_ms).sum::<f64>() / pts.len() as f64
        }
    };
    let before: Vec<&Fig4Point> = points.iter().filter(|p| p.t_s < leave_s).collect();
    let during: Vec<&Fig4Point> = points
        .iter()
        .filter(|p| p.t_s >= leave_s && p.t_s < recover_s)
        .collect();
    let after: Vec<&Fig4Point> = points.iter().filter(|p| p.t_s >= recover_s).collect();
    Fig4Result {
        leave_at_s: leave_s,
        before_ms: mean(&before),
        peak_after_ms: during
            .iter()
            .map(|p| p.latency_ms)
            .fold(0.0, f64::max),
        recovered_ms: mean(&after),
        members_suspected: report.member_suspected,
        safety_ok: report.safety_ok,
        points,
    }
}

impl Fig4Result {
    /// Renders the series plus phase summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Fig 4: Fast Raft latency across a silent leave of 2/5 sites (5% loss)\n");
        out.push_str(&format!(
            "leave at t={:.1}s | suspected members: {}\n",
            self.leave_at_s, self.members_suspected
        ));
        out.push_str("t(s)    latency(ms)\n");
        for p in &self.points {
            let marker = if (p.t_s - self.leave_at_s).abs() < 0.35 {
                "  <-- leave"
            } else {
                ""
            };
            out.push_str(&format!("{:6.2}  {:8.2}{}\n", p.t_s, p.latency_ms, marker));
        }
        out.push_str(&format!(
            "phase means: before={:.1}ms  peak-after={:.1}ms  recovered={:.1}ms\n",
            self.before_ms, self.peak_after_ms, self.recovered_ms
        ));
        out.push_str(
            "(paper: fast track before the leave; spike >200ms during reconfiguration; \
             50-100ms band after)\n",
        );
        out
    }
}
