//! Property-based adversarial schedules for C-Raft's two-level hierarchy.
//!
//! Smaller and slower than the Fast Raft schedules (each step may cascade
//! through gated inserts and both consensus levels), but they exercise the
//! full §V machinery: local consensus, global-state gating, batching, and
//! global replication — asserting hierarchical safety at every step.

use consensus_core::{build_deployment, CRaftConfig};
use proptest::prelude::*;
use raft::testkit::Lockstep;
use wire::{LogScope, NodeId, Payload, TimerKind};

#[derive(Clone, Debug)]
enum Step {
    /// Propose at node `n % 6`.
    Propose(u64),
    /// Deliver up to `k` messages.
    Deliver(u8),
    /// Fire a local timer on node `n % 6`.
    FireLocal(u64, u8),
    /// Fire a global timer on a cluster head (`h % 2`).
    FireGlobal(u64, u8),
    /// Flush a partial batch on a head.
    Flush(u64),
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u64..6).prop_map(Step::Propose),
        (1u8..48).prop_map(Step::Deliver),
        ((0u64..6), (0u8..3)).prop_map(|(n, t)| Step::FireLocal(n, t)),
        ((0u64..2), (0u8..3)).prop_map(|(h, t)| Step::FireGlobal(h, t)),
        (0u64..2).prop_map(Step::Flush),
    ]
}

fn local_timer(t: u8) -> TimerKind {
    match t {
        0 => TimerKind::Election,
        1 => TimerKind::Heartbeat,
        _ => TimerKind::LeaderTick,
    }
}

fn global_timer(t: u8) -> TimerKind {
    match t {
        0 => TimerKind::GlobalElection,
        1 => TimerKind::GlobalHeartbeat,
        _ => TimerKind::GlobalLeaderTick,
    }
}

fn run_schedule(seed: u64, steps: &[Step]) {
    let (nodes, _) = build_deployment(
        2,
        3,
        |c| {
            let mut cfg = CRaftConfig::paper(c);
            cfg.batch_size = 2;
            cfg
        },
        seed,
    );
    let mut net = Lockstep::new(nodes);
    net.set_safety_domains(|n| n.as_u64() / 3);
    // Elect cluster heads locally and a global leader.
    net.fire(NodeId(0), TimerKind::Election);
    net.deliver_all();
    net.fire(NodeId(3), TimerKind::Election);
    net.deliver_all();
    net.fire(NodeId(0), TimerKind::GlobalElection);
    net.deliver_all();

    for step in steps {
        match step {
            Step::Propose(n) => {
                net.propose(NodeId(n % 6), b"v");
            }
            Step::Deliver(k) => {
                for _ in 0..*k {
                    if !net.deliver_one() {
                        break;
                    }
                }
            }
            Step::FireLocal(n, t) => {
                net.fire(NodeId(n % 6), local_timer(*t));
            }
            Step::FireGlobal(h, t) => {
                net.fire(NodeId((h % 2) * 3), global_timer(*t));
            }
            Step::Flush(h) => {
                net.fire(NodeId((h % 2) * 3), TimerKind::BatchFlush);
            }
        }
        net.assert_safety();
    }
    // Settle the hierarchy.
    net.deliver_all();
    for _ in 0..8 {
        for head in [NodeId(0), NodeId(3)] {
            net.fire(head, TimerKind::LeaderTick);
            net.fire(head, TimerKind::Heartbeat);
            net.fire(head, TimerKind::GlobalLeaderTick);
            net.fire(head, TimerKind::GlobalHeartbeat);
        }
        net.deliver_all();
    }
    net.assert_safety();
    // Session exactly-once: no `(session, seq)` applied at two distinct
    // indices, at either level.
    net.assert_exactly_once();

    // Hierarchical invariant: every batch item committed globally was first
    // committed in its cluster's local log.
    use std::collections::HashSet;
    let mut locally_committed: HashSet<wire::EntryId> = HashSet::new();
    for id in net.ids() {
        for c in net.commits(id) {
            if c.scope == LogScope::Local {
                if let Payload::Data(_) | Payload::Write { .. } = c.entry.payload {
                    locally_committed.insert(c.entry.id);
                }
            }
        }
    }
    for id in net.ids() {
        for c in net.commits(id) {
            if c.scope == LogScope::Global {
                if let Payload::Batch(b) = &c.entry.payload {
                    for item in b.items.iter() {
                        assert!(
                            locally_committed.contains(&item.id),
                            "globally committed item {} was never locally committed",
                            item.id
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 100,
        ..ProptestConfig::default()
    })]

    #[test]
    fn hierarchical_safety_under_adversarial_schedules(
        seed in any::<u64>(),
        steps in proptest::collection::vec(arb_step(), 1..60),
    ) {
        run_schedule(seed, &steps);
    }
}

#[test]
fn regression_interleaved_batches_and_ticks() {
    run_schedule(
        5,
        &[
            Step::Propose(1),
            Step::Propose(4),
            Step::Deliver(48),
            Step::FireLocal(0, 2),
            Step::FireLocal(3, 2),
            Step::Deliver(48),
            Step::Propose(2),
            Step::Propose(5),
            Step::Deliver(48),
            Step::FireLocal(0, 2),
            Step::FireLocal(3, 2),
            Step::Deliver(48),
            Step::FireGlobal(0, 2),
            Step::Deliver(48),
            Step::FireGlobal(0, 1),
            Step::Deliver(48),
        ],
    );
}
