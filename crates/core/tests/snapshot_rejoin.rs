//! Snapshot + log-compaction scenarios for Fast Raft, driven through the
//! lockstep testkit: bounded residency, snapshot-based catch-up for sites
//! absent past the compaction horizon, and proactive hole repair.

use consensus_core::FastRaftNode;
use des::SimRng;
use raft::testkit::Lockstep;
use raft::{Role, Timing};
use wire::{Configuration, LogIndex, NodeId, Observation, TimerKind};

fn snappy_timing(threshold: u64) -> Timing {
    Timing {
        snapshot_threshold: threshold,
        // Lockstep heartbeats are fired much faster than real time; keep the
        // member timeout from evicting a deliberately crashed site so the
        // test exercises the snapshot catch-up path, not the rejoin flow.
        member_timeout_beats: 1000,
        ..Timing::lan()
    }
}

fn cluster(n: u64, threshold: u64) -> (Lockstep<FastRaftNode>, Configuration) {
    let cfg: Configuration = (0..n).map(NodeId).collect();
    let net = Lockstep::new((0..n).map(|i| {
        FastRaftNode::new(
            NodeId(i),
            cfg.clone(),
            snappy_timing(threshold),
            SimRng::seed_from_u64(2000 + i),
        )
    }));
    (net, cfg)
}

fn elect(net: &mut Lockstep<FastRaftNode>, who: NodeId) -> NodeId {
    net.fire(who, TimerKind::Election);
    net.deliver_all();
    assert_eq!(net.node(who).role(), Role::Leader, "{who} failed to win");
    who
}

/// Commits `count` proposals from `proposer` through the fast track,
/// spreading commit knowledge with heartbeats.
fn pump(net: &mut Lockstep<FastRaftNode>, leader: NodeId, proposer: NodeId, count: usize) {
    for i in 0..count {
        net.propose(proposer, format!("v{i}").as_bytes());
        net.deliver_all();
        net.fire(leader, TimerKind::LeaderTick);
        net.deliver_all();
        net.fire(leader, TimerKind::Heartbeat);
        net.deliver_all();
    }
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
}

#[test]
fn every_site_compacts_past_the_threshold() {
    let (mut net, _) = cluster(5, 8);
    let leader = elect(&mut net, NodeId(0));
    pump(&mut net, leader, NodeId(1), 24);
    for id in net.ids() {
        let log = net.node(id).log();
        assert!(
            log.compacted_through() > LogIndex::ZERO,
            "{id} never compacted"
        );
        assert!(
            (log.len() as u64) <= 8 + 2,
            "{id} retains {} entries past the threshold",
            log.len()
        );
    }
    let d0 = net.node(NodeId(0)).state_digest();
    assert!(
        net.ids().iter().all(|&id| net.node(id).state_digest() == d0),
        "commit digests diverged"
    );
    net.assert_safety();
}

#[test]
fn site_absent_past_horizon_installs_snapshot_and_catches_up() {
    let (mut net, cfg) = cluster(5, 8);
    let leader = elect(&mut net, NodeId(0));
    pump(&mut net, leader, NodeId(1), 4);
    net.crash(NodeId(4));
    // Drive the log far past the snapshot threshold while site 4 is away.
    pump(&mut net, leader, NodeId(1), 24);
    assert!(
        net.node(leader).log().compacted_through() > LogIndex(4),
        "leader should have compacted past the crash point"
    );
    let stable = net.disk().read(NodeId(4)).cloned().unwrap_or_default();
    net.restart(FastRaftNode::recover(
        NodeId(4),
        &stable,
        cfg,
        snappy_timing(8),
        SimRng::seed_from_u64(99),
    ));
    for _ in 0..4 {
        net.fire(leader, TimerKind::Heartbeat);
        net.deliver_all();
    }
    assert!(
        net.observations()
            .iter()
            .any(|(n, o)| *n == NodeId(4)
                && matches!(o, Observation::SnapshotInstalled { .. })),
        "rejoiner should install a snapshot instead of replaying history"
    );
    assert_eq!(
        net.node(NodeId(4)).commit_index(),
        net.node(leader).commit_index(),
        "rejoiner should reach the leader's commit index"
    );
    assert_eq!(
        net.node(NodeId(4)).state_digest(),
        net.node(leader).state_digest(),
        "snapshot + suffix must reproduce the leader's state"
    );
    net.assert_safety();
}

#[test]
fn fresh_joiner_catches_up_via_snapshot() {
    let (mut net, _) = cluster(3, 8);
    let leader = elect(&mut net, NodeId(0));
    pump(&mut net, leader, NodeId(1), 20);
    assert!(net.node(leader).log().compacted_through() > LogIndex::ZERO);
    // A brand-new site joins: its nextIndex starts at FIRST, below the
    // leader's horizon, so catch-up starts with a snapshot (§IV-D).
    let joiner = FastRaftNode::joining(
        NodeId(9),
        vec![NodeId(0), NodeId(1), NodeId(2)],
        snappy_timing(8),
        SimRng::seed_from_u64(7),
    );
    let mut ids = net.ids();
    ids.push(NodeId(9));
    net.restart(joiner);
    net.deliver_all();
    for _ in 0..6 {
        net.fire(leader, TimerKind::Heartbeat);
        net.deliver_all();
        net.fire(leader, TimerKind::LeaderTick);
        net.deliver_all();
    }
    assert!(
        net.observations()
            .iter()
            .any(|(n, o)| *n == NodeId(9)
                && matches!(o, Observation::SnapshotInstalled { .. })),
        "joiner should be caught up by snapshot transfer"
    );
    assert!(
        net.node(NodeId(9)).commit_index() >= net.node(leader).log().compacted_through(),
        "joiner should cover the compacted prefix"
    );
    net.assert_safety();
}

#[test]
fn proactive_repair_fires_on_ack_without_waiting_ticks() {
    use consensus_core::FastRaftMessage;
    use wire::{ConsensusProtocol, EntryId, EntryList, LogEntry};

    let (mut net, _) = cluster(5, 0);
    let old_leader = elect(&mut net, NodeId(0));
    pump(&mut net, old_leader, NodeId(2), 3);
    assert_eq!(net.node(NodeId(1)).commit_index(), LogIndex(3));
    let term = net.node(old_leader).current_term();
    // The old leader replicates a batch to node 1 that skips index 4 (its
    // own log had a hole there): node 1 inserts 5 and 6 leader-approved but
    // its verified match stays at 3 (PR 2's contiguity invariant).
    let skipped = EntryList::from_vec(vec![
        (
            LogIndex(5),
            LogEntry::data(term, EntryId::new(old_leader, 500), b"five"[..].into()),
        ),
        (
            LogIndex(6),
            LogEntry::data(term, EntryId::new(old_leader, 600), b"six"[..].into()),
        ),
    ]);
    net.with_node(NodeId(1), |n, out| {
        n.on_message(
            NodeId(0),
            FastRaftMessage::AppendEntries {
                term,
                leader: NodeId(0),
                prev_index: LogIndex(3),
                entries: skipped,
                leader_commit: LogIndex(3),
                global_commit: LogIndex::ZERO,
                probe: 0,
            },
            out,
        );
    });
    net.deliver_all();
    assert_eq!(net.node(NodeId(1)).last_leader_index(), LogIndex(6));
    // The old leader dies; node 1 inherits the suffix-above-a-hole and wins
    // (up-to-dateness counts leader-approved entries).
    net.crash(old_leader);
    let leader = elect(&mut net, NodeId(1));
    // Becoming leader dispatches AppendEntries from commit+1 = 4; follower
    // acks stop at match 3 because index 4 is a hole. That ack alone — with
    // hole_fill_ticks = 8 and no decision tick fired yet — must trigger the
    // proactive repair.
    let repairs = net
        .observations()
        .iter()
        .filter(|(n, o)| *n == leader && matches!(o, Observation::HoleRepairTriggered { .. }))
        .count();
    assert!(
        repairs >= 1,
        "append acks below a replicated suffix must trigger proactive repair"
    );
    // The repair restores liveness well before hole_fill_ticks elapse.
    for _ in 0..4 {
        net.fire(leader, TimerKind::LeaderTick);
        net.deliver_all();
        net.fire(leader, TimerKind::Heartbeat);
        net.deliver_all();
    }
    assert!(
        net.node(leader).commit_index() >= LogIndex(6),
        "repair should unblock the inherited suffix (commit at {})",
        net.node(leader).commit_index()
    );
    net.assert_safety();
}
