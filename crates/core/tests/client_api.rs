//! Scenario tests for the typed client surface: linearizable reads via
//! ReadIndex, stale-local reads, and the typed outcomes — over Fast Raft
//! and C-Raft (classic Raft's are in `crates/raft/tests/client_api.rs`).

use consensus_core::{build_deployment, CRaftConfig, CRaftNode, FastRaftNode};
use des::SimRng;
use raft::testkit::Lockstep;
use raft::{Role, Timing};
use wire::{
    ClientOutcome, ClientRequest, Configuration, Consistency, LogIndex, LogScope, NodeId,
    SessionId, TimerKind,
};

fn cluster(n: u64) -> Lockstep<FastRaftNode> {
    let cfg: Configuration = (0..n).map(NodeId).collect();
    Lockstep::new((0..n).map(|i| {
        FastRaftNode::new(
            NodeId(i),
            cfg.clone(),
            Timing::lan(),
            SimRng::seed_from_u64(7000 + i),
        )
    }))
}

fn elect(net: &mut Lockstep<FastRaftNode>, who: NodeId) -> NodeId {
    net.fire(who, TimerKind::Election);
    net.deliver_all();
    assert_eq!(net.node(who).role(), Role::Leader);
    who
}

fn commit_write(net: &mut Lockstep<FastRaftNode>, leader: NodeId, gw: NodeId, data: &[u8]) {
    net.propose(gw, data);
    net.deliver_all();
    net.fire(leader, TimerKind::LeaderTick);
    net.deliver_all();
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
}

fn read_ok_floor(outcomes: &[ClientOutcome]) -> Option<(LogScope, LogIndex)> {
    outcomes.iter().find_map(|o| match o {
        ClientOutcome::ReadOk {
            scope,
            commit_floor,
        } => Some((*scope, *commit_floor)),
        _ => None,
    })
}

#[test]
fn empty_system_answers_linearizable_read_at_floor_zero() {
    let mut net = cluster(5);
    let leader = elect(&mut net, NodeId(0));
    let key = net.read(leader, Consistency::Linearizable);
    net.deliver_all();
    let floor = read_ok_floor(&net.responses_for(leader, key.0, key.1));
    assert_eq!(floor, Some((LogScope::Global, LogIndex::ZERO)));
}

#[test]
fn linearizable_read_reflects_completed_write() {
    let mut net = cluster(5);
    let leader = elect(&mut net, NodeId(0));
    commit_write(&mut net, leader, NodeId(1), b"w1");
    // Read submitted at a follower: it forwards to the leader, which runs
    // the ReadIndex round (probe-tagged heartbeats + quorum acks) before
    // answering.
    let key = net.read(NodeId(2), Consistency::Linearizable);
    net.deliver_all();
    let (scope, floor) =
        read_ok_floor(&net.responses_for(NodeId(2), key.0, key.1)).expect("read answered");
    assert_eq!(scope, LogScope::Global);
    assert!(
        floor >= LogIndex(1),
        "lin read floor {floor} below the completed write"
    );
    net.assert_safety();
}

#[test]
fn stale_local_read_is_answered_immediately_from_any_site() {
    let mut net = cluster(5);
    let leader = elect(&mut net, NodeId(0));
    commit_write(&mut net, leader, NodeId(1), b"w1");
    // Cut node 4 off entirely — a stale read still answers, from its own
    // (possibly behind) floor, with no messages needed.
    net.set_link_filter(|from, to| from != NodeId(4) && to != NodeId(4));
    let key = net.read(NodeId(4), Consistency::StaleLocal);
    let floor = read_ok_floor(&net.responses_for(NodeId(4), key.0, key.1));
    assert!(floor.is_some(), "stale read must answer without the network");
}

#[test]
fn deposed_leader_cannot_answer_linearizable_reads() {
    let mut net = cluster(5);
    let old = elect(&mut net, NodeId(0));
    commit_write(&mut net, old, NodeId(1), b"w1");
    // Partition the old leader alone; a new leader arises.
    net.set_link_filter(|from, to| from != NodeId(0) && to != NodeId(0));
    net.fire(NodeId(1), TimerKind::Election);
    net.deliver_all();
    assert_eq!(net.node(NodeId(1)).role(), Role::Leader);
    // The old leader (still believing) registers a read; its probe round
    // can never gather a quorum — no ReadOk may be produced, and once it
    // learns the new term the read fails with Retry.
    let key = net.read(old, Consistency::Linearizable);
    net.deliver_all();
    assert!(
        read_ok_floor(&net.responses_for(old, key.0, key.1)).is_none(),
        "an isolated deposed leader must not confirm a linearizable read"
    );
    net.set_link_filter(|_, _| true);
    net.fire(NodeId(1), TimerKind::Heartbeat);
    net.deliver_all();
    let outcomes = net.responses_for(old, key.0, key.1);
    assert!(
        outcomes.iter().any(|o| matches!(o, ClientOutcome::Retry)),
        "deposed leader should fail the pending read with Retry: {outcomes:?}"
    );
    net.assert_safety();
}

#[test]
fn quiescent_new_leader_serves_reads_after_one_nudge() {
    // A new leader inheriting a fully committed log has no entry of its
    // own term and no reason to create one — without the on-demand term
    // no-op, linearizable reads would answer Retry forever.
    let mut net = cluster(5);
    let old = elect(&mut net, NodeId(0));
    commit_write(&mut net, old, NodeId(1), b"w1");
    // One extra heartbeat so every survivor holds the commit floor.
    net.fire(old, TimerKind::Heartbeat);
    net.deliver_all();
    net.crash(old);
    net.fire(NodeId(1), TimerKind::Election);
    net.deliver_all();
    assert_eq!(net.node(NodeId(1)).role(), Role::Leader);
    // First attempt: Retry (no current-term entry committed yet), but the
    // nudge appends + replicates a term no-op in the same exchange.
    let k1 = net.read(NodeId(2), Consistency::Linearizable);
    net.deliver_all();
    let outcomes = net.responses_for(NodeId(2), k1.0, k1.1);
    assert!(
        outcomes.iter().any(|o| matches!(o, ClientOutcome::Retry)),
        "stale floor must not be served: {outcomes:?}"
    );
    // The client's resubmission now succeeds at a floor covering the write.
    let k2 = net.read(NodeId(2), Consistency::Linearizable);
    net.deliver_all();
    let (_, floor) =
        read_ok_floor(&net.responses_for(NodeId(2), k2.0, k2.1)).expect("read after nudge");
    assert!(floor >= LogIndex(1));
    net.assert_safety();
}

#[test]
fn write_retry_after_commit_answers_duplicate_with_first_index() {
    let mut net = cluster(5);
    let leader = elect(&mut net, NodeId(0));
    let key = net.propose(NodeId(1), b"once");
    net.deliver_all();
    net.fire(leader, TimerKind::LeaderTick);
    net.deliver_all();
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    let first = net.responses_for(NodeId(1), key.0, key.1);
    let committed_at = first
        .iter()
        .find_map(|o| match o {
            ClientOutcome::Committed { index } => Some(*index),
            _ => None,
        })
        .expect("write committed");
    // The client retries the same (session, seq) — e.g. its ack was lost.
    net.client_request(
        NodeId(1),
        ClientRequest::write(key.0, key.1, b"once"[..].into()),
    );
    net.deliver_all();
    let outcomes = net.responses_for(NodeId(1), key.0, key.1);
    assert!(
        outcomes.iter().any(|o| matches!(o,
            ClientOutcome::Duplicate { first_index } if *first_index == committed_at)),
        "retry must be answered Duplicate at the original index: {outcomes:?}"
    );
    net.assert_exactly_once();
    net.assert_safety();
}

// ---------------------------------------------------------------------
// C-Raft: global linearizable reads, local stale reads
// ---------------------------------------------------------------------

fn craft_net(clusters: u64, per: u64, batch: usize) -> Lockstep<CRaftNode> {
    let (nodes, _) = build_deployment(
        clusters,
        per,
        |c| {
            let mut cfg = CRaftConfig::paper(c);
            cfg.batch_size = batch;
            cfg
        },
        42,
    );
    let mut net = Lockstep::new(nodes);
    net.set_safety_domains(move |n| n.as_u64() / per);
    net
}

fn craft_pump(net: &mut Lockstep<CRaftNode>, heads: &[NodeId]) {
    for &h in heads {
        net.fire(h, TimerKind::LeaderTick);
        net.deliver_all();
        net.fire(h, TimerKind::Heartbeat);
        net.deliver_all();
    }
    for &h in heads {
        net.fire(h, TimerKind::GlobalLeaderTick);
        net.deliver_all();
        net.fire(h, TimerKind::GlobalHeartbeat);
        net.deliver_all();
    }
}

#[test]
fn craft_linearizable_read_is_global_and_routes_through_leaders() {
    let mut net = craft_net(2, 3, 1);
    for h in [NodeId(0), NodeId(3)] {
        net.fire(h, TimerKind::Election);
        net.deliver_all();
        assert!(net.node(h).is_local_leader());
    }
    net.fire(NodeId(0), TimerKind::GlobalElection);
    net.deliver_all();
    assert!(net.node(NodeId(0)).is_global_leader());

    // Commit one write through cluster 1 and push its batch globally.
    net.propose(NodeId(4), b"global-w");
    net.deliver_all();
    for _ in 0..6 {
        craft_pump(&mut net, &[NodeId(0), NodeId(3)]);
    }
    let gcommit = net.node(NodeId(0)).global_commit_seen();
    assert!(gcommit >= LogIndex(1), "batch never committed globally");

    // A member of cluster 0 (not a leader at any level) issues the read:
    // member → local leader (cluster 0) → global engine chain.
    let key = net.read(NodeId(1), Consistency::Linearizable);
    net.deliver_all();
    let (scope, floor) =
        read_ok_floor(&net.responses_for(NodeId(1), key.0, key.1)).expect("read answered");
    assert_eq!(scope, LogScope::Global, "C-Raft lin reads are global reads");
    assert!(
        floor >= gcommit,
        "global read floor {floor} below the committed batch at {gcommit}"
    );
    net.assert_safety();
}

#[test]
fn craft_stale_local_read_serves_local_floor() {
    let mut net = craft_net(2, 3, 2);
    for h in [NodeId(0), NodeId(3)] {
        net.fire(h, TimerKind::Election);
        net.deliver_all();
    }
    net.propose(NodeId(1), b"local-w");
    net.deliver_all();
    net.fire(NodeId(0), TimerKind::LeaderTick);
    net.deliver_all();
    net.fire(NodeId(0), TimerKind::Heartbeat);
    net.deliver_all();
    let key = net.read(NodeId(1), Consistency::StaleLocal);
    let (scope, floor) =
        read_ok_floor(&net.responses_for(NodeId(1), key.0, key.1)).expect("answered");
    assert_eq!(scope, LogScope::Local);
    assert!(floor >= LogIndex(1), "stale local floor below local commit");
}

#[test]
fn craft_write_is_acked_with_typed_outcome_at_local_commit() {
    let mut net = craft_net(1, 3, 5);
    net.fire(NodeId(0), TimerKind::Election);
    net.deliver_all();
    let key = net.propose(NodeId(2), b"typed");
    net.deliver_all();
    net.fire(NodeId(0), TimerKind::LeaderTick);
    net.deliver_all();
    net.fire(NodeId(0), TimerKind::Heartbeat);
    net.deliver_all();
    let outcomes = net.responses_for(NodeId(2), key.0, key.1);
    assert!(
        outcomes
            .iter()
            .any(|o| matches!(o, ClientOutcome::Committed { index } if !index.is_zero())),
        "C-Raft write must be acknowledged Committed at local commit: {outcomes:?}"
    );
    // A client retry of the same seq is suppressed as Duplicate.
    net.client_request(
        NodeId(2),
        ClientRequest::write(SessionId::client(2), key.1, b"typed"[..].into()),
    );
    net.deliver_all();
    let outcomes = net.responses_for(NodeId(2), key.0, key.1);
    assert!(
        outcomes
            .iter()
            .any(|o| matches!(o, ClientOutcome::Duplicate { .. })),
        "retry after local commit must answer Duplicate: {outcomes:?}"
    );
    net.assert_exactly_once();
}
