//! Session expiry/GC (ROADMAP client-API item b): idle sessions are evicted
//! from the applied `SessionTable` after `Timing::session_ttl` committed
//! indices, deterministically on every replica, with the eviction folded
//! into the commit digest; stale retries from an evicted session answer
//! `Retry` instead of `Duplicate` (and are never re-applied).

use consensus_core::FastRaftNode;
use des::SimRng;
use raft::testkit::Lockstep;
use raft::{Role, Timing};
use wire::{
    ClientOutcome, ClientRequest, Configuration, NodeId, Observation, SessionId, TimerKind,
};

const TTL: u64 = 8;

fn cluster(ttl: u64) -> Lockstep<FastRaftNode> {
    let cfg: Configuration = (0..3).map(NodeId).collect();
    let mut timing = Timing::lan();
    timing.session_ttl = ttl;
    Lockstep::new((0..3).map(|i| {
        FastRaftNode::new(
            NodeId(i),
            cfg.clone(),
            timing,
            SimRng::seed_from_u64(9100 + i),
        )
    }))
}

fn elect(net: &mut Lockstep<FastRaftNode>, who: NodeId) -> NodeId {
    net.fire(who, TimerKind::Election);
    net.deliver_all();
    assert_eq!(net.node(who).role(), Role::Leader);
    who
}

fn commit_write(net: &mut Lockstep<FastRaftNode>, leader: NodeId, gw: NodeId, data: &[u8]) {
    net.propose(gw, data);
    net.deliver_all();
    net.fire(leader, TimerKind::LeaderTick);
    net.deliver_all();
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    // One more round so followers learn the advanced commit floor (and run
    // their own deterministic eviction sweep at the same indices).
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
}

fn evictions(net: &Lockstep<FastRaftNode>, session: SessionId) -> Vec<NodeId> {
    net.observations()
        .iter()
        .filter_map(|(n, o)| match o {
            Observation::SessionEvicted { session: s, .. } if *s == session => Some(*n),
            _ => None,
        })
        .collect()
}

/// Drives session 1 idle while session 2 keeps writing past the TTL.
fn run_idle_past_ttl(net: &mut Lockstep<FastRaftNode>, leader: NodeId) -> SessionId {
    let idle = SessionId::client(1);
    commit_write(net, leader, NodeId(1), b"idle-1");
    commit_write(net, leader, NodeId(1), b"idle-2");
    for i in 0..(TTL + 4) {
        commit_write(net, leader, NodeId(2), format!("busy-{i}").as_bytes());
    }
    idle
}

#[test]
fn idle_session_is_evicted_on_every_replica_with_converging_digest() {
    let mut net = cluster(TTL);
    let leader = elect(&mut net, NodeId(0));
    let idle = run_idle_past_ttl(&mut net, leader);

    for id in net.ids() {
        let node = net.node(id);
        assert!(
            node.sessions().get(idle).is_none(),
            "{id}: idle session survived past the TTL"
        );
        assert!(
            node.sessions().get(SessionId::client(2)).is_some(),
            "{id}: active session must never be evicted"
        );
    }
    // Every replica evicted (deterministically, at the same commit index).
    let who = evictions(&net, idle);
    assert_eq!(who.len(), 3, "expected one eviction per replica: {who:?}");
    // The digest folds the eviction identically everywhere.
    let d0 = net.node(NodeId(0)).state_digest();
    for id in net.ids() {
        assert_eq!(
            net.node(id).state_digest(),
            d0,
            "{id}: digest diverged after eviction"
        );
    }
    net.assert_safety();
    net.assert_exactly_once();
}

#[test]
fn stale_retry_of_evicted_session_answers_session_expired() {
    let mut net = cluster(TTL);
    let leader = elect(&mut net, NodeId(0));
    let idle = run_idle_past_ttl(&mut net, leader);
    assert!(net.node(leader).sessions().get(idle).is_none());

    // The client retries its last write (seq 2) at the leader gateway: the
    // dedup history is gone, so the only safe answer is the *terminal*
    // SessionExpired — never Duplicate, never a fresh application, and not
    // the non-terminal Retry (re-sending the same seq would loop forever).
    net.client_request(
        leader,
        ClientRequest::write(idle, 2, bytes::Bytes::from_static(b"idle-2")),
    );
    net.deliver_all();
    let outcomes = net.responses_for(leader, idle, 2);
    assert!(
        outcomes
            .iter()
            .any(|o| matches!(o, ClientOutcome::SessionExpired)),
        "stale retry must be answered SessionExpired, got {outcomes:?}"
    );
    assert!(
        !outcomes
            .iter()
            .any(|o| matches!(o, ClientOutcome::Duplicate { .. })),
        "evicted session must not be remembered as a duplicate: {outcomes:?}"
    );
    assert!(ClientOutcome::SessionExpired.is_terminal());
    // Exactly-once still holds: (idle, 2) was applied once, pre-eviction.
    net.assert_exactly_once();
    net.assert_safety();
}

#[test]
fn late_committed_duplicate_does_not_reapply_after_eviction() {
    // The eviction/late-commit race the apply-time check closes: a
    // duplicate placement of an already-applied seq can still be sitting
    // uncommitted in the log when the session is evicted; when it finally
    // commits, the dedup slot is gone — the apply-time expiry check (the
    // table at commit k is authoritative) must skip it instead of treating
    // it as a first application.
    let mut net = cluster(TTL);
    let leader = elect(&mut net, NodeId(0));
    let idle = SessionId::client(1);
    commit_write(&mut net, leader, NodeId(1), b"idle-1");
    commit_write(&mut net, leader, NodeId(1), b"idle-2");
    // Re-place (idle, 2) via a broadcast retry while the session is still
    // live — the lagging-replica-safe path does not veto it, so it claims
    // a fresh slot.
    net.client_request(
        NodeId(1),
        ClientRequest::write(idle, 2, bytes::Bytes::from_static(b"idle-2")),
    );
    net.deliver_all();
    // Now drive the session idle past the TTL and let everything commit.
    for i in 0..(TTL + 4) {
        commit_write(&mut net, leader, NodeId(2), format!("busy-{i}").as_bytes());
    }
    // Exactly-once must hold even though the second placement of seq 2 may
    // have committed after the eviction: every SessionApplied for
    // (idle, 2) across all replicas names one index.
    net.assert_exactly_once();
    net.assert_safety();
    // And the digests still agree (no replica folded a re-application).
    let d0 = net.node(NodeId(0)).state_digest();
    for id in net.ids() {
        assert_eq!(net.node(id).state_digest(), d0, "{id}: digest diverged");
    }
}

#[test]
fn fresh_leader_lagging_table_never_terminally_refuses_live_session() {
    // The false-positive race the currency gate closes: a fresh leader's
    // applied table lags until an entry of its own term commits, so a live
    // session whose writes are committed-but-not-applied-here reads as
    // "expired" (`seq > 1`, session untracked). The old door refused such
    // a retry terminally ("placed nowhere") while the broadcast fast path
    // had already placed the same (session, seq) on every replica — the
    // client would reopen a session and resubmit, and the surviving
    // placement would apply the op a second time.
    let mut net = cluster(TTL);
    let leader = elect(&mut net, NodeId(0));
    let live = SessionId::client(1);
    // (live, 1) commits and is acked at the old leader; followers hold the
    // entry but their commit floor — and therefore their tables — lag.
    net.client_request(
        leader,
        ClientRequest::write(live, 1, bytes::Bytes::from_static(b"w1")),
    );
    net.deliver_all();
    net.fire(leader, TimerKind::LeaderTick);
    net.deliver_all();
    assert!(net
        .responses_for(leader, live, 1)
        .iter()
        .any(|o| matches!(o, ClientOutcome::Committed { .. })));
    // (live, 2) goes out on the broadcast fast path: placed on every
    // replica's log, verified, but not yet decided — in flight, unacked.
    net.client_request(
        leader,
        ClientRequest::write(live, 2, bytes::Bytes::from_static(b"w2")),
    );
    net.deliver_all();
    assert!(
        net.node(NodeId(1)).sessions().get(live).is_none(),
        "precondition: the follower's table must lag the commit"
    );
    // Elect node 1 delivering only the vote traffic: stop as soon as it
    // turns Leader, before settling its backlog catches its table up.
    net.fire(NodeId(1), TimerKind::Election);
    while net.node(NodeId(1)).role() != Role::Leader {
        assert!(net.deliver_one(), "election wedged");
    }
    assert!(net.node(NodeId(1)).sessions().get(live).is_none());
    // The client times out on (live, 2) and retries it at the new leader,
    // whose lagging table reads the live session as "expired". The door
    // must not answer the terminal SessionExpired: the op is re-placed (or
    // Retry-refused) and apply-time dedup keeps it exactly-once.
    net.client_request(
        NodeId(1),
        ClientRequest::write(live, 2, bytes::Bytes::from_static(b"w2")),
    );
    let early = net.responses_for(NodeId(1), live, 2);
    assert!(
        !early
            .iter()
            .any(|o| matches!(o, ClientOutcome::SessionExpired)),
        "lagging fresh leader terminally refused a live session: {early:?}"
    );
    // Let the new leader settle, commit its backlog, and catch up; drive
    // enough rounds that the retry (and any proposal retries) resolve.
    net.deliver_all();
    for _ in 0..4 {
        net.fire(NodeId(1), TimerKind::LeaderTick);
        net.deliver_all();
        net.fire(NodeId(1), TimerKind::Heartbeat);
        net.deliver_all();
    }
    net.client_request(
        NodeId(1),
        ClientRequest::write(live, 2, bytes::Bytes::from_static(b"w2")),
    );
    net.deliver_all();
    for _ in 0..2 {
        net.fire(NodeId(1), TimerKind::LeaderTick);
        net.deliver_all();
        net.fire(NodeId(1), TimerKind::Heartbeat);
        net.deliver_all();
    }
    let outcomes = net.responses_for(NodeId(1), live, 2);
    assert!(
        !outcomes
            .iter()
            .any(|o| matches!(o, ClientOutcome::SessionExpired)),
        "live session must never be told SessionExpired: {outcomes:?}"
    );
    assert!(
        outcomes.iter().any(|o| matches!(
            o,
            ClientOutcome::Committed { .. } | ClientOutcome::Duplicate { .. }
        )),
        "caught-up leader must accept or dedup the retry, got {outcomes:?}"
    );
    // The core guarantee: (live, 2) applied at exactly one index anywhere,
    // despite the duplicate placement surviving the leader change.
    net.assert_exactly_once();
    net.assert_safety();
}

#[test]
fn retries_within_ttl_still_answer_duplicate() {
    let mut net = cluster(TTL);
    let leader = elect(&mut net, NodeId(0));
    let session = SessionId::client(1);
    commit_write(&mut net, leader, NodeId(1), b"w1");
    // An immediate retry (session still live) keeps exactly-once semantics.
    net.client_request(
        leader,
        ClientRequest::write(session, 1, bytes::Bytes::from_static(b"w1")),
    );
    net.deliver_all();
    let outcomes = net.responses_for(leader, session, 1);
    assert!(
        outcomes
            .iter()
            .any(|o| matches!(o, ClientOutcome::Duplicate { .. })),
        "live-session retry must dedup, got {outcomes:?}"
    );
    net.assert_exactly_once();
}

#[test]
fn ttl_zero_never_evicts() {
    let mut net = cluster(0);
    let leader = elect(&mut net, NodeId(0));
    commit_write(&mut net, leader, NodeId(1), b"idle");
    for i in 0..30 {
        commit_write(&mut net, leader, NodeId(2), format!("busy-{i}").as_bytes());
    }
    for id in net.ids() {
        assert!(
            net.node(id).sessions().get(SessionId::client(1)).is_some(),
            "{id}: session evicted with expiry disabled"
        );
    }
    assert!(evictions(&net, SessionId::client(1)).is_empty());
}

#[test]
fn snapshot_carries_post_eviction_table() {
    // Eviction must survive compaction: a snapshot cut after the eviction
    // carries the table *without* the evicted session, so a recovering or
    // catching-up replica converges on the same applied state and digest.
    // Tight snapshot threshold so compaction happens during the run.
    let cfg: Configuration = (0..3).map(NodeId).collect();
    let mut timing = Timing::lan();
    timing.session_ttl = TTL;
    timing.snapshot_threshold = 6;
    let mut net = Lockstep::new((0..3).map(|i| {
        FastRaftNode::new(
            NodeId(i),
            cfg.clone(),
            timing,
            SimRng::seed_from_u64(9200 + i),
        )
    }));
    let leader = elect(&mut net, NodeId(0));
    let idle = run_idle_past_ttl(&mut net, leader);
    let snap = net
        .node(leader)
        .snapshot()
        .expect("threshold 6 must have compacted")
        .clone();
    assert!(
        snap.sessions.get(idle).is_none(),
        "snapshot must carry the post-eviction table"
    );
    // A replica recovering from the persisted snapshot + suffix resumes
    // with the evicted session still gone and the digest the snapshot
    // proved — eviction is part of applied state, not volatile bookkeeping.
    let stable = net.disk().read(leader).expect("persisted state").clone();
    let recovered = FastRaftNode::recover(
        leader,
        &stable,
        cfg,
        timing,
        SimRng::seed_from_u64(777),
    );
    assert!(recovered.sessions().get(idle).is_none());
    assert_eq!(
        recovered.state_digest(),
        snap.state_digest().expect("digest image"),
        "recovery must resume from the snapshot's post-eviction digest"
    );
    net.assert_safety();
}
