//! Property: recovery from snapshot + log suffix is state-identical to
//! recovery from the full log, for both consensus scopes.
//!
//! "State" is (retained entries above the commit floor, configuration, and
//! the committed-sequence digest once the remaining suffix is applied): a
//! node that compacted its prefix and crashed must be indistinguishable —
//! to the protocol and to the application — from one that kept the whole
//! history.

use bytes::Bytes;
use consensus_core::{FastRaftEngine, FastRaftNode, TimerProfile};
use des::SimRng;
use proptest::prelude::*;
use raft::{RaftNode, Timing};
use storage::{PersistBatch, StableState};
use wire::{
    fold_commit_digest, Configuration, EntryId, LogEntry, LogIndex, LogScope, NodeId, PersistCmd,
    Snapshot, Term,
};

fn entry(i: u64) -> LogEntry {
    LogEntry::data(
        Term(1 + i / 7),
        EntryId::new(NodeId(i % 3), i),
        Bytes::from(format!("value-{i}").into_bytes()),
    )
}

fn recover_from(stable: &StableState, scope: LogScope) -> FastRaftEngine {
    let s = stable.scope(scope);
    FastRaftEngine::recover(
        NodeId(0),
        s.current_term,
        s.voted_for,
        s.log.clone(),
        s.snapshot.clone(),
        Configuration::new([NodeId(0), NodeId(1), NodeId(2)]),
        scope,
        TimerProfile::Base,
        Timing::lan(),
        SimRng::seed_from_u64(1),
        s.proposal_seq_floor,
    )
}

/// Applies `n` inserts; on the `compacted` copy additionally installs a
/// snapshot through `k` built the way a live node would (boundary term from
/// the log, digest folded over the committed prefix).
fn build_states(scope: LogScope, n: u64, k: u64) -> (StableState, StableState, u64) {
    let mut full = StableState::new();
    for i in 1..=n {
        full.apply(&PersistCmd::Insert {
            scope,
            index: LogIndex(i),
            entry: entry(i),
        });
    }
    let mut compacted = full.clone();
    let mut digest = 0u64;
    for i in 1..=k {
        digest = fold_commit_digest(digest, LogIndex(i), entry(i).id);
    }
    compacted.apply(&PersistCmd::InstallSnapshot {
        snapshot: Snapshot {
            scope,
            last_index: LogIndex(k),
            last_term: entry(k).term,
            config: Configuration::new([NodeId(0), NodeId(1), NodeId(2)]),
            state: Snapshot::digest_state(digest),
            sessions: wire::SessionTable::new(),
        },
    });
    (full, compacted, digest)
}

proptest! {
    #[test]
    fn snapshot_plus_suffix_recovers_identical_state(
        n in 2u64..48,
        k_frac in 0u64..100,
        scope_global in any::<bool>(),
    ) {
        let k = 1 + k_frac % n; // 1..=n
        let scope = if scope_global { LogScope::Global } else { LogScope::Local };
        let (full, compacted, snap_digest) = build_states(scope, n, k);

        let from_full = recover_from(&full, scope);
        let from_snap = recover_from(&compacted, scope);

        // The retained suffix is identical entry-for-entry.
        prop_assert_eq!(from_snap.log().first_index(), LogIndex(k + 1));
        prop_assert_eq!(from_snap.log().last_index(), from_full.log().last_index());
        for i in (k + 1)..=n {
            prop_assert_eq!(
                from_snap.log().get(LogIndex(i)),
                from_full.log().get(LogIndex(i)),
                "entry {} diverged", i
            );
        }
        // The snapshot's prefix is known committed at recovery; the full-log
        // node relearns the same floor from the protocol.
        prop_assert_eq!(from_snap.commit_index(), LogIndex(k));
        prop_assert_eq!(from_snap.state_digest(), snap_digest);
        prop_assert_eq!(from_snap.config(), from_full.config());
        prop_assert_eq!(from_snap.current_term(), from_full.current_term());
        // Applying the remaining suffix to the snapshot state yields exactly
        // the digest of replaying the full history: state identity.
        let mut replayed_full = 0u64;
        for i in 1..=n {
            replayed_full = fold_commit_digest(replayed_full, LogIndex(i), entry(i).id);
        }
        let mut resumed = from_snap.state_digest();
        for i in (k + 1)..=n {
            resumed = fold_commit_digest(resumed, LogIndex(i), entry(i).id);
        }
        prop_assert_eq!(resumed, replayed_full);
        // Log-matching at the horizon still works: the boundary term survives.
        prop_assert_eq!(from_snap.log().term_at(LogIndex(k)), entry(k).term);
    }
}

// ---------------------------------------------------------------------
// Group commit vs recovery: a crash at a batch boundary — or inside one
// (a torn batch is a command *prefix*, never a reordering) — must leave
// exactly the durable state an unbatched execution of the same surviving
// command prefix would leave.

/// A mixed write-ahead stream like a busy sequence of steps would emit:
/// inserts with periodic term/vote updates.
fn cmd_stream(scope: LogScope, n: u64) -> Vec<PersistCmd> {
    let mut cmds = Vec::new();
    for i in 1..=n {
        if i % 5 == 0 {
            cmds.push(PersistCmd::SetTermVote {
                scope,
                term: Term(1 + i / 7),
                voted_for: Some(NodeId(i % 3)),
            });
        }
        cmds.push(PersistCmd::Insert {
            scope,
            index: LogIndex(i),
            entry: entry(i),
        });
    }
    cmds
}

proptest! {
    #[test]
    fn crash_at_batch_boundary_recovers_like_unbatched(
        n in 1u64..40,
        split_frac in 0u64..=100,
        tear_frac in 0u64..=100,
        scope_global in any::<bool>(),
    ) {
        let scope = if scope_global { LogScope::Global } else { LogScope::Local };
        let cmds = cmd_stream(scope, n);
        let split = (cmds.len() as u64 * split_frac / 101) as usize;
        let first = PersistBatch::from_cmds(cmds[..split].to_vec());
        let second = PersistBatch::from_cmds(cmds[split..].to_vec());

        // Crash between fsync boundaries: only the first batch is durable.
        let mut between = StableState::new();
        between.apply_batch(&first);
        let mut between_twin = StableState::new();
        for cmd in first.cmds() {
            between_twin.apply(cmd);
        }
        prop_assert_eq!(&between, &between_twin);

        // Crash inside the second fsync: a prefix of its commands survives.
        let tear = (second.len() as u64 * tear_frac / 101) as usize;
        let mut torn = between.clone();
        torn.apply_batch(&second.prefix(tear));
        let mut torn_twin = between_twin.clone();
        for cmd in &second.cmds()[..tear] {
            torn_twin.apply(cmd);
        }
        prop_assert_eq!(&torn, &torn_twin);

        // Only the fsync accounting differs between the executions.
        prop_assert!(torn.persist_batches() <= torn_twin.persist_batches());
        prop_assert_eq!(torn.cmds_applied(), torn_twin.cmds_applied());

        // Recovery sees the same world either way.
        let a = recover_from(&torn, scope);
        let b = recover_from(&torn_twin, scope);
        prop_assert_eq!(a.current_term(), b.current_term());
        prop_assert_eq!(a.log().first_index(), b.log().first_index());
        prop_assert_eq!(a.log().last_index(), b.log().last_index());
        prop_assert_eq!(a.commit_index(), b.commit_index());
        prop_assert_eq!(a.state_digest(), b.state_digest());
    }
}

/// The same guarantee end-to-end through both protocol front-ends: a node
/// recovered after a torn-batch crash is indistinguishable from one
/// recovered from the unbatched twin's disk.
#[test]
fn torn_batch_recovery_matches_for_both_protocols() {
    let cmds = cmd_stream(LogScope::Global, 12);
    let split = 7;
    let first = PersistBatch::from_cmds(cmds[..split].to_vec());
    let second = PersistBatch::from_cmds(cmds[split..].to_vec());
    let tear = second.len() - 2; // crash mid-way through the second fsync

    let mut crashed = StableState::new();
    crashed.apply_batch(&first);
    crashed.apply_batch(&second.prefix(tear));

    let mut unbatched = StableState::new();
    for cmd in cmds.iter().take(split + tear) {
        unbatched.apply(cmd);
    }
    assert_eq!(crashed, unbatched, "durable contents diverged");
    assert!(
        crashed.persist_batches() < unbatched.persist_batches(),
        "group commit should charge fewer fsync boundaries"
    );

    let cfg = Configuration::new([NodeId(0), NodeId(1), NodeId(2)]);
    let fast_a = FastRaftNode::recover(
        NodeId(0),
        &crashed,
        cfg.clone(),
        Timing::lan(),
        SimRng::seed_from_u64(7),
    );
    let fast_b = FastRaftNode::recover(
        NodeId(0),
        &unbatched,
        cfg.clone(),
        Timing::lan(),
        SimRng::seed_from_u64(7),
    );
    assert_eq!(fast_a.current_term(), fast_b.current_term());
    assert_eq!(fast_a.log().last_index(), fast_b.log().last_index());
    assert_eq!(fast_a.commit_index(), fast_b.commit_index());
    assert_eq!(fast_a.state_digest(), fast_b.state_digest());

    let raft_a = RaftNode::recover(
        NodeId(0),
        &crashed,
        cfg.clone(),
        Timing::lan(),
        SimRng::seed_from_u64(7),
    );
    let raft_b = RaftNode::recover(
        NodeId(0),
        &unbatched,
        cfg,
        Timing::lan(),
        SimRng::seed_from_u64(7),
    );
    assert_eq!(raft_a.current_term(), raft_b.current_term());
    assert_eq!(raft_a.log().last_index(), raft_b.log().last_index());
    assert_eq!(raft_a.commit_index(), raft_b.commit_index());
    assert_eq!(raft_a.state_digest(), raft_b.state_digest());
}
