//! Property: recovery from snapshot + log suffix is state-identical to
//! recovery from the full log, for both consensus scopes.
//!
//! "State" is (retained entries above the commit floor, configuration, and
//! the committed-sequence digest once the remaining suffix is applied): a
//! node that compacted its prefix and crashed must be indistinguishable —
//! to the protocol and to the application — from one that kept the whole
//! history.

use bytes::Bytes;
use consensus_core::{FastRaftEngine, TimerProfile};
use des::SimRng;
use proptest::prelude::*;
use raft::Timing;
use storage::StableState;
use wire::{
    fold_commit_digest, Configuration, EntryId, LogEntry, LogIndex, LogScope, NodeId, PersistCmd,
    Snapshot, Term,
};

fn entry(i: u64) -> LogEntry {
    LogEntry::data(
        Term(1 + i / 7),
        EntryId::new(NodeId(i % 3), i),
        Bytes::from(format!("value-{i}").into_bytes()),
    )
}

fn recover_from(stable: &StableState, scope: LogScope) -> FastRaftEngine {
    let s = stable.scope(scope);
    FastRaftEngine::recover(
        NodeId(0),
        s.current_term,
        s.voted_for,
        s.log.clone(),
        s.snapshot.clone(),
        Configuration::new([NodeId(0), NodeId(1), NodeId(2)]),
        scope,
        TimerProfile::Base,
        Timing::lan(),
        SimRng::seed_from_u64(1),
        s.proposal_seq_floor,
    )
}

/// Applies `n` inserts; on the `compacted` copy additionally installs a
/// snapshot through `k` built the way a live node would (boundary term from
/// the log, digest folded over the committed prefix).
fn build_states(scope: LogScope, n: u64, k: u64) -> (StableState, StableState, u64) {
    let mut full = StableState::new();
    for i in 1..=n {
        full.apply(&PersistCmd::Insert {
            scope,
            index: LogIndex(i),
            entry: entry(i),
        });
    }
    let mut compacted = full.clone();
    let mut digest = 0u64;
    for i in 1..=k {
        digest = fold_commit_digest(digest, LogIndex(i), entry(i).id);
    }
    compacted.apply(&PersistCmd::InstallSnapshot {
        snapshot: Snapshot {
            scope,
            last_index: LogIndex(k),
            last_term: entry(k).term,
            config: Configuration::new([NodeId(0), NodeId(1), NodeId(2)]),
            state: Snapshot::digest_state(digest),
            sessions: wire::SessionTable::new(),
        },
    });
    (full, compacted, digest)
}

proptest! {
    #[test]
    fn snapshot_plus_suffix_recovers_identical_state(
        n in 2u64..48,
        k_frac in 0u64..100,
        scope_global in any::<bool>(),
    ) {
        let k = 1 + k_frac % n; // 1..=n
        let scope = if scope_global { LogScope::Global } else { LogScope::Local };
        let (full, compacted, snap_digest) = build_states(scope, n, k);

        let from_full = recover_from(&full, scope);
        let from_snap = recover_from(&compacted, scope);

        // The retained suffix is identical entry-for-entry.
        prop_assert_eq!(from_snap.log().first_index(), LogIndex(k + 1));
        prop_assert_eq!(from_snap.log().last_index(), from_full.log().last_index());
        for i in (k + 1)..=n {
            prop_assert_eq!(
                from_snap.log().get(LogIndex(i)),
                from_full.log().get(LogIndex(i)),
                "entry {} diverged", i
            );
        }
        // The snapshot's prefix is known committed at recovery; the full-log
        // node relearns the same floor from the protocol.
        prop_assert_eq!(from_snap.commit_index(), LogIndex(k));
        prop_assert_eq!(from_snap.state_digest(), snap_digest);
        prop_assert_eq!(from_snap.config(), from_full.config());
        prop_assert_eq!(from_snap.current_term(), from_full.current_term());
        // Applying the remaining suffix to the snapshot state yields exactly
        // the digest of replaying the full history: state identity.
        let mut replayed_full = 0u64;
        for i in 1..=n {
            replayed_full = fold_commit_digest(replayed_full, LogIndex(i), entry(i).id);
        }
        let mut resumed = from_snap.state_digest();
        for i in (k + 1)..=n {
            resumed = fold_commit_digest(resumed, LogIndex(i), entry(i).id);
        }
        prop_assert_eq!(resumed, replayed_full);
        // Log-matching at the horizon still works: the boundary term survives.
        prop_assert_eq!(from_snap.log().term_at(LogIndex(k)), entry(k).term);
    }
}
