//! Regression test for ROADMAP snapshot item (b): a cluster leader that
//! flaps — deactivates and reactivates its global engine before the global
//! level evicts it — while local compaction discarded the interim
//! global-state entries, reconstructs a **front-gapped** global log view
//! (entries above a hole that starts right after the cached global
//! snapshot's horizon). The explicit invariant check must surface this via
//! [`Observation::GlobalViewGap`], the view must stay safe (commit floor
//! pinned at the horizon, nothing decided inside the gap), and the normal
//! snapshot/resend path must remain able to repair it.

use std::sync::Arc;

use consensus_core::{CRaftConfig, CRaftNode};
use des::SimRng;
use raft::testkit::Lockstep;
use storage::StableState;
use wire::{
    Approval, ClusterId, Configuration, EntryId, LogEntry, LogIndex, LogScope, NodeId,
    Observation, Payload, PersistCmd, SessionTable, Snapshot, Term, TimerKind,
};

/// A leader-approved global entry as it would appear inside a gs record.
fn global_entry(seq: u64) -> LogEntry {
    LogEntry {
        term: Term(1),
        id: EntryId::new(NodeId(3), seq),
        payload: Payload::Noop,
        approval: Approval::LeaderApproved,
    }
}

/// Builds the flapped leader's stable state for the race: the global
/// engine never compacted, so there is **no** persisted global snapshot —
/// but local compaction discarded the gs records for global indices 1..=4
/// while the leader was deactivated, leaving records only for 5..=7. The
/// reconstruction therefore starts at 5 with no covering horizon: a front
/// gap. (When a persisted snapshot exists, `FastRaftEngine::recover`
/// installs it and *discards* any suffix not anchored at its boundary, so
/// the no-snapshot flap is the one shape that reaches activation gapped.)
fn flapped_state(first_gs: u64) -> StableState {
    let mut stable = StableState::new();
    let mut li = 0u64;
    for gi in first_gs..=7 {
        li += 1;
        stable.apply(&PersistCmd::Insert {
            scope: LogScope::Local,
            index: LogIndex(li),
            entry: LogEntry {
                term: Term(1),
                id: EntryId::new(NodeId(0), 100 + li),
                payload: Payload::GlobalState(wire::GlobalState {
                    index: LogIndex(gi),
                    entry: Arc::new(global_entry(gi)),
                    global_commit: LogIndex::ZERO,
                }),
                approval: Approval::LeaderApproved,
            },
        });
    }
    stable
}

#[test]
fn reactivation_with_compacted_gs_records_surfaces_the_front_gap() {
    let stable = flapped_state(5);
    let members = Configuration::new([NodeId(0)]);
    let global_bootstrap = Configuration::new([NodeId(0), NodeId(3)]);
    let node = CRaftNode::recover(
        NodeId(0),
        &stable,
        members,
        global_bootstrap,
        CRaftConfig::paper(ClusterId(0)),
        SimRng::seed_from_u64(5),
    );
    let mut net = Lockstep::new([node]);
    // Single-member cluster: the election wins instantly and reactivates
    // the global side from the reconstruction — the race's reactivation
    // step, before any eviction happened at the global level.
    net.fire(NodeId(0), TimerKind::Election);
    net.deliver_all();
    assert!(net.node(NodeId(0)).is_local_leader());
    let gap = net.observations().iter().find_map(|(n, o)| match o {
        Observation::GlobalViewGap {
            horizon,
            first_retained,
        } if *n == NodeId(0) => Some((*horizon, *first_retained)),
        _ => None,
    });
    assert_eq!(
        gap,
        Some((LogIndex::ZERO, LogIndex(5))),
        "the invariant probe must surface the front-gapped reconstruction"
    );
    // The view holds the gap safely: the commit floor stays pinned below
    // the gap (nothing inside it may be treated as decided), while the
    // retained entries above the gap are preserved for the global leader's
    // quorum accounting.
    let engine = net.node(NodeId(0)).global_engine().expect("activated");
    assert_eq!(engine.commit_index(), LogIndex::ZERO);
    assert_eq!(engine.log().first_gap(), LogIndex(1));
    assert_eq!(engine.log().last_index(), LogIndex(7));
    net.assert_safety();
}

#[test]
fn contiguous_reactivation_does_not_fire_the_probe() {
    // Same shape but nothing was compacted away: gs records cover the
    // whole global prefix 1..=7, so the reconstruction is contiguous.
    let stable = flapped_state(1);
    let node = CRaftNode::recover(
        NodeId(0),
        &stable,
        Configuration::new([NodeId(0)]),
        Configuration::new([NodeId(0), NodeId(3)]),
        CRaftConfig::paper(ClusterId(0)),
        SimRng::seed_from_u64(6),
    );
    let mut net = Lockstep::new([node]);
    net.fire(NodeId(0), TimerKind::Election);
    net.deliver_all();
    assert!(net.node(NodeId(0)).is_local_leader());
    assert!(
        !net.observations()
            .iter()
            .any(|(_, o)| matches!(o, Observation::GlobalViewGap { .. })),
        "a contiguous reconstruction must not trip the invariant probe"
    );
    let engine = net.node(NodeId(0)).global_engine().expect("activated");
    assert_eq!(engine.log().first_gap(), LogIndex(8));
}

#[test]
fn gapped_leader_repairs_via_global_snapshot_install() {
    use consensus_core::FastRaftMessage;
    let stable = flapped_state(5);
    let node = CRaftNode::recover(
        NodeId(0),
        &stable,
        Configuration::new([NodeId(0)]),
        Configuration::new([NodeId(0), NodeId(3)]),
        CRaftConfig::paper(ClusterId(0)),
        SimRng::seed_from_u64(7),
    );
    let mut net = Lockstep::new([node]);
    net.fire(NodeId(0), TimerKind::Election);
    net.deliver_all();
    // The global leader (node 3, simulated) repairs the gap the way the
    // live system does: a snapshot transfer covering past the hole.
    net.with_node(NodeId(0), |n, out| {
        use wire::ConsensusProtocol;
        n.on_message(
            NodeId(3),
            consensus_core::CRaftMessage::Global(FastRaftMessage::InstallSnapshot {
                term: Term(1),
                leader: NodeId(3),
                snapshot: Snapshot {
                    scope: LogScope::Global,
                    last_index: LogIndex(5),
                    last_term: Term(1),
                    config: Configuration::new([NodeId(0), NodeId(3)]),
                    state: Snapshot::digest_state(9),
                    sessions: SessionTable::new(),
                },
            }),
            out,
        );
    });
    net.deliver_all();
    let engine = net.node(NodeId(0)).global_engine().expect("active");
    assert_eq!(engine.log().front_gap(), None, "install must close the gap");
    assert_eq!(engine.commit_index(), LogIndex(5));
    assert_eq!(engine.log().last_index(), LogIndex(7));
    // Suffix above the install boundary survived (consistent history).
    assert!(engine.log().get(LogIndex(6)).is_some());
    net.assert_safety();
}
