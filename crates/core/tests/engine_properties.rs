//! Property-based adversarial schedules for Fast Raft.
//!
//! Each case builds a 5-site cluster and interprets a random program of
//! scheduling primitives — proposals, timer fires, partial message
//! delivery, link filters, crashes and recoveries — then asserts the
//! safety property (Definition 2.1) and basic structural invariants. The
//! lockstep driver makes every interleaving reproducible from the proptest
//! seed.

use consensus_core::FastRaftNode;
use des::SimRng;
use proptest::prelude::*;
use raft::testkit::Lockstep;
use raft::{Role, Timing};
use wire::{Approval, Configuration, NodeId, TimerKind};

/// One step of an adversarial schedule.
#[derive(Clone, Debug)]
enum Step {
    /// A client proposal at node `n % 5`.
    Propose(u64),
    /// Deliver up to `k` queued messages.
    Deliver(u8),
    /// Fire a timer kind on node `n % 5`.
    Fire(u64, u8),
    /// Drop all traffic touching node `n % 5` (one-step filter).
    Isolate(u64),
    /// Clear the link filter.
    Heal,
    /// Crash node `n % 5` (if more than a quorum would remain).
    Crash(u64),
    /// Recover the lowest crashed node from stable storage.
    Recover,
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u64..5).prop_map(Step::Propose),
        (1u8..32).prop_map(Step::Deliver),
        ((0u64..5), (0u8..3)).prop_map(|(n, t)| Step::Fire(n, t)),
        (0u64..5).prop_map(Step::Isolate),
        Just(Step::Heal),
        (0u64..5).prop_map(Step::Crash),
        Just(Step::Recover),
    ]
}

fn timer_of(t: u8) -> TimerKind {
    match t {
        0 => TimerKind::Election,
        1 => TimerKind::Heartbeat,
        _ => TimerKind::LeaderTick,
    }
}

fn run_schedule(seed: u64, steps: &[Step]) {
    let cfg: Configuration = (0..5).map(NodeId).collect();
    let mut net = Lockstep::new((0..5).map(|i| {
        FastRaftNode::new(
            NodeId(i),
            cfg.clone(),
            Timing::lan(),
            SimRng::seed_from_u64(seed.wrapping_add(i)),
        )
    }));
    // Establish a leader so schedules start from a working group.
    net.fire(NodeId(0), TimerKind::Election);
    net.deliver_all();

    let mut crashed: Vec<NodeId> = Vec::new();
    for step in steps {
        match step {
            Step::Propose(n) => {
                let id = NodeId(n % 5);
                if !crashed.contains(&id) {
                    net.propose(id, b"p");
                }
            }
            Step::Deliver(k) => {
                for _ in 0..*k {
                    if !net.deliver_one() {
                        break;
                    }
                }
            }
            Step::Fire(n, t) => {
                net.fire(NodeId(n % 5), timer_of(*t));
            }
            Step::Isolate(n) => {
                let id = NodeId(n % 5);
                net.set_link_filter(move |a, b| a != id && b != id);
            }
            Step::Heal => net.set_link_filter(|_, _| true),
            Step::Crash(n) => {
                let id = NodeId(n % 5);
                if !crashed.contains(&id) && crashed.is_empty() {
                    // Keep at least 4 alive so quorums stay reachable and
                    // schedules remain productive.
                    net.crash(id);
                    crashed.push(id);
                }
            }
            Step::Recover => {
                if let Some(id) = crashed.pop() {
                    let stable = net.disk().read(id).cloned().unwrap_or_default();
                    let node = FastRaftNode::recover(
                        id,
                        &stable,
                        cfg.clone(),
                        Timing::lan(),
                        SimRng::seed_from_u64(seed ^ id.as_u64()),
                    );
                    net.restart(node);
                }
            }
        }
        // The safety property must hold at EVERY point of the schedule.
        net.assert_safety();
    }
    // Drain and settle: run leader machinery so outstanding work lands.
    net.set_link_filter(|_, _| true);
    net.deliver_all();
    for _ in 0..6 {
        for id in net.ids() {
            net.fire(id, TimerKind::LeaderTick);
            net.fire(id, TimerKind::Heartbeat);
        }
        net.deliver_all();
    }
    net.assert_safety();

    // Structural invariants on every live node.
    for id in net.ids() {
        if crashed.contains(&id) {
            continue;
        }
        let node = net.node(id);
        // Committed prefix is contiguous and fully leader-approved.
        let commit = node.commit_index();
        let mut k = wire::LogIndex::FIRST;
        while k <= commit {
            let entry = node
                .log()
                .get(k)
                .unwrap_or_else(|| panic!("{id}: hole below commit at {k}"));
            assert_eq!(
                entry.approval,
                Approval::LeaderApproved,
                "{id}: committed entry at {k} not leader-approved"
            );
            k = k.next();
        }
        // lastLeaderIndex is consistent with the log.
        assert_eq!(
            node.last_leader_index(),
            node.log().last_leader_index(),
            "{id}: lastLeaderIndex cache diverged"
        );
    }
    // At most one leader per term among live nodes.
    let leaders: Vec<_> = net
        .ids()
        .into_iter()
        .filter(|id| !crashed.contains(id))
        .filter(|id| net.node(*id).role() == Role::Leader)
        .map(|id| (net.node(id).current_term(), id))
        .collect();
    for i in 0..leaders.len() {
        for j in i + 1..leaders.len() {
            assert_ne!(
                leaders[i].0, leaders[j].0,
                "two leaders in one term: {leaders:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        max_shrink_iters: 200,
        ..ProptestConfig::default()
    })]

    #[test]
    fn safety_holds_under_adversarial_schedules(
        seed in any::<u64>(),
        steps in proptest::collection::vec(arb_step(), 1..120),
    ) {
        run_schedule(seed, &steps);
    }
}

/// A few fixed regression schedules (previously interesting interleavings).
#[test]
fn regression_isolate_leader_mid_proposal() {
    run_schedule(
        99,
        &[
            Step::Propose(1),
            Step::Deliver(3),
            Step::Isolate(0),
            Step::Fire(1, 0), // node 1 election while 0 isolated
            Step::Deliver(32),
            Step::Heal,
            Step::Propose(2),
            Step::Deliver(32),
            Step::Fire(1, 2),
            Step::Deliver(32),
            Step::Fire(1, 1),
            Step::Deliver(32),
        ],
    );
}

#[test]
fn regression_crash_recover_churn() {
    run_schedule(
        7,
        &[
            Step::Propose(3),
            Step::Deliver(8),
            Step::Crash(0),
            Step::Fire(2, 0),
            Step::Deliver(32),
            Step::Propose(4),
            Step::Deliver(32),
            Step::Fire(2, 2),
            Step::Deliver(32),
            Step::Recover,
            Step::Deliver(32),
            Step::Fire(2, 1),
            Step::Deliver(32),
        ],
    );
}
