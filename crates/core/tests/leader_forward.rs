//! Direct engine tests for [`ProposalMode::LeaderForward`] — the
//! contention-free proposal path used by C-Raft's global level — and for
//! the decision-loop mechanics around it.

use bytes::Bytes;
use consensus_core::{
    FastRaftEngine, FastRaftMessage, ProceedGate, ProposalMode, TimerProfile,
};
use des::SimRng;
use raft::{Role, Timing};
use wire::{Actions, Configuration, LogIndex, LogScope, NodeId, Payload, TimerKind};

fn engine(id: u64, members: u64) -> FastRaftEngine {
    let cfg: Configuration = (0..members).map(NodeId).collect();
    FastRaftEngine::new(
        NodeId(id),
        cfg,
        LogScope::Global,
        TimerProfile::Base,
        Timing::lan(),
        SimRng::seed_from_u64(7000 + id),
    )
}

/// Drives a set of engines synchronously (a minimal lockstep for raw
/// engines, which `raft::testkit` cannot host because of the gate
/// parameter).
struct Net {
    engines: Vec<FastRaftEngine>,
    queue: std::collections::VecDeque<(NodeId, NodeId, FastRaftMessage)>,
}

impl Net {
    fn new(engines: Vec<FastRaftEngine>) -> Self {
        Net {
            engines,
            queue: Default::default(),
        }
    }

    fn route(&mut self, from: NodeId, out: Actions<FastRaftMessage>) {
        for (to, msg) in out.sends {
            self.queue.push_back((from, to, msg));
        }
    }

    fn with<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut FastRaftEngine, &mut ProceedGate, &mut Actions<FastRaftMessage>) -> R,
    ) -> R {
        let mut out = Actions::new();
        let mut gate = ProceedGate;
        let idx = id.as_u64() as usize;
        let r = f(&mut self.engines[idx], &mut gate, &mut out);
        self.route(id, out);
        r
    }

    fn deliver_all(&mut self) {
        let mut guard = 0;
        while let Some((from, to, msg)) = self.queue.pop_front() {
            self.with(to, |e, g, out| e.on_message(from, msg, g, out));
            guard += 1;
            assert!(guard < 100_000, "livelock");
        }
    }

    fn tick(&mut self, id: NodeId, kind: TimerKind) {
        self.with(id, |e, g, out| e.on_timer(kind, g, out));
        self.deliver_all();
    }

    fn engine(&self, id: NodeId) -> &FastRaftEngine {
        &self.engines[id.as_u64() as usize]
    }
}

fn forward_cluster(n: u64) -> Net {
    let mut engines: Vec<FastRaftEngine> = (0..n).map(|i| engine(i, n)).collect();
    for e in &mut engines {
        e.set_proposal_mode(ProposalMode::LeaderForward);
    }
    let mut net = Net::new(engines);
    for i in 0..n {
        net.with(NodeId(i), |e, _g, out| e.bootstrap(out));
    }
    // Node 0 leads.
    net.with(NodeId(0), |e, g, out| {
        e.on_timer(TimerKind::Election, g, out)
    });
    net.deliver_all();
    assert_eq!(net.engine(NodeId(0)).role(), Role::Leader);
    net
}

#[test]
fn forwarded_proposals_get_sequential_indices() {
    let mut net = forward_cluster(3);
    // Two proposals from different nodes, interleaved before any delivery:
    // the leader must assign distinct, sequential slots.
    net.with(NodeId(1), |e, g, out| {
        e.propose_data(Bytes::from_static(b"a"), g, out)
    });
    net.with(NodeId(2), |e, g, out| {
        e.propose_data(Bytes::from_static(b"b"), g, out)
    });
    net.deliver_all();
    let leader = net.engine(NodeId(0));
    assert_eq!(leader.log().len(), 2, "both proposals appended");
    assert_eq!(leader.last_leader_index(), LogIndex(2));
    // Replication + commit over heartbeats.
    net.tick(NodeId(0), TimerKind::Heartbeat);
    net.tick(NodeId(0), TimerKind::Heartbeat);
    assert_eq!(net.engine(NodeId(0)).commit_index(), LogIndex(2));
}

#[test]
fn forwarded_duplicate_is_appended_once() {
    let mut net = forward_cluster(3);
    let id = net.with(NodeId(1), |e, g, out| {
        e.propose_data(Bytes::from_static(b"dup"), g, out)
    });
    net.deliver_all();
    // Retry fires before commit: same id forwarded again.
    net.tick(NodeId(1), TimerKind::ProposalRetry);
    let leader = net.engine(NodeId(0));
    let copies = leader.log().iter().filter(|(_, e)| e.id == id).count();
    assert_eq!(copies, 1, "duplicate forward created a second slot");
}

#[test]
fn forwarded_proposal_redirects_to_leader() {
    let mut net = forward_cluster(3);
    // Erase node 2's leader knowledge by simulating a fresh join? Simpler:
    // node 2 proposes; its hint is the leader already (heartbeats), so the
    // proposal goes straight there and commits; the proposer learns via
    // ProposeReply.
    let id = net.with(NodeId(2), |e, g, out| {
        e.propose_data(Bytes::from_static(b"c"), g, out)
    });
    net.deliver_all();
    net.tick(NodeId(0), TimerKind::Heartbeat);
    net.tick(NodeId(0), TimerKind::Heartbeat);
    assert_eq!(net.engine(NodeId(2)).pending_proposals(), 0, "proposer acked");
    let leader = net.engine(NodeId(0));
    let committed: Vec<_> = leader
        .log()
        .iter()
        .filter(|(k, _)| *k <= leader.commit_index())
        .map(|(_, e)| e.id)
        .collect();
    assert!(committed.contains(&id));
}

#[test]
fn unsettled_leader_defers_forwarded_proposals() {
    // A fresh leader with recovered (undecided) votes must not assign slots
    // until the backlog is decided: otherwise it could stomp a chosen entry.
    let mut net = forward_cluster(3);
    // Keep the mode but inject a broadcast-style self-approved entry at
    // index 1 on nodes 1 and 2, then force a leader change to node 1 so it
    // inherits an undecided index.
    // (Simulated by switching node 1's mode to Broadcast for one proposal.)
    net.with(NodeId(1), |e, g, out| {
        e.set_proposal_mode(ProposalMode::Broadcast);
        e.propose_data(Bytes::from_static(b"chosen?"), g, out);
        e.set_proposal_mode(ProposalMode::LeaderForward);
    });
    // Deliver the broadcast but NOT the votes to the old leader; then elect
    // node 1 (which holds the self-approved entry).
    net.deliver_all();
    net.with(NodeId(1), |e, g, out| {
        e.on_timer(TimerKind::Election, g, out)
    });
    net.deliver_all();
    if net.engine(NodeId(1)).role() == Role::Leader {
        // Recovery replays the self-approved entry; until the decision loop
        // settles it, forwarded proposals are deferred (not lost — retried).
        net.with(NodeId(2), |e, g, out| {
            e.propose_data(Bytes::from_static(b"later"), g, out)
        });
        net.deliver_all();
        // Decide the backlog, then the retry lands.
        net.tick(NodeId(1), TimerKind::LeaderTick);
        net.tick(NodeId(2), TimerKind::ProposalRetry);
        net.tick(NodeId(1), TimerKind::LeaderTick);
        net.tick(NodeId(1), TimerKind::Heartbeat);
        net.tick(NodeId(1), TimerKind::Heartbeat);
        let leader = net.engine(NodeId(1));
        // Both the inherited entry and the forwarded one must be present at
        // distinct indices.
        assert!(leader.log().len() >= 2);
        let ids: Vec<_> = leader.log().iter().map(|(_, e)| e.id).collect();
        assert_eq!(
            ids.len(),
            ids.iter().collect::<std::collections::HashSet<_>>().len(),
            "no id appears twice"
        );
    }
}

#[test]
fn mixed_modes_interoperate() {
    // Followers in Broadcast mode while the leader is addressed via
    // forwarded proposals: the leader's log remains the single order.
    let mut net = forward_cluster(5);
    net.with(NodeId(3), |e, g, out| {
        e.set_proposal_mode(ProposalMode::Broadcast);
        e.propose_data(Bytes::from_static(b"bcast"), g, out);
    });
    net.with(NodeId(1), |e, g, out| {
        e.propose_data(Bytes::from_static(b"fwd"), g, out)
    });
    net.deliver_all();
    for _ in 0..4 {
        net.tick(NodeId(0), TimerKind::LeaderTick);
        net.tick(NodeId(0), TimerKind::Heartbeat);
        // The forwarded proposal is deferred while the broadcast entry is
        // undecided (settledness guard); the proposer's retry lands it.
        net.tick(NodeId(1), TimerKind::ProposalRetry);
    }
    let leader = net.engine(NodeId(0));
    let committed: Vec<_> = leader
        .log()
        .iter()
        .filter(|(k, _)| *k <= leader.commit_index())
        .map(|(_, e)| match &e.payload {
            Payload::Data(d) => d.clone(),
            _ => Bytes::new(),
        })
        .collect();
    assert!(committed.iter().any(|d| &d[..] == b"bcast"));
    assert!(committed.iter().any(|d| &d[..] == b"fwd"));
}
