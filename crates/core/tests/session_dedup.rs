//! The repro for the old ROADMAP double-commit hole, now passing: a client
//! retry racing a leader restart **across the compaction boundary** must
//! never be applied twice.
//!
//! Before the session table, proposal dedup lived only in the in-log
//! `id_index`; compaction discarded the committed prefix and a restarted
//! leader rebuilt the map from what remained — so a retried proposal whose
//! original slot was compacted away sailed past dedup and committed again
//! at a new index. The session table is part of applied state and rides
//! inside every snapshot, so the check survives by construction. These
//! tests drive the race deterministically and property-test it across
//! write counts and thresholds, for classic Raft, Fast Raft, and both
//! C-Raft scopes (local writes and global batch items).

use consensus_core::{build_deployment, CRaftConfig, CRaftNode, FastRaftNode};
use des::SimRng;
use proptest::prelude::*;
use raft::testkit::Lockstep;
use raft::{RaftNode, Timing};
use wire::{
    ClientOutcome, ClientRequest, Configuration, LogIndex, LogScope, NodeId, SessionId, TimerKind,
};

fn snappy(threshold: u64) -> Timing {
    Timing {
        snapshot_threshold: threshold,
        ..Timing::lan()
    }
}

/// Asserts the retried key was answered `Duplicate` (never re-`Committed`
/// at a second index) after the first `Committed` answer.
fn assert_retry_suppressed<P: wire::ConsensusProtocol>(
    net: &Lockstep<P>,
    gateway: NodeId,
    session: SessionId,
    seq: u64,
) {
    let outcomes = net.responses_for(gateway, session, seq);
    // A client may be answered `Committed` more than once (one per
    // submission of the same key); what must never happen is answers
    // naming *different* application indices.
    let committed_indices: std::collections::BTreeSet<LogIndex> = outcomes
        .iter()
        .filter_map(|o| match o {
            ClientOutcome::Committed { index } => Some(*index),
            _ => None,
        })
        .collect();
    assert!(
        committed_indices.len() <= 1,
        "{session}:{seq} answered Committed at distinct indices: {committed_indices:?}"
    );
    assert!(
        outcomes
            .iter()
            .any(|o| matches!(o, ClientOutcome::Duplicate { .. } | ClientOutcome::Committed { .. })),
        "retry of {session}:{seq} never answered: {outcomes:?}"
    );
}

// ---------------------------------------------------------------------
// Classic Raft
// ---------------------------------------------------------------------

fn classic_race(writes: u64, threshold: u64, retry_seqs: &[u64]) {
    let cfg: Configuration = (0..3).map(NodeId).collect();
    let mut net = Lockstep::new((0..3).map(|i| {
        RaftNode::new(
            NodeId(i),
            cfg.clone(),
            snappy(threshold),
            SimRng::seed_from_u64(300 + i),
        )
    }));
    net.fire(NodeId(0), TimerKind::Election);
    net.deliver_all();
    let gw = NodeId(1);
    for i in 0..writes {
        net.propose(gw, format!("w{i}").as_bytes());
        net.deliver_all();
        net.fire(NodeId(0), TimerKind::Heartbeat);
        net.deliver_all();
    }
    net.fire(NodeId(0), TimerKind::Heartbeat);
    net.deliver_all();
    assert!(
        net.node(NodeId(0)).log().compacted_through() > LogIndex::ZERO,
        "race precondition: the leader must have compacted"
    );
    // Leader restart across the compaction boundary: its in-log dedup ids
    // for the compacted prefix are gone; only the snapshot's session table
    // still knows the applied seqs.
    net.crash(NodeId(0));
    let stable = net.disk().read(NodeId(0)).unwrap().clone();
    net.restart(RaftNode::recover(
        NodeId(0),
        &stable,
        cfg,
        snappy(threshold),
        SimRng::seed_from_u64(900),
    ));
    net.fire(NodeId(0), TimerKind::Election);
    net.deliver_all();
    net.fire(NodeId(0), TimerKind::Heartbeat);
    net.deliver_all();
    // The client retries seqs whose entries were compacted away.
    let session = SessionId::client(gw.as_u64());
    for &seq in retry_seqs {
        net.client_request(
            gw,
            ClientRequest::write(session, seq, format!("w{}", seq - 1).into_bytes().into()),
        );
        net.deliver_all();
        net.fire(NodeId(0), TimerKind::Heartbeat);
        net.deliver_all();
        net.fire(NodeId(0), TimerKind::Heartbeat);
        net.deliver_all();
    }
    for &seq in retry_seqs {
        assert_retry_suppressed(&net, gw, session, seq);
    }
    net.assert_exactly_once();
    net.assert_safety();
}

#[test]
fn classic_raft_retry_across_compaction_and_restart() {
    classic_race(12, 4, &[1, 6, 12]);
}

// ---------------------------------------------------------------------
// Fast Raft
// ---------------------------------------------------------------------

fn fast_race(writes: u64, threshold: u64, retry_seqs: &[u64]) {
    let cfg: Configuration = (0..3).map(NodeId).collect();
    let mut net = Lockstep::new((0..3).map(|i| {
        FastRaftNode::new(
            NodeId(i),
            cfg.clone(),
            snappy(threshold),
            SimRng::seed_from_u64(400 + i),
        )
    }));
    net.fire(NodeId(0), TimerKind::Election);
    net.deliver_all();
    let gw = NodeId(1);
    for i in 0..writes {
        net.propose(gw, format!("w{i}").as_bytes());
        net.deliver_all();
        net.fire(NodeId(0), TimerKind::LeaderTick);
        net.deliver_all();
        net.fire(NodeId(0), TimerKind::Heartbeat);
        net.deliver_all();
    }
    assert!(
        net.node(NodeId(0)).log().compacted_through() > LogIndex::ZERO,
        "race precondition: the leader must have compacted"
    );
    net.crash(NodeId(0));
    let stable = net.disk().read(NodeId(0)).unwrap().clone();
    net.restart(FastRaftNode::recover(
        NodeId(0),
        &stable,
        cfg,
        snappy(threshold),
        SimRng::seed_from_u64(901),
    ));
    net.fire(NodeId(0), TimerKind::Election);
    net.deliver_all();
    let session = SessionId::client(gw.as_u64());
    for &seq in retry_seqs {
        net.client_request(
            gw,
            ClientRequest::write(session, seq, format!("w{}", seq - 1).into_bytes().into()),
        );
        net.deliver_all();
        net.fire(NodeId(0), TimerKind::LeaderTick);
        net.deliver_all();
        net.fire(NodeId(0), TimerKind::Heartbeat);
        net.deliver_all();
        net.fire(NodeId(0), TimerKind::LeaderTick);
        net.deliver_all();
        net.fire(NodeId(0), TimerKind::Heartbeat);
        net.deliver_all();
    }
    for &seq in retry_seqs {
        assert_retry_suppressed(&net, gw, session, seq);
    }
    net.assert_exactly_once();
    net.assert_safety();
}

#[test]
fn fast_raft_retry_across_compaction_and_restart() {
    fast_race(12, 4, &[1, 6, 12]);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        max_shrink_iters: 50,
        ..ProptestConfig::default()
    })]

    /// The property, across write counts and thresholds: no retried seq is
    /// ever applied twice, in either protocol.
    #[test]
    fn retries_never_double_apply(
        writes in 6u64..18,
        threshold in 2u64..6,
        pick in 0u64..100,
    ) {
        let retry = 1 + pick % writes;
        classic_race(writes, threshold, &[retry, writes]);
        fast_race(writes, threshold, &[retry, writes]);
    }
}

// ---------------------------------------------------------------------
// C-Raft: both scopes (local writes, global batch items)
// ---------------------------------------------------------------------

fn craft_race(writes: u64, threshold: u64, retry_seqs: &[u64]) {
    let per = 3u64;
    let make_cfg = move |c| {
        let mut cfg = CRaftConfig::paper(c);
        cfg.batch_size = 1;
        cfg.local_timing = snappy(threshold);
        cfg.global_snapshot_threshold = threshold;
        cfg
    };
    let (nodes, global_bootstrap) = build_deployment(2, per, make_cfg, 77);
    let mut net = Lockstep::new(nodes);
    net.set_safety_domains(move |n| n.as_u64() / per);
    for h in [NodeId(0), NodeId(3)] {
        net.fire(h, TimerKind::Election);
        net.deliver_all();
    }
    net.fire(NodeId(0), TimerKind::GlobalElection);
    net.deliver_all();

    let gw = NodeId(1);
    for i in 0..writes {
        net.propose(gw, format!("w{i}").as_bytes());
        net.deliver_all();
        for h in [NodeId(0), NodeId(3)] {
            net.fire(h, TimerKind::LeaderTick);
            net.deliver_all();
            net.fire(h, TimerKind::Heartbeat);
            net.deliver_all();
            net.fire(h, TimerKind::GlobalLeaderTick);
            net.deliver_all();
            net.fire(h, TimerKind::GlobalHeartbeat);
            net.deliver_all();
        }
    }
    assert!(
        net.node(NodeId(0))
            .local_log()
            .compacted_through()
            > LogIndex::ZERO,
        "race precondition: the cluster leader must have compacted locally"
    );
    // Cluster leader restarts across the compaction boundary; its successor
    // view rebuilds from snapshot + surviving global-state entries.
    net.crash(NodeId(0));
    let stable = net.disk().read(NodeId(0)).unwrap().clone();
    let members: Configuration = (0..per).map(NodeId).collect();
    net.restart(CRaftNode::recover(
        NodeId(0),
        &stable,
        members,
        global_bootstrap,
        make_cfg(wire::ClusterId(0)),
        SimRng::seed_from_u64(902),
    ));
    net.fire(NodeId(0), TimerKind::Election);
    net.deliver_all();
    net.fire(NodeId(0), TimerKind::GlobalElection);
    net.deliver_all();

    // Client retries against the restarted cluster: the local session table
    // (from the local snapshot) suppresses the write; if anything does slip
    // into a batch again, the global item-wise table suppresses the item.
    let session = SessionId::client(gw.as_u64());
    for &seq in retry_seqs {
        net.client_request(
            gw,
            ClientRequest::write(session, seq, format!("w{}", seq - 1).into_bytes().into()),
        );
        net.deliver_all();
        for h in [NodeId(0), NodeId(3)] {
            net.fire(h, TimerKind::LeaderTick);
            net.deliver_all();
            net.fire(h, TimerKind::Heartbeat);
            net.deliver_all();
            net.fire(h, TimerKind::GlobalLeaderTick);
            net.deliver_all();
            net.fire(h, TimerKind::GlobalHeartbeat);
            net.deliver_all();
        }
    }
    for &seq in retry_seqs {
        assert_retry_suppressed(&net, gw, session, seq);
    }
    // Exactly-once at BOTH scopes: the write applied once in cluster 0's
    // local log, and its batch item applied once in the global log.
    net.assert_exactly_once();
    net.assert_safety();

    // Every retried seq that reached the global level did so at one index.
    let mut global_applies: std::collections::HashMap<u64, LogIndex> = Default::default();
    for (_, scope, s, seq, index) in net.session_applies() {
        if scope == LogScope::Global && s == session {
            if let Some(prev) = global_applies.insert(seq, index) {
                assert_eq!(prev, index, "global item {s}:{seq} applied twice");
            }
        }
    }
}

#[test]
fn craft_retry_across_compaction_and_restart_both_scopes() {
    craft_race(10, 3, &[1, 5, 10]);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        max_shrink_iters: 25,
        ..ProptestConfig::default()
    })]

    #[test]
    fn craft_retries_never_double_apply(
        writes in 6u64..12,
        threshold in 2u64..5,
        pick in 0u64..100,
    ) {
        let retry = 1 + pick % writes;
        craft_race(writes, threshold, &[retry, writes]);
    }
}
