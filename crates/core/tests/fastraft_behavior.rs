//! Scenario tests for Fast Raft driven through the lockstep testkit.

use consensus_core::{FastRaftMessage, FastRaftNode};
use des::SimRng;
use raft::testkit::Lockstep;
use raft::{Role, Timing};
use wire::{
    ClientOutcome, Configuration, LogIndex, NodeId, Observation, Payload, TimerKind,
};

/// `true` once the client at `node` got a terminal `Committed` answer for
/// its request key.
fn committed_response(
    net: &Lockstep<FastRaftNode>,
    node: NodeId,
    key: (wire::SessionId, u64),
) -> bool {
    net.responses_for(node, key.0, key.1)
        .iter()
        .any(|o| matches!(o, ClientOutcome::Committed { .. }))
}

fn cluster(n: u64) -> Lockstep<FastRaftNode> {
    let cfg: Configuration = (0..n).map(NodeId).collect();
    Lockstep::new((0..n).map(|i| {
        FastRaftNode::new(
            NodeId(i),
            cfg.clone(),
            Timing::lan(),
            SimRng::seed_from_u64(2000 + i),
        )
    }))
}

fn elect(net: &mut Lockstep<FastRaftNode>, who: NodeId) -> NodeId {
    net.fire(who, TimerKind::Election);
    net.deliver_all();
    assert_eq!(net.node(who).role(), Role::Leader, "{who} failed to win");
    who
}

/// Runs one leader decision tick and drains messages.
fn tick(net: &mut Lockstep<FastRaftNode>, leader: NodeId) {
    net.fire(leader, TimerKind::LeaderTick);
    net.deliver_all();
}

/// Runs one heartbeat and drains messages.
fn beat(net: &mut Lockstep<FastRaftNode>, leader: NodeId) {
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
}

#[test]
fn election_and_single_leader() {
    let mut net = cluster(5);
    elect(&mut net, NodeId(0));
    assert_eq!(
        net.leaders_by(|n| n.role() == Role::Leader),
        vec![NodeId(0)]
    );
}

#[test]
fn fast_track_commits_in_two_rounds() {
    let mut net = cluster(5);
    let leader = elect(&mut net, NodeId(0));
    // Round 1: proposer broadcast; round 2: votes to leader.
    let pid = net.propose(NodeId(2), b"fast");
    net.deliver_all();
    // The decision tick commits on the fast quorum — no AppendEntries round
    // is needed before the proposer is notified.
    tick(&mut net, leader);
    let fast_commit = net
        .observations()
        .iter()
        .any(|(n, o)| *n == leader && matches!(o, Observation::FastTrackCommit { .. }));
    assert!(fast_commit, "expected a fast-track commit");
    assert!(
        committed_response(&net, NodeId(2), pid),
        "proposer not notified after fast commit"
    );
    net.assert_safety();
}

#[test]
fn followers_learn_commit_via_heartbeat() {
    let mut net = cluster(5);
    let leader = elect(&mut net, NodeId(0));
    net.propose(NodeId(1), b"x");
    net.deliver_all();
    tick(&mut net, leader);
    // Followers haven't advanced commitIndex yet (§IV-B: "followers only
    // update their own commitIndex after receiving from the leader").
    assert_eq!(net.node(NodeId(3)).commit_index(), LogIndex::ZERO);
    beat(&mut net, leader);
    for id in net.ids() {
        assert!(
            net.node(id).commit_index() >= LogIndex(1),
            "{id} did not learn the commit"
        );
    }
    net.assert_safety();
}

#[test]
fn lost_votes_fall_back_to_classic_track() {
    let mut net = cluster(5);
    let leader = elect(&mut net, NodeId(0));
    // Drop all traffic from nodes 3 and 4 to the leader: only 3 of 5 votes
    // arrive (leader, 1, 2) — a classic quorum but not a fast quorum.
    net.set_link_filter(move |from, to| {
        !(to == NodeId(0) && (from == NodeId(3) || from == NodeId(4)))
    });
    let pid = net.propose(NodeId(1), b"classic");
    net.deliver_all();
    // Decision tick: inserts the entry (classic quorum of votes) but cannot
    // fast-commit (no fast quorum).
    tick(&mut net, leader);
    assert!(
        !net.observations()
            .iter()
            .any(|(_, o)| matches!(o, Observation::FastTrackCommit { .. })),
        "fast commit should be impossible with 3/5 votes"
    );
    // Classic track: heartbeat replicates, acks advance matchIndex (nodes 1
    // and 2 can still reach the leader), commit follows.
    beat(&mut net, leader);
    let classic_commit = net
        .observations()
        .iter()
        .any(|(n, o)| *n == leader && matches!(o, Observation::ClassicTrackCommit { .. }));
    assert!(classic_commit, "expected a classic-track commit");
    assert!(committed_response(&net, NodeId(1), pid));
    net.assert_safety();
}

#[test]
fn concurrent_proposals_one_wins_other_retries() {
    let mut net = cluster(5);
    let leader = elect(&mut net, NodeId(0));
    // Two proposers race for the same index. Delivery order decides who
    // reaches each follower first; votes split.
    let pid_a = net.propose(NodeId(1), b"a");
    let pid_b = net.propose(NodeId(2), b"b");
    net.deliver_all();
    tick(&mut net, leader);
    beat(&mut net, leader);
    tick(&mut net, leader);
    // The losing proposer re-proposes at a new index on its retry timer.
    net.fire(NodeId(1), TimerKind::ProposalRetry);
    net.fire(NodeId(2), TimerKind::ProposalRetry);
    net.deliver_all();
    tick(&mut net, leader);
    beat(&mut net, leader);
    tick(&mut net, leader);
    beat(&mut net, leader);
    assert!(committed_response(&net, NodeId(1), pid_a), "a never committed");
    assert!(committed_response(&net, NodeId(2), pid_b), "b never committed");
    // Each applied exactly once, everywhere.
    net.assert_exactly_once();
    net.assert_safety();
}

#[test]
fn recovery_preserves_fast_committed_entry() {
    let mut net = cluster(5);
    let leader = elect(&mut net, NodeId(0));
    // Proposer broadcast reaches everyone; votes reach the leader; the
    // leader fast-commits... and crashes before any heartbeat tells the
    // followers.
    let _pid = net.propose(NodeId(2), b"survivor");
    net.deliver_all();
    tick(&mut net, leader);
    let committed_entry = net
        .commits(leader)
        .iter()
        .find(|c| matches!(c.entry.payload, Payload::Write { .. }))
        .expect("leader fast-committed")
        .clone();
    net.crash(leader);
    // New election: node 1's log has the entry only self-approved, so
    // recovery must resend self-approved entries and re-choose it.
    net.fire(NodeId(1), TimerKind::Election);
    net.deliver_all();
    assert_eq!(net.node(NodeId(1)).role(), Role::Leader);
    tick(&mut net, NodeId(1));
    beat(&mut net, NodeId(1));
    tick(&mut net, NodeId(1));
    beat(&mut net, NodeId(1));
    // The new leader must commit the same entry at the same index.
    let recommitted = net
        .commits(NodeId(1))
        .iter()
        .find(|c| c.index == committed_entry.index)
        .expect("new leader committed the index");
    assert_eq!(
        recommitted.entry.id, committed_entry.entry.id,
        "Invariant 2 violated: different entry at a committed index"
    );
    net.assert_safety();
}

#[test]
fn up_to_dateness_ignores_self_approved_entries() {
    let mut net = cluster(5);
    let leader = elect(&mut net, NodeId(0));
    // Stuff node 4 with self-approved entries by letting a proposal reach
    // only node 4 (and nobody else, not even the leader).
    net.set_link_filter(|from, to| {
        // Node 3's broadcast reaches only node 4.
        if from == NodeId(3) {
            return to == NodeId(4);
        }
        true
    });
    net.propose(NodeId(3), b"only-4-gets-this");
    net.deliver_all();
    net.set_link_filter(|_, _| true);
    // Commit one real entry through the leader so others have a
    // leader-approved entry node 4 lacks... deliver only to 1,2 on the
    // classic path? Simpler: commit normally — everyone gets it except we
    // block node 4 from heartbeats.
    net.set_link_filter(|_, to| to != NodeId(4));
    net.propose(NodeId(1), b"real");
    net.deliver_all();
    tick(&mut net, NodeId(0));
    beat(&mut net, NodeId(0));
    net.set_link_filter(|_, _| true);
    // Now node 4 (many self-approved, no leader-approved) runs for leader;
    // node 1 (leader-approved entry) must refuse the vote.
    net.crash(leader);
    net.fire(NodeId(4), TimerKind::Election);
    net.deliver_all();
    assert_ne!(
        net.node(NodeId(4)).role(),
        Role::Leader,
        "stale candidate must lose despite self-approved entries"
    );
    net.assert_safety();
}

#[test]
fn join_request_adds_member_after_catchup() {
    let mut net = cluster(3);
    let leader = elect(&mut net, NodeId(0));
    net.propose(NodeId(1), b"pre-join");
    net.deliver_all();
    tick(&mut net, leader);
    beat(&mut net, leader);
    // Node 9 joins via contacts.
    let joiner = FastRaftNode::joining(
        NodeId(9),
        vec![NodeId(0), NodeId(1), NodeId(2)],
        Timing::lan(),
        SimRng::seed_from_u64(99),
    );
    net.restart(joiner);
    net.deliver_all();
    // Catch-up: heartbeats replicate the log to the learner; its acks
    // trigger the configuration proposal; another beat commits it.
    beat(&mut net, leader);
    beat(&mut net, leader);
    beat(&mut net, leader);
    assert_eq!(net.node(leader).config().len(), 4, "config must include joiner");
    assert!(!net.node(NodeId(9)).is_joining(), "joiner should be a member");
    assert!(net
        .observations()
        .iter()
        .any(|(n, o)| *n == leader && matches!(o, Observation::JoinAccepted { node } if *node == NodeId(9))));
    // The new member has the pre-join entry.
    assert!(net.node(NodeId(9)).commit_index() >= LogIndex(1));
    // And participates in new commits.
    net.propose(NodeId(9), b"post-join");
    net.deliver_all();
    tick(&mut net, leader);
    beat(&mut net, leader);
    beat(&mut net, leader);
    assert!(net
        .commits(NodeId(9))
        .iter()
        .any(|c| matches!(c.entry.payload, Payload::Write { .. })));
    net.assert_safety();
}

#[test]
fn silent_leave_detected_by_member_timeout() {
    let mut net = cluster(5);
    let leader = elect(&mut net, NodeId(0));
    // Nodes 3 and 4 leave silently.
    net.crash(NodeId(3));
    net.crash(NodeId(4));
    // member_timeout_beats = 5: after five unanswered heartbeats the leader
    // proposes a configuration excluding one of them, then the other.
    for _ in 0..6 {
        beat(&mut net, leader);
        tick(&mut net, leader);
    }
    assert!(net
        .observations()
        .iter()
        .any(|(n, o)| *n == leader && matches!(o, Observation::MemberSuspected { .. })));
    // First removal shrinks the config to 4; five more beats remove the
    // second.
    for _ in 0..7 {
        beat(&mut net, leader);
        tick(&mut net, leader);
    }
    assert_eq!(
        net.node(leader).config().len(),
        3,
        "both silent leavers must be removed"
    );
    // Consensus continues with the shrunken cluster: fast quorum is now 3.
    let pid = net.propose(NodeId(1), b"after-leave");
    net.deliver_all();
    tick(&mut net, leader);
    beat(&mut net, leader);
    assert!(
        committed_response(&net, NodeId(1), pid),
        "commit must proceed after reconfiguration"
    );
    net.assert_safety();
}

#[test]
fn announced_leave_removes_member() {
    let mut net = cluster(4);
    let leader = elect(&mut net, NodeId(0));
    // Node 3 announces departure.
    net.with_node(NodeId(3), |n, out| n.request_leave(out));
    net.deliver_all();
    beat(&mut net, leader);
    beat(&mut net, leader);
    assert_eq!(net.node(leader).config().len(), 3);
    assert!(!net.node(leader).config().contains(NodeId(3)));
    net.assert_safety();
}

#[test]
fn proposer_retry_is_idempotent() {
    let mut net = cluster(5);
    let leader = elect(&mut net, NodeId(0));
    let pid = net.propose(NodeId(2), b"retry-me");
    net.deliver_all();
    // Retry before the decision tick: same id broadcast again.
    net.fire(NodeId(2), TimerKind::ProposalRetry);
    net.deliver_all();
    tick(&mut net, leader);
    beat(&mut net, leader);
    tick(&mut net, leader);
    beat(&mut net, leader);
    let commits_of_pid = net
        .commits(leader)
        .iter()
        .filter(|c| c.entry.payload.session_key() == Some(pid))
        .count();
    assert_eq!(commits_of_pid, 1, "retried proposal committed twice");
    net.assert_exactly_once();
    net.assert_safety();
}

#[test]
fn crash_recovery_rebuilds_from_stable_storage() {
    let mut net = cluster(5);
    let leader = elect(&mut net, NodeId(0));
    net.propose(NodeId(1), b"persisted");
    net.deliver_all();
    tick(&mut net, leader);
    beat(&mut net, leader);
    net.crash(NodeId(2));
    let stable = net.disk().read(NodeId(2)).expect("stable state").clone();
    let cfg: Configuration = (0..5).map(NodeId).collect();
    let recovered = FastRaftNode::recover(
        NodeId(2),
        &stable,
        cfg,
        Timing::lan(),
        SimRng::seed_from_u64(500),
    );
    assert_eq!(recovered.current_term(), net.node(leader).current_term());
    assert_eq!(recovered.commit_index(), LogIndex::ZERO, "commitIndex is volatile");
    net.restart(recovered);
    beat(&mut net, leader);
    beat(&mut net, leader);
    assert!(net.node(NodeId(2)).commit_index() >= LogIndex(1));
    net.assert_safety();
}

#[test]
fn hole_fill_unblocks_partial_broadcast() {
    let mut net = cluster(5);
    let leader = elect(&mut net, NodeId(0));
    // A proposal reaches only node 4; its vote reaches the leader, but no
    // quorum ever forms for index 1, and the proposer (node 3) goes silent.
    net.set_link_filter(|from, to| {
        if from == NodeId(3) {
            return to == NodeId(4);
        }
        true
    });
    net.propose(NodeId(3), b"orphan");
    net.deliver_all();
    net.crash(NodeId(3));
    net.set_link_filter(|_, _| true);
    // Another proposal lands at index 2 on everyone else... leaving index 1
    // (on node 4's view) potentially conflicting. Drive decision ticks past
    // hole_fill_ticks: the leader proposes a no-op for the blocked index.
    net.propose(NodeId(1), b"behind-hole");
    net.deliver_all();
    for _ in 0..12 {
        tick(&mut net, leader);
        beat(&mut net, leader);
        net.deliver_all();
    }
    // Liveness: node 1's proposal must eventually commit.
    let committed = net
        .commits(leader)
        .iter()
        .any(|c| matches!(&c.entry.payload, Payload::Write { data, .. } if &data[..] == b"behind-hole"));
    assert!(committed, "hole filling failed to restore liveness");
    net.assert_safety();
}

#[test]
fn five_node_fast_quorum_is_four() {
    let mut net = cluster(5);
    let leader = elect(&mut net, NodeId(0));
    // Block exactly one non-leader voter (node 4): 4 of 5 votes arrive —
    // exactly a fast quorum.
    net.set_link_filter(move |from, to| !(to == NodeId(0) && from == NodeId(4)));
    net.propose(NodeId(1), b"4-votes");
    net.deliver_all();
    tick(&mut net, leader);
    assert!(
        net.observations()
            .iter()
            .any(|(_, o)| matches!(o, Observation::FastTrackCommit { .. })),
        "4/5 identical votes must fast-commit"
    );
    net.assert_safety();
}

#[test]
fn wire_messages_used_by_engine_roundtrip() {
    // Smoke-check the protocol messages produced in a live run decode.
    use wire::Wire;
    let mut net = cluster(3);
    elect(&mut net, NodeId(0));
    net.propose(NodeId(1), b"codec");
    // Drain manually to intercept messages.
    while net.deliver_one() {}
    // Synthesize a few common messages and roundtrip them.
    let m = FastRaftMessage::JoinRequest { node: NodeId(7) };
    assert_eq!(FastRaftMessage::from_bytes(&m.to_bytes()).unwrap(), m);
}

#[test]
fn recovered_gateway_never_reuses_proposal_ids() {
    let mut net = cluster(5);
    let leader = elect(&mut net, NodeId(0));
    // Several proposals from node 2 commit before the crash, consuming
    // proposal-sequence numbers.
    for _ in 0..3 {
        net.propose(NodeId(2), b"pre-crash");
        net.deliver_all();
        tick(&mut net, leader);
        beat(&mut net, leader);
    }
    net.crash(NodeId(2));
    let stable = net.disk().read(NodeId(2)).expect("stable state").clone();
    let cfg: Configuration = (0..5).map(NodeId).collect();
    net.restart(FastRaftNode::recover(
        NodeId(2),
        &stable,
        cfg,
        Timing::lan(),
        SimRng::seed_from_u64(501),
    ));
    beat(&mut net, leader);
    // A fresh write from the recovered gateway. Without the persisted
    // sequence reservation its proposal counter restarts at 0 and re-mints
    // a pre-crash EntryId: every peer's id dedup then answers with the OLD
    // entry's commit and the new write silently never enters the log.
    let key = net.propose(NodeId(2), b"post-crash");
    net.deliver_all();
    for _ in 0..2 {
        tick(&mut net, leader);
        beat(&mut net, leader);
    }
    assert!(
        committed_response(&net, NodeId(2), key),
        "post-crash write never answered"
    );
    assert!(
        net.commits(leader)
            .iter()
            .any(|c| c.entry.payload.session_key() == Some(key)),
        "post-crash write was swallowed by proposal-id dedup"
    );
    net.assert_exactly_once();
    net.assert_safety();
}
