//! Session registration through the shared engine (Fast Raft) and across
//! the hierarchy (C-Raft): a committed [`wire::Payload::Register`] opens
//! the session's dedup window at every level it reaches.

use consensus_core::{build_deployment, CRaftConfig, CRaftNode, FastRaftNode};
use des::SimRng;
use raft::testkit::Lockstep;
use raft::{Role, Timing};
use wire::{
    ClientOutcome, ClientRequest, Configuration, LogScope, NodeId, Observation, Payload, SessionId,
    TimerKind,
};

#[test]
fn engine_register_commits_and_assigns_id() {
    let cfg: Configuration = (0..3).map(NodeId).collect();
    let mut net = Lockstep::new((0..3).map(|i| {
        FastRaftNode::new(
            NodeId(i),
            cfg.clone(),
            Timing::lan(),
            SimRng::seed_from_u64(8500 + i),
        )
    }));
    net.fire(NodeId(0), TimerKind::Election);
    net.deliver_all();
    assert_eq!(net.node(NodeId(0)).role(), Role::Leader);
    net.client_request(NodeId(0), ClientRequest::register(SessionId::UNASSIGNED));
    net.deliver_all();
    net.fire(NodeId(0), TimerKind::LeaderTick);
    net.deliver_all();
    net.fire(NodeId(0), TimerKind::Heartbeat);
    net.deliver_all();
    let regs: Vec<SessionId> = net
        .observations()
        .iter()
        .filter_map(|(n, o)| match o {
            Observation::ClientResponse {
                outcome: ClientOutcome::Registered { session, .. },
                ..
            } if *n == NodeId(0) => Some(*session),
            _ => None,
        })
        .collect();
    assert_eq!(regs.len(), 1, "registration unanswered: {regs:?}");
    assert!(!regs[0].is_unassigned(), "no server-assigned id");
    // Seq 1 is consumed: the session's first data write lands at seq 2.
    net.client_request(
        NodeId(0),
        ClientRequest::write(regs[0], 2, bytes::Bytes::from_static(b"w2")),
    );
    net.deliver_all();
    net.fire(NodeId(0), TimerKind::LeaderTick);
    net.deliver_all();
    net.fire(NodeId(0), TimerKind::Heartbeat);
    net.deliver_all();
    assert!(net
        .responses_for(NodeId(0), regs[0], 2)
        .iter()
        .any(|o| matches!(o, ClientOutcome::Committed { .. })));
    net.assert_exactly_once();
    net.assert_safety();
}

/// C-Raft: a registration committed in one cluster rides a global batch,
/// carrying the session's `(session, 1)` dedup key with an empty value, so
/// every cluster's global dedup window starts at the registration.
#[test]
fn craft_register_propagates_in_global_batch() {
    let (nodes, _) = build_deployment(
        2,
        3,
        |c| {
            let mut cfg = CRaftConfig::paper(c);
            cfg.batch_size = 1;
            cfg
        },
        77,
    );
    let mut net: Lockstep<CRaftNode> = Lockstep::new(nodes);
    net.set_safety_domains(|n| n.as_u64() / 3);
    for c in 0..2u64 {
        net.fire(NodeId(c * 3), TimerKind::Election);
        net.deliver_all();
        assert!(net.node(NodeId(c * 3)).is_local_leader());
    }
    net.fire(NodeId(0), TimerKind::GlobalElection);
    net.deliver_all();
    assert!(net.node(NodeId(0)).is_global_leader());

    net.client_request(NodeId(0), ClientRequest::register(SessionId::UNASSIGNED));
    net.deliver_all();
    net.fire(NodeId(0), TimerKind::LeaderTick);
    net.deliver_all();
    net.fire(NodeId(0), TimerKind::Heartbeat);
    net.deliver_all();
    let session = net
        .observations()
        .iter()
        .find_map(|(n, o)| match o {
            Observation::ClientResponse {
                outcome: ClientOutcome::Registered { session, .. },
                ..
            } if *n == NodeId(0) => Some(*session),
            _ => None,
        })
        .expect("registration acked at local commit");

    // Pump the hierarchy until the batch commits globally everywhere.
    for _ in 0..6 {
        for h in [NodeId(0), NodeId(3)] {
            net.fire(h, TimerKind::LeaderTick);
            net.deliver_all();
            net.fire(h, TimerKind::Heartbeat);
            net.deliver_all();
        }
        for h in [NodeId(0), NodeId(3)] {
            net.fire(h, TimerKind::GlobalLeaderTick);
            net.deliver_all();
            net.fire(h, TimerKind::GlobalHeartbeat);
            net.deliver_all();
        }
    }
    for head in [NodeId(0), NodeId(3)] {
        let found = net.commits(head).iter().any(|c| {
            c.scope == LogScope::Global
                && matches!(
                    &c.entry.payload,
                    Payload::Batch(b) if b.items
                        .iter()
                        .any(|i| i.key == Some((session, 1)) && i.data.is_empty())
                )
        });
        assert!(
            found,
            "{head}: the registration's (session, 1) key never committed globally"
        );
    }
    net.assert_safety();
}
