//! Scenario tests for C-Raft's hierarchical consensus (§V).

use consensus_core::{build_deployment, CRaftConfig, CRaftNode};
use raft::testkit::Lockstep;
use wire::{LogIndex, LogScope, NodeId, Payload, TimerKind};

/// Builds `clusters × per_cluster` sites with batch size `batch`.
fn deployment(clusters: u64, per_cluster: u64, batch: usize) -> Lockstep<CRaftNode> {
    let (nodes, _) = build_deployment(
        clusters,
        per_cluster,
        |c| {
            let mut cfg = CRaftConfig::paper(c);
            cfg.batch_size = batch;
            cfg
        },
        42,
    );
    let mut net = Lockstep::new(nodes);
    net.set_safety_domains(move |n| n.as_u64() / per_cluster);
    net
}

/// First node of cluster `c` in a row-major deployment.
fn head(c: u64, per_cluster: u64) -> NodeId {
    NodeId(c * per_cluster)
}

/// Elects the designated head of each cluster as local leader.
fn elect_heads(net: &mut Lockstep<CRaftNode>, clusters: u64, per_cluster: u64) {
    for c in 0..clusters {
        net.fire(head(c, per_cluster), TimerKind::Election);
        net.deliver_all();
        assert!(
            net.node(head(c, per_cluster)).is_local_leader(),
            "cluster {c} head failed local election"
        );
    }
}

/// Elects a global leader among the (already elected) local leaders.
fn elect_global(net: &mut Lockstep<CRaftNode>, who: NodeId) {
    net.fire(who, TimerKind::GlobalElection);
    net.deliver_all();
    assert!(net.node(who).is_global_leader(), "{who} lost global election");
}

/// One full "pump" of the hierarchy: local decision ticks + heartbeats, then
/// global tick + heartbeat, for every cluster head.
fn pump(net: &mut Lockstep<CRaftNode>, clusters: u64, per_cluster: u64) {
    for c in 0..clusters {
        let h = head(c, per_cluster);
        net.fire(h, TimerKind::LeaderTick);
        net.deliver_all();
        net.fire(h, TimerKind::Heartbeat);
        net.deliver_all();
    }
    for c in 0..clusters {
        let h = head(c, per_cluster);
        net.fire(h, TimerKind::GlobalLeaderTick);
        net.deliver_all();
        net.fire(h, TimerKind::GlobalHeartbeat);
        net.deliver_all();
    }
}

#[test]
fn local_leaders_activate_global_side() {
    let mut net = deployment(2, 3, 2);
    elect_heads(&mut net, 2, 3);
    assert!(net.node(NodeId(0)).global_engine().is_some());
    assert!(net.node(NodeId(3)).global_engine().is_some());
    assert!(net.node(NodeId(1)).global_engine().is_none());
}

#[test]
fn local_commit_then_batch_then_global_commit() {
    let mut net = deployment(2, 3, 2);
    elect_heads(&mut net, 2, 3);
    elect_global(&mut net, NodeId(0));

    // Two proposals in cluster 0 fill one batch (batch size 2).
    net.propose(NodeId(1), b"a");
    net.deliver_all();
    net.fire(NodeId(0), TimerKind::LeaderTick);
    net.deliver_all();
    net.propose(NodeId(1), b"b");
    net.deliver_all();
    net.fire(NodeId(0), TimerKind::LeaderTick);
    net.deliver_all();

    // Local commits must exist at cluster members after a heartbeat.
    net.fire(NodeId(0), TimerKind::Heartbeat);
    net.deliver_all();
    let local_commits = net
        .commits(NodeId(0))
        .iter()
        .filter(|c| c.scope == LogScope::Local && matches!(c.entry.payload, Payload::Write { .. }))
        .count();
    assert_eq!(local_commits, 2, "cluster 0 should commit both proposals locally");

    // The batch flows through the global level: batch proposal broadcast →
    // gated inserts (local global-state consensus) → votes → global
    // decision tick → global commit.
    for _ in 0..6 {
        pump(&mut net, 2, 3);
    }
    let global_batches: Vec<_> = net
        .commits(NodeId(0))
        .iter()
        .filter(|c| c.scope == LogScope::Global)
        .collect();
    assert!(
        global_batches
            .iter()
            .any(|c| matches!(&c.entry.payload, Payload::Batch(b) if b.len() == 2)),
        "the 2-entry batch must commit in the global log; got {global_batches:?}"
    );
    // The other cluster's leader also commits it.
    assert!(
        net.commits(NodeId(3))
            .iter()
            .any(|c| c.scope == LogScope::Global
                && matches!(&c.entry.payload, Payload::Batch(b) if b.len() == 2)),
        "cluster 1's leader must learn the global commit"
    );
    net.assert_safety();
}

#[test]
fn global_state_entries_replicate_inside_cluster() {
    let mut net = deployment(2, 3, 1);
    elect_heads(&mut net, 2, 3);
    elect_global(&mut net, NodeId(0));
    net.propose(NodeId(2), b"x");
    net.deliver_all();
    for _ in 0..6 {
        pump(&mut net, 2, 3);
    }
    // Cluster followers hold global-state entries in their local logs.
    let follower_log = net.node(NodeId(1)).local_log();
    let gs_count = follower_log
        .iter()
        .filter(|(_, e)| matches!(e.payload, Payload::GlobalState(_)))
        .count();
    assert!(
        gs_count >= 1,
        "followers must replicate global state entries, found none"
    );
    net.assert_safety();
}

#[test]
fn followers_learn_global_commit_via_global_state() {
    let mut net = deployment(2, 3, 1);
    elect_heads(&mut net, 2, 3);
    elect_global(&mut net, NodeId(0));
    net.propose(NodeId(1), b"x");
    net.deliver_all();
    for _ in 0..8 {
        pump(&mut net, 2, 3);
    }
    assert!(net.node(NodeId(0)).global_commit_seen() >= LogIndex(1));
    // A non-leader member's view advances through global-state entries.
    assert!(
        net.node(NodeId(1)).global_commit_seen() >= LogIndex(1),
        "cluster follower never learned the global commit index"
    );
    net.assert_safety();
}

#[test]
fn batches_from_multiple_clusters_interleave_safely() {
    let mut net = deployment(3, 3, 1);
    elect_heads(&mut net, 3, 3);
    elect_global(&mut net, NodeId(0));
    net.propose(NodeId(1), b"c0");
    net.propose(NodeId(4), b"c1");
    net.propose(NodeId(7), b"c2");
    net.deliver_all();
    for _ in 0..10 {
        pump(&mut net, 3, 3);
    }
    // All three batches committed globally, each exactly once.
    let mut seen = std::collections::BTreeMap::new();
    for c in net.commits(NodeId(0)) {
        if c.scope == LogScope::Global {
            if let Payload::Batch(b) = &c.entry.payload {
                *seen.entry(b.cluster).or_insert(0) += 1;
            }
        }
    }
    assert_eq!(seen.len(), 3, "one batch per cluster: {seen:?}");
    assert!(seen.values().all(|&v| v == 1));
    net.assert_safety();
}

#[test]
fn partial_batch_flushes_on_timer() {
    let mut net = deployment(2, 3, 10);
    elect_heads(&mut net, 2, 3);
    elect_global(&mut net, NodeId(0));
    // One entry only — far below the batch size of 10.
    net.propose(NodeId(1), b"lonely");
    net.deliver_all();
    net.fire(NodeId(0), TimerKind::LeaderTick);
    net.deliver_all();
    assert_eq!(net.node(NodeId(0)).batch_backlog(), 1);
    // The flush timer forces the partial batch out.
    net.fire(NodeId(0), TimerKind::BatchFlush);
    net.deliver_all();
    assert_eq!(net.node(NodeId(0)).batch_backlog(), 0);
    for _ in 0..6 {
        pump(&mut net, 2, 3);
    }
    assert!(
        net.commits(NodeId(0))
            .iter()
            .any(|c| c.scope == LogScope::Global
                && matches!(&c.entry.payload, Payload::Batch(b) if b.len() == 1)),
        "flushed partial batch must commit globally"
    );
    net.assert_safety();
}

#[test]
fn local_leader_failover_preserves_global_state() {
    let mut net = deployment(2, 3, 1);
    elect_heads(&mut net, 2, 3);
    elect_global(&mut net, NodeId(0));
    // Commit one batch from cluster 1 through the global log.
    net.propose(NodeId(4), b"pre-failover");
    net.deliver_all();
    for _ in 0..8 {
        pump(&mut net, 2, 3);
    }
    let committed_global = net
        .commits(NodeId(3))
        .iter()
        .filter(|c| c.scope == LogScope::Global)
        .count();
    assert!(committed_global >= 1, "setup: global commit missing");

    // Cluster 1's leader (node 3) dies; node 4 takes over locally.
    net.crash(NodeId(3));
    net.fire(NodeId(4), TimerKind::Election);
    net.deliver_all();
    assert!(net.node(NodeId(4)).is_local_leader());
    // The successor reconstructed the global log from global-state entries.
    let view = net.node(NodeId(4)).global_log_view();
    assert!(
        view.iter()
            .any(|(_, e)| matches!(&e.payload, Payload::Batch(b) if b.cluster == wire::ClusterId(1))),
        "successor lost the cluster's global log view"
    );
    assert!(
        net.node(NodeId(4)).global_engine().is_some(),
        "successor must activate its global side"
    );
    net.assert_safety();
}

#[test]
fn new_local_leader_joins_global_configuration() {
    let mut net = deployment(2, 3, 1);
    elect_heads(&mut net, 2, 3);
    elect_global(&mut net, NodeId(0));
    // Heartbeat the global level so membership stabilizes.
    pump(&mut net, 2, 3);
    net.crash(NodeId(3));
    net.fire(NodeId(4), TimerKind::Election);
    net.deliver_all();
    // Node 4's global side is in joining mode (not in the bootstrap global
    // config {0, 3}).
    let joining = net
        .node(NodeId(4))
        .global_engine()
        .expect("global side active")
        .is_joining();
    assert!(joining, "successor should request a global join");
    // Join retry reaches the global leader; catch-up and reconfiguration
    // follow over global heartbeats. The dead node 3 is evicted by the
    // member timeout after 5 missed global beats. Local ticks must run too:
    // node 4's gated global inserts complete through cluster-1 consensus.
    for _ in 0..10 {
        net.fire(NodeId(4), TimerKind::GlobalJoinRetry);
        net.deliver_all();
        net.fire(NodeId(0), TimerKind::GlobalHeartbeat);
        net.deliver_all();
        for local_leader in [NodeId(0), NodeId(4)] {
            net.fire(local_leader, TimerKind::LeaderTick);
            net.deliver_all();
            net.fire(local_leader, TimerKind::Heartbeat);
            net.deliver_all();
        }
        net.fire(NodeId(0), TimerKind::GlobalLeaderTick);
        net.deliver_all();
    }
    let cfg = net
        .node(NodeId(0))
        .global_engine()
        .unwrap()
        .config()
        .clone();
    assert!(cfg.contains(NodeId(4)), "node 4 must join the global config: {cfg:?}");
    assert!(
        !cfg.contains(NodeId(3)),
        "dead node 3 must be evicted from the global config: {cfg:?}"
    );
    net.assert_safety();
}

#[test]
fn proposer_is_notified_on_local_commit() {
    let mut net = deployment(1, 3, 5);
    elect_heads(&mut net, 1, 3);
    let pid = net.propose(NodeId(1), b"notify-me");
    net.deliver_all();
    net.fire(NodeId(0), TimerKind::LeaderTick);
    net.deliver_all();
    let notified = net.responses_for(NodeId(1), pid.0, pid.1).iter().any(|o| {
        matches!(o, wire::ClientOutcome::Committed { .. })
    });
    assert!(notified, "C-Raft clients are acknowledged at local commit");
}

#[test]
fn crash_recovery_restores_local_log() {
    let mut net = deployment(1, 3, 5);
    elect_heads(&mut net, 1, 3);
    net.propose(NodeId(1), b"durable");
    net.deliver_all();
    net.fire(NodeId(0), TimerKind::LeaderTick);
    net.deliver_all();
    net.fire(NodeId(0), TimerKind::Heartbeat);
    net.deliver_all();
    net.crash(NodeId(2));
    let stable = net.disk().read(NodeId(2)).unwrap().clone();
    let members: wire::Configuration = (0..3).map(NodeId).collect();
    let global: wire::Configuration = [NodeId(0)].into_iter().collect();
    let recovered = CRaftNode::recover(
        NodeId(2),
        &stable,
        members,
        global,
        CRaftConfig::paper(wire::ClusterId(0)),
        des::SimRng::seed_from_u64(7),
    );
    assert!(recovered
        .local_log()
        .iter()
        .any(|(_, e)| matches!(e.payload, Payload::Write { .. })));
    net.restart(recovered);
    // Round 1: the recovered follower acks its true (zero) verified point
    // and the leader rewinds nextIndex; round 2 resends the range; round 3
    // carries the commit index.
    for _ in 0..3 {
        net.fire(NodeId(0), TimerKind::Heartbeat);
        net.deliver_all();
    }
    assert!(net.node(NodeId(2)).local_commit_index() >= LogIndex(1));
    net.assert_safety();
}
