//! Leader-lease behavior in the Fast Raft engine, plus the C-Raft
//! `StaleGlobal` read path: the same lifecycle the classic-Raft suite
//! walks (see `crates/raft/tests/lease.rs`), through the shared engine.

use consensus_core::FastRaftNode;
use des::{SimRng, SimTime};
use raft::testkit::Lockstep;
use raft::{Role, Timing};
use wire::{
    ClientOutcome, Configuration, Consistency, ConsensusProtocol, NodeId, Observation, TimerKind,
};

fn cluster(n: u64) -> Lockstep<FastRaftNode> {
    cluster_with(n, Timing::lan()) // lease 300 ms, skew bound 50 ms, barrier 350 ms
}

fn cluster_with(n: u64, timing: Timing) -> Lockstep<FastRaftNode> {
    let cfg: Configuration = (0..n).map(NodeId).collect();
    Lockstep::new((0..n).map(|i| {
        FastRaftNode::new(
            NodeId(i),
            cfg.clone(),
            timing,
            SimRng::seed_from_u64(9300 + i),
        )
    }))
}

fn stamp_all(net: &mut Lockstep<FastRaftNode>, ms: u64) {
    for id in net.ids() {
        net.node_mut(id).set_local_clock(SimTime::from_millis(ms));
    }
}

fn elect_with_lease(net: &mut Lockstep<FastRaftNode>) -> NodeId {
    stamp_all(net, 1000);
    net.fire(NodeId(0), TimerKind::Election);
    net.deliver_all();
    assert_eq!(net.node(NodeId(0)).role(), Role::Leader);
    net.fire(NodeId(0), TimerKind::Heartbeat);
    net.deliver_all();
    stamp_all(net, 1400);
    net.fire(NodeId(0), TimerKind::Heartbeat);
    net.deliver_all();
    NodeId(0)
}

fn lease_reads(net: &Lockstep<FastRaftNode>) -> usize {
    net.observations()
        .iter()
        .filter(|(_, o)| matches!(o, Observation::LeaseRead { .. }))
        .count()
}

fn readindex_reads(net: &Lockstep<FastRaftNode>) -> usize {
    net.observations()
        .iter()
        .filter(|(_, o)| matches!(o, Observation::ReadIndexRead { .. }))
        .count()
}

#[test]
fn engine_lease_read_is_local_and_message_free() {
    let mut net = cluster(3);
    let leader = elect_with_lease(&mut net);
    stamp_all(&mut net, 1500);
    let key = net.read(leader, Consistency::Linearizable);
    assert!(
        net.responses_for(leader, key.0, key.1)
            .iter()
            .any(|o| matches!(o, ClientOutcome::ReadOk { .. })),
        "lease read unanswered"
    );
    assert_eq!(lease_reads(&net), 1);
    assert_eq!(readindex_reads(&net), 0);
    assert!(
        !net.deliver_one(),
        "a lease-served read must put zero messages on the wire"
    );
    net.assert_safety();
}

#[test]
fn engine_lapsed_lease_falls_back_then_recovers() {
    let mut net = cluster(3);
    let leader = elect_with_lease(&mut net);
    stamp_all(&mut net, 5000);
    let key = net.read(leader, Consistency::Linearizable);
    net.deliver_all();
    assert!(
        net.responses_for(leader, key.0, key.1)
            .iter()
            .any(|o| matches!(o, ClientOutcome::ReadOk { .. })),
        "lapsed-lease read must complete through the quorum round"
    );
    assert_eq!(readindex_reads(&net), 1);
    assert_eq!(lease_reads(&net), 0);
    // The fallback round's acks doubled as fresh grants.
    let key2 = net.read(leader, Consistency::Linearizable);
    assert!(
        net.responses_for(leader, key2.0, key2.1)
            .iter()
            .any(|o| matches!(o, ClientOutcome::ReadOk { .. })),
    );
    assert_eq!(lease_reads(&net), 1);
    net.assert_safety();
}

#[test]
fn engine_vote_hold_blocks_rival_inside_window() {
    let mut net = cluster(3);
    let leader = elect_with_lease(&mut net);
    let term_before = net.node(leader).current_term();
    stamp_all(&mut net, 1450);
    net.fire(NodeId(2), TimerKind::Election);
    net.deliver_all();
    assert_eq!(net.node(leader).role(), Role::Leader);
    assert_eq!(net.node(leader).current_term(), term_before);
    assert_ne!(net.node(NodeId(2)).role(), Role::Leader);
    // Liveness after expiry.
    stamp_all(&mut net, 4000);
    net.fire(NodeId(2), TimerKind::Election);
    net.deliver_all();
    assert_eq!(net.node(NodeId(2)).role(), Role::Leader);
    net.assert_safety();
}

#[test]
fn engine_clockless_embedding_keeps_readindex_behavior() {
    let mut net = cluster(3);
    net.fire(NodeId(0), TimerKind::Election);
    net.deliver_all();
    net.fire(NodeId(0), TimerKind::Heartbeat);
    net.deliver_all();
    net.fire(NodeId(0), TimerKind::Heartbeat);
    net.deliver_all();
    let key = net.read(NodeId(0), Consistency::Linearizable);
    net.deliver_all();
    assert!(
        net.responses_for(NodeId(0), key.0, key.1)
            .iter()
            .any(|o| matches!(o, ClientOutcome::ReadOk { .. })),
    );
    assert_eq!(lease_reads(&net), 0);
    assert_eq!(readindex_reads(&net), 1);
    net.assert_safety();
}

#[test]
fn stale_global_read_on_single_level_equals_stale_local() {
    // In the single-level protocols the only log *is* the global log:
    // StaleGlobal answers immediately from the local floor, no leader, no
    // round.
    let mut net = cluster(3);
    elect_with_lease(&mut net);
    let wkey = net.propose(NodeId(1), b"w");
    net.deliver_all();
    net.fire(NodeId(0), TimerKind::LeaderTick);
    net.deliver_all();
    net.fire(NodeId(0), TimerKind::Heartbeat);
    net.deliver_all();
    assert!(net
        .responses_for(NodeId(1), wkey.0, wkey.1)
        .iter()
        .any(|o| matches!(o, ClientOutcome::Committed { .. })));
    let key = net.read(NodeId(2), Consistency::StaleGlobal);
    let outcomes = net.responses_for(NodeId(2), key.0, key.1);
    let floor = outcomes
        .iter()
        .find_map(|o| match o {
            ClientOutcome::ReadOk { commit_floor, .. } => Some(*commit_floor),
            _ => None,
        })
        .expect("StaleGlobal answers locally");
    assert!(!floor.is_zero(), "follower floor covers the committed write");
    assert!(
        !net.deliver_one(),
        "StaleGlobal is a zero-message read at any site"
    );
}

// ---------------------------------------------------------------------
// Pipelined apply through the shared engine: the same floor/queue contract
// the classic-Raft suite pins (`crates/raft/tests/lease.rs`), exercised on
// `FastRaftNode` so the engine's commit/apply split is covered directly.

#[test]
fn engine_pipelined_apply_holds_lease_read_until_floor_applied() {
    let mut timing = Timing::lan();
    timing.pipelined_apply = true;
    let mut net = cluster_with(3, timing);
    let leader = elect_with_lease(&mut net);
    // Clear the election-era apply backlog so the test isolates one write.
    net.with_node(leader, |n, out| n.drain_applies(out));
    stamp_all(&mut net, 1500);

    // Commit a write. In Fast Raft the proposal fast-broadcasts to every
    // site first; the leader orders (and, with the fast acks in, commits)
    // it on its next LeaderTick. The commit index advances, the apply
    // stays queued.
    let wkey = net.propose(leader, b"pipelined");
    net.deliver_all();
    net.fire(leader, TimerKind::LeaderTick);
    net.deliver_all();
    let k = net.node(leader).commit_index();
    assert!(
        net.node(leader).pending_applies() > 0,
        "commit should leave the apply queue non-empty under pipelining"
    );
    assert!(net.node(leader).applied_index() < k);
    assert!(
        net.responses_for(leader, wkey.0, wkey.1).is_empty(),
        "write acked before its entry was applied"
    );

    // A lease read is admitted immediately (floor = k) but not answered
    // while the applied index trails the floor: answering now would let
    // the read observe state older than its floor.
    let before = lease_reads(&net);
    let rkey = net.read(leader, Consistency::Linearizable);
    assert_eq!(lease_reads(&net), before + 1, "admission is not delayed");
    assert!(
        net.responses_for(leader, rkey.0, rkey.1).is_empty(),
        "read answered while applied index trailed its floor"
    );

    // The drain stage applies through k and releases both answers.
    net.with_node(leader, |n, out| n.drain_applies(out));
    assert_eq!(net.node(leader).applied_index(), k);
    assert!(net
        .responses_for(leader, wkey.0, wkey.1)
        .iter()
        .any(|o| matches!(o, ClientOutcome::Committed { .. })));
    let outcomes = net.responses_for(leader, rkey.0, rkey.1);
    assert!(
        outcomes
            .iter()
            .any(|o| matches!(o, ClientOutcome::ReadOk { commit_floor, .. } if *commit_floor >= k)),
        "read not released at a floor covering the write: {outcomes:?}"
    );
    net.assert_safety();
}

/// Pipelined apply is a scheduling change only in the engine too: across
/// random write schedules and random drain points, every node's
/// committed-sequence digest (and commit horizon) matches the inline twin.
#[test]
fn engine_pipelined_and_inline_apply_agree_on_digests() {
    let run = |seed: u64, writes: u64, drain_mask: u64, pipelined: bool| -> Vec<(u64, u64)> {
        let mut timing = Timing::lan();
        timing.pipelined_apply = pipelined;
        let cfg: Configuration = (0..3).map(NodeId).collect();
        let mut net = Lockstep::new((0..3).map(|i| {
            FastRaftNode::new(
                NodeId(i),
                cfg.clone(),
                timing,
                SimRng::seed_from_u64(seed * 100 + i),
            )
        }));
        stamp_all(&mut net, 1000);
        net.fire(NodeId(0), TimerKind::Election);
        net.deliver_all();
        assert_eq!(net.node(NodeId(0)).role(), Role::Leader);
        for w in 0..writes {
            net.propose(NodeId(0), &[seed as u8, w as u8]);
            net.deliver_all();
            net.fire(NodeId(0), TimerKind::LeaderTick);
            net.deliver_all();
            if (drain_mask >> w) & 1 == 1 {
                for id in net.ids() {
                    net.with_node(id, |n, out| n.drain_applies(out));
                }
            }
        }
        // Spread the final commit horizon, then drain everything.
        net.fire(NodeId(0), TimerKind::Heartbeat);
        net.deliver_all();
        for id in net.ids() {
            net.with_node(id, |n, out| n.drain_applies(out));
        }
        net.ids()
            .iter()
            .map(|&id| {
                let n = net.node(id);
                assert_eq!(n.applied_index(), n.commit_index(), "undrained applies");
                (n.state_digest(), n.commit_index().as_u64())
            })
            .collect()
    };
    let mut rng = SimRng::seed_from_u64(0xD1936);
    for case in 0..12u64 {
        let seed = 1 + rng.gen_range(0..10_000u64);
        let writes = 1 + rng.gen_range(0..10u64);
        let drain_mask = rng.gen_range(0..u64::MAX);
        let inline = run(seed, writes, drain_mask, false);
        let piped = run(seed, writes, drain_mask, true);
        assert_eq!(inline, piped, "case {case}: digests diverged");
    }
}
