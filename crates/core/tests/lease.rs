//! Leader-lease behavior in the Fast Raft engine, plus the C-Raft
//! `StaleGlobal` read path: the same lifecycle the classic-Raft suite
//! walks (see `crates/raft/tests/lease.rs`), through the shared engine.

use consensus_core::FastRaftNode;
use des::{SimRng, SimTime};
use raft::testkit::Lockstep;
use raft::{Role, Timing};
use wire::{
    ClientOutcome, Configuration, Consistency, ConsensusProtocol, NodeId, Observation, TimerKind,
};

fn cluster(n: u64) -> Lockstep<FastRaftNode> {
    let cfg: Configuration = (0..n).map(NodeId).collect();
    Lockstep::new((0..n).map(|i| {
        FastRaftNode::new(
            NodeId(i),
            cfg.clone(),
            Timing::lan(), // lease 300 ms, skew bound 50 ms, barrier 350 ms
            SimRng::seed_from_u64(9300 + i),
        )
    }))
}

fn stamp_all(net: &mut Lockstep<FastRaftNode>, ms: u64) {
    for id in net.ids() {
        net.node_mut(id).set_local_clock(SimTime::from_millis(ms));
    }
}

fn elect_with_lease(net: &mut Lockstep<FastRaftNode>) -> NodeId {
    stamp_all(net, 1000);
    net.fire(NodeId(0), TimerKind::Election);
    net.deliver_all();
    assert_eq!(net.node(NodeId(0)).role(), Role::Leader);
    net.fire(NodeId(0), TimerKind::Heartbeat);
    net.deliver_all();
    stamp_all(net, 1400);
    net.fire(NodeId(0), TimerKind::Heartbeat);
    net.deliver_all();
    NodeId(0)
}

fn lease_reads(net: &Lockstep<FastRaftNode>) -> usize {
    net.observations()
        .iter()
        .filter(|(_, o)| matches!(o, Observation::LeaseRead { .. }))
        .count()
}

fn readindex_reads(net: &Lockstep<FastRaftNode>) -> usize {
    net.observations()
        .iter()
        .filter(|(_, o)| matches!(o, Observation::ReadIndexRead { .. }))
        .count()
}

#[test]
fn engine_lease_read_is_local_and_message_free() {
    let mut net = cluster(3);
    let leader = elect_with_lease(&mut net);
    stamp_all(&mut net, 1500);
    let key = net.read(leader, Consistency::Linearizable);
    assert!(
        net.responses_for(leader, key.0, key.1)
            .iter()
            .any(|o| matches!(o, ClientOutcome::ReadOk { .. })),
        "lease read unanswered"
    );
    assert_eq!(lease_reads(&net), 1);
    assert_eq!(readindex_reads(&net), 0);
    assert!(
        !net.deliver_one(),
        "a lease-served read must put zero messages on the wire"
    );
    net.assert_safety();
}

#[test]
fn engine_lapsed_lease_falls_back_then_recovers() {
    let mut net = cluster(3);
    let leader = elect_with_lease(&mut net);
    stamp_all(&mut net, 5000);
    let key = net.read(leader, Consistency::Linearizable);
    net.deliver_all();
    assert!(
        net.responses_for(leader, key.0, key.1)
            .iter()
            .any(|o| matches!(o, ClientOutcome::ReadOk { .. })),
        "lapsed-lease read must complete through the quorum round"
    );
    assert_eq!(readindex_reads(&net), 1);
    assert_eq!(lease_reads(&net), 0);
    // The fallback round's acks doubled as fresh grants.
    let key2 = net.read(leader, Consistency::Linearizable);
    assert!(
        net.responses_for(leader, key2.0, key2.1)
            .iter()
            .any(|o| matches!(o, ClientOutcome::ReadOk { .. })),
    );
    assert_eq!(lease_reads(&net), 1);
    net.assert_safety();
}

#[test]
fn engine_vote_hold_blocks_rival_inside_window() {
    let mut net = cluster(3);
    let leader = elect_with_lease(&mut net);
    let term_before = net.node(leader).current_term();
    stamp_all(&mut net, 1450);
    net.fire(NodeId(2), TimerKind::Election);
    net.deliver_all();
    assert_eq!(net.node(leader).role(), Role::Leader);
    assert_eq!(net.node(leader).current_term(), term_before);
    assert_ne!(net.node(NodeId(2)).role(), Role::Leader);
    // Liveness after expiry.
    stamp_all(&mut net, 4000);
    net.fire(NodeId(2), TimerKind::Election);
    net.deliver_all();
    assert_eq!(net.node(NodeId(2)).role(), Role::Leader);
    net.assert_safety();
}

#[test]
fn engine_clockless_embedding_keeps_readindex_behavior() {
    let mut net = cluster(3);
    net.fire(NodeId(0), TimerKind::Election);
    net.deliver_all();
    net.fire(NodeId(0), TimerKind::Heartbeat);
    net.deliver_all();
    net.fire(NodeId(0), TimerKind::Heartbeat);
    net.deliver_all();
    let key = net.read(NodeId(0), Consistency::Linearizable);
    net.deliver_all();
    assert!(
        net.responses_for(NodeId(0), key.0, key.1)
            .iter()
            .any(|o| matches!(o, ClientOutcome::ReadOk { .. })),
    );
    assert_eq!(lease_reads(&net), 0);
    assert_eq!(readindex_reads(&net), 1);
    net.assert_safety();
}

#[test]
fn stale_global_read_on_single_level_equals_stale_local() {
    // In the single-level protocols the only log *is* the global log:
    // StaleGlobal answers immediately from the local floor, no leader, no
    // round.
    let mut net = cluster(3);
    elect_with_lease(&mut net);
    let wkey = net.propose(NodeId(1), b"w");
    net.deliver_all();
    net.fire(NodeId(0), TimerKind::LeaderTick);
    net.deliver_all();
    net.fire(NodeId(0), TimerKind::Heartbeat);
    net.deliver_all();
    assert!(net
        .responses_for(NodeId(1), wkey.0, wkey.1)
        .iter()
        .any(|o| matches!(o, ClientOutcome::Committed { .. })));
    let key = net.read(NodeId(2), Consistency::StaleGlobal);
    let outcomes = net.responses_for(NodeId(2), key.0, key.1);
    let floor = outcomes
        .iter()
        .find_map(|o| match o {
            ClientOutcome::ReadOk { commit_floor, .. } => Some(*commit_floor),
            _ => None,
        })
        .expect("StaleGlobal answers locally");
    assert!(!floor.is_zero(), "follower floor covers the committed write");
    assert!(
        !net.deliver_one(),
        "StaleGlobal is a zero-message read at any site"
    );
}
