//! §IV-D membership scenarios: self-announced joins and leaves, one change
//! at a time, catch-up, and eviction/rejoin edge cases.

use consensus_core::FastRaftNode;
use des::SimRng;
use raft::testkit::Lockstep;
use raft::{Role, Timing};
use wire::{Configuration, NodeId, Observation, TimerKind};

fn cluster(n: u64) -> Lockstep<FastRaftNode> {
    let cfg: Configuration = (0..n).map(NodeId).collect();
    Lockstep::new((0..n).map(|i| {
        FastRaftNode::new(
            NodeId(i),
            cfg.clone(),
            Timing::lan(),
            SimRng::seed_from_u64(8000 + i),
        )
    }))
}

fn elect(net: &mut Lockstep<FastRaftNode>, who: NodeId) {
    net.fire(who, TimerKind::Election);
    net.deliver_all();
    assert_eq!(net.node(who).role(), Role::Leader);
}

fn settle(net: &mut Lockstep<FastRaftNode>, leader: NodeId, rounds: usize) {
    for _ in 0..rounds {
        net.fire(leader, TimerKind::LeaderTick);
        net.deliver_all();
        net.fire(leader, TimerKind::Heartbeat);
        net.deliver_all();
    }
}

#[test]
fn concurrent_joins_are_serialized() {
    let mut net = cluster(3);
    elect(&mut net, NodeId(0));
    // Two sites request to join at the same time; the leader must process
    // them one at a time (§IV-D: "only one site may join at a time").
    for id in [NodeId(10), NodeId(11)] {
        let joiner = FastRaftNode::joining(
            id,
            vec![NodeId(0), NodeId(1), NodeId(2)],
            Timing::lan(),
            SimRng::seed_from_u64(id.as_u64()),
        );
        net.restart(joiner);
    }
    net.deliver_all();
    settle(&mut net, NodeId(0), 8);
    // Both eventually joined...
    let cfg = net.node(NodeId(0)).config().clone();
    assert!(cfg.contains(NodeId(10)), "{cfg:?}");
    assert!(cfg.contains(NodeId(11)), "{cfg:?}");
    assert_eq!(cfg.len(), 5);
    // ...via two separate config commits, each a single-site change.
    let config_entries: Vec<&Configuration> = net
        .node(NodeId(0))
        .log()
        .iter()
        .filter_map(|(_, e)| e.as_config())
        .collect();
    assert_eq!(config_entries.len(), 2, "one config entry per join");
    assert_eq!(config_entries[0].len(), 4);
    assert_eq!(config_entries[1].len(), 5);
    net.assert_safety();
}

#[test]
fn joiner_is_caught_up_before_voting() {
    let mut net = cluster(3);
    elect(&mut net, NodeId(0));
    // Commit history before the join.
    for i in 0..5 {
        net.propose(NodeId(1), format!("e{i}").as_bytes());
        net.deliver_all();
        settle(&mut net, NodeId(0), 1);
    }
    let pre_join_commit = net.node(NodeId(0)).commit_index();
    assert!(pre_join_commit.as_u64() >= 5);
    let joiner = FastRaftNode::joining(
        NodeId(9),
        vec![NodeId(0)],
        Timing::lan(),
        SimRng::seed_from_u64(1),
    );
    net.restart(joiner);
    net.deliver_all();
    settle(&mut net, NodeId(0), 6);
    assert!(!net.node(NodeId(9)).is_joining());
    // The joiner holds the full pre-join history.
    for k in 1..=pre_join_commit.as_u64() {
        assert!(
            net.node(NodeId(9)).log().get(wire::LogIndex(k)).is_some(),
            "joiner missing catch-up entry {k}"
        );
    }
    net.assert_safety();
}

#[test]
fn leave_request_through_follower_is_forwarded() {
    let mut net = cluster(4);
    elect(&mut net, NodeId(0));
    settle(&mut net, NodeId(0), 1);
    // Node 3 announces departure while only knowing a follower: the request
    // reaches the leader via the follower's redirect (engine forwards
    // LeaveRequest to its leader hint).
    net.with_node(NodeId(3), |n, out| {
        // Simulate a stale hint by sending the leave to node 1 (follower).
        let _ = n;
        out.send(NodeId(1), consensus_core::FastRaftMessage::LeaveRequest { node: NodeId(3) });
    });
    net.deliver_all();
    settle(&mut net, NodeId(0), 3);
    assert!(!net.node(NodeId(0)).config().contains(NodeId(3)));
    assert_eq!(net.node(NodeId(0)).config().len(), 3);
    net.assert_safety();
}

#[test]
fn quorum_shrinks_after_members_leave() {
    let mut net = cluster(5);
    elect(&mut net, NodeId(0));
    settle(&mut net, NodeId(0), 1);
    // Fast quorum is 4 of 5; after two announced leaves it is 3 of 3.
    for id in [NodeId(3), NodeId(4)] {
        net.with_node(id, |n, out| n.request_leave(out));
        net.deliver_all();
        settle(&mut net, NodeId(0), 3);
    }
    let cfg = net.node(NodeId(0)).config().clone();
    assert_eq!(cfg.len(), 3);
    assert_eq!(cfg.fast_quorum(), 3);
    assert_eq!(cfg.classic_quorum(), 2);
    // Fast track works with the shrunken quorum: proposal commits on one
    // decision tick with votes from the three survivors.
    let pid = net.propose(NodeId(1), b"small-quorum");
    net.deliver_all();
    net.fire(NodeId(0), TimerKind::LeaderTick);
    net.deliver_all();
    let notified = net
        .responses_for(NodeId(1), pid.0, pid.1)
        .iter()
        .any(|o| matches!(o, wire::ClientOutcome::Committed { .. }));
    assert!(notified, "fast track must work at quorum 3/3");
    net.assert_safety();
}

#[test]
fn evicted_member_rejoins_automatically() {
    let mut net = cluster(5);
    elect(&mut net, NodeId(0));
    settle(&mut net, NodeId(0), 1);
    // Node 4 goes dark (crash) long enough for the member timeout.
    net.crash(NodeId(4));
    for _ in 0..7 {
        net.fire(NodeId(0), TimerKind::Heartbeat);
        net.deliver_all();
        net.fire(NodeId(0), TimerKind::LeaderTick);
        net.deliver_all();
    }
    assert!(!net.node(NodeId(0)).config().contains(NodeId(4)), "evicted");
    // Node 4 comes back from stable storage, still believing it is a
    // member. Its elections go unanswered; after three it probes with a
    // join request and re-enters.
    let stable = net.disk().read(NodeId(4)).unwrap().clone();
    let back = FastRaftNode::recover(
        NodeId(4),
        &stable,
        (0..5).map(NodeId).collect(),
        Timing::lan(),
        SimRng::seed_from_u64(321),
    );
    net.restart(back);
    for _ in 0..4 {
        net.fire(NodeId(4), TimerKind::Election);
        net.deliver_all();
    }
    // The returning node's inflated term (from its failed elections) deposes
    // the leader through its learner acknowledgements — the classic Raft
    // "disruptive server" episode. The survivors re-elect at a higher term
    // (automatic under the time-driven runner; driven explicitly here), and
    // catch-up + reconfiguration then proceed.
    for _ in 0..3 {
        if net.leaders_by(|n| n.role() == Role::Leader).is_empty() {
            net.fire(NodeId(0), TimerKind::Election);
            net.deliver_all();
        }
        let Some(&leader) = net.leaders_by(|n| n.role() == Role::Leader).first() else {
            continue;
        };
        settle(&mut net, leader, 8);
        if net.node(leader).config().contains(NodeId(4)) {
            break;
        }
    }
    let leader = net.leaders_by(|n| n.role() == Role::Leader)[0];
    assert!(
        net.node(leader).config().contains(NodeId(4)),
        "evicted member failed to rejoin: {:?}",
        net.node(leader).config()
    );
    assert!(!net.node(NodeId(4)).is_joining());
    net.assert_safety();
}

#[test]
fn leader_ignores_self_leave() {
    let mut net = cluster(3);
    elect(&mut net, NodeId(0));
    net.with_node(NodeId(0), |n, out| n.request_leave(out));
    net.deliver_all();
    settle(&mut net, NodeId(0), 2);
    // Defensive behaviour: the leader does not remove itself (§IV-D leaves
    // this case unspecified; see DESIGN.md).
    assert!(net.node(NodeId(0)).config().contains(NodeId(0)));
    assert!(net
        .observations()
        .iter()
        .any(|(n, o)| *n == NodeId(0)
            && matches!(o, Observation::MessageIgnored { reason } if reason.contains("self-leave"))));
}

#[test]
fn join_request_to_full_member_is_acknowledged() {
    let mut net = cluster(3);
    elect(&mut net, NodeId(0));
    // A current member "requests to join" (e.g. a redundant probe): the
    // leader acknowledges without reconfiguring.
    net.with_node(NodeId(1), |n, out| {
        let _ = n;
        out.send(NodeId(0), consensus_core::FastRaftMessage::JoinRequest { node: NodeId(1) });
    });
    net.deliver_all();
    settle(&mut net, NodeId(0), 2);
    assert_eq!(net.node(NodeId(0)).config().len(), 3, "no spurious reconfig");
    net.assert_safety();
}
