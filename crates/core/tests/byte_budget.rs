//! Byte-budgeted batching × sparse-log holes.
//!
//! The PR-1 contiguity fixes guarantee a follower never advances
//! `matchIndex` (and therefore never commits) across an interior gap in an
//! AppendEntries batch. The byte-budgeted batch assembler introduces a new
//! way for gaps to appear at the receiver: a batch may be cut mid-range by
//! the byte cap, and the *leader's own* log may contain holes that the
//! collector skips. These tests drive a follower with budget-assembled
//! batches from sparse leader logs and assert the acknowledged prefix stays
//! contiguous under every cut point.

use bytes::Bytes;
use consensus_core::{FastRaftMessage, FastRaftNode};
use des::SimRng;
use proptest::prelude::*;
use raft::Timing;
use wire::{
    AppendBudget, Approval, Configuration, ConsensusProtocol, EntryId, EntryList, LogEntry,
    LogIndex, NodeId, SparseLog, Term, Wire,
};

const LEADER: NodeId = NodeId(0);
const FOLLOWER: NodeId = NodeId(1);

fn follower() -> FastRaftNode {
    let cfg: Configuration = (0..3).map(NodeId).collect();
    FastRaftNode::new(FOLLOWER, cfg, Timing::lan(), SimRng::seed_from_u64(7))
}

fn entry(term: u64, seq: u64) -> LogEntry {
    LogEntry {
        term: Term(term),
        id: EntryId::new(LEADER, seq),
        payload: wire::Payload::Data(Bytes::from_static(b"payload-bytes")),
        approval: Approval::LeaderApproved,
    }
}

/// Sends one AppendEntries to the follower and returns the acked
/// `match_index` from its reply.
fn append(node: &mut FastRaftNode, entries: EntryList, leader_commit: LogIndex) -> LogIndex {
    let mut out = wire::Actions::new();
    node.on_message(
        LEADER,
        FastRaftMessage::AppendEntries {
            term: Term(1),
            leader: LEADER,
            prev_index: LogIndex::ZERO,
            entries,
            leader_commit,
            global_commit: LogIndex::ZERO,
            probe: 0,
        },
        &mut out,
    );
    let mut acked = None;
    for (to, msg) in &out.sends {
        if let FastRaftMessage::AppendEntriesReply {
            success: true,
            match_index,
            ..
        } = msg
        {
            assert_eq!(*to, LEADER);
            acked = Some(*match_index);
        }
    }
    acked.expect("follower must ack a valid append")
}

#[test]
fn ack_stops_at_interior_gap() {
    let mut node = follower();
    // Leader log holds 1,2,4,5 — index 3 is a hole the collector skips.
    let mut log = SparseLog::new();
    for i in [1u64, 2, 4, 5] {
        log.insert(LogIndex(i), entry(1, i));
    }
    let batch = log.collect_range_budgeted(
        LogIndex(1),
        LogIndex(5),
        AppendBudget::new(128, usize::MAX),
    );
    assert_eq!(batch.len(), 4, "collector ships all occupied slots");
    let acked = append(&mut node, batch, LogIndex(5));
    assert_eq!(acked, LogIndex(2), "matchIndex must stop at the gap");
    assert!(
        node.commit_index() <= LogIndex(2),
        "no commit across the hole"
    );
    // The entries above the gap still landed (they are leader-approved
    // data), they just do not count as matched.
    assert!(node.log().get(LogIndex(4)).is_some());
    assert!(node.log().get(LogIndex(5)).is_some());
}

#[test]
fn byte_cut_batch_never_inflates_ack() {
    let mut node = follower();
    let mut log = SparseLog::new();
    for i in 1u64..=6 {
        log.insert(LogIndex(i), entry(1, i));
    }
    // A budget that admits roughly half the entries.
    let per = 8 + log.get(LogIndex(1)).unwrap().encoded_len();
    let batch =
        log.collect_range_budgeted(LogIndex(1), LogIndex(6), AppendBudget::new(128, 3 * per));
    assert_eq!(batch.len(), 3);
    let acked = append(&mut node, batch, LogIndex(6));
    assert_eq!(acked, LogIndex(3), "ack covers exactly what was shipped");
    assert!(
        node.commit_index() <= LogIndex(3),
        "leader_commit beyond the shipped prefix must be clamped"
    );
}

proptest! {
    /// For every sparse leader log and every byte budget, replaying
    /// budget-assembled batches round by round (resuming from the follower's
    /// ack, exactly as the leader's dispatch loop does) never lets the
    /// follower acknowledge or commit past the leader log's first gap, and
    /// within each round the ack never exceeds the shipped prefix.
    #[test]
    fn budgeted_appends_respect_contiguity(
        occupied in proptest::collection::btree_set(1u64..24, 1..16),
        max_bytes in 1usize..600,
        rounds in 1usize..6,
    ) {
        let mut log = SparseLog::new();
        for &i in &occupied {
            log.insert(LogIndex(i), entry(1, i));
        }
        // The leader's contiguous prefix: acks may never pass this.
        let first_gap = log.first_gap();
        let budget = AppendBudget::new(128, max_bytes);
        let mut node = follower();
        let mut next = LogIndex(1);
        for _ in 0..rounds {
            let batch = log.collect_range_budgeted(next, log.last_index(), budget);
            if batch.is_empty() {
                break;
            }
            // Shipped prefix: the longest run contiguous from `next - 1`.
            let mut shipped = next.prev_saturating();
            for (idx, _) in batch.iter() {
                if *idx == shipped.next() {
                    shipped = *idx;
                } else {
                    break;
                }
            }
            let acked = append(&mut node, batch, log.last_index());
            prop_assert!(acked <= shipped, "ack {acked} beyond shipped prefix {shipped}");
            prop_assert!(acked < first_gap, "ack {acked} crossed leader gap {first_gap}");
            prop_assert!(node.commit_index() < first_gap,
                "commit {} crossed leader gap {first_gap}", node.commit_index());
            next = acked.next();
        }
    }
}
