//! The leader's `possibleEntries` structure (§IV-A).
//!
//! For each log index the leader tracks which entries sites voted for and by
//! whom. The decision rule (§IV-B): once a classic quorum of votes exists
//! for index `k`, insert the entry with the most votes; if a fast quorum
//! voted for the same entry, it can be committed on the fast track.
//!
//! A *null vote* records that a site responded for an index but its vote no
//! longer names a candidate (its entry was chosen elsewhere, §IV-B step d).
//! Null votes count toward "a classic quorum of votes has been received" but
//! never win.

use std::collections::{BTreeMap, BTreeSet};

use wire::{EntryId, LogEntry, LogIndex, NodeId};

/// Votes gathered for one log index.
#[derive(Clone, Debug, Default)]
struct IndexVotes {
    /// Candidate entries by proposal id, with their voters.
    candidates: BTreeMap<EntryId, (LogEntry, BTreeSet<NodeId>)>,
    /// Every site that has voted for this index (including null votes).
    voters: BTreeSet<NodeId>,
}

/// The leader's per-index vote book.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use consensus_core::PossibleEntries;
/// use wire::{EntryId, LogEntry, LogIndex, NodeId, Term};
///
/// let mut pe = PossibleEntries::new();
/// let e = LogEntry::data(Term(1), EntryId::new(NodeId(9), 0), Bytes::from_static(b"v"));
/// pe.record_vote(LogIndex(1), e.clone(), NodeId(1));
/// pe.record_vote(LogIndex(1), e.clone(), NodeId(2));
/// assert_eq!(pe.voters_at(LogIndex(1)), 2);
/// let (winner, voters) = pe.most_voted(LogIndex(1)).unwrap();
/// assert_eq!(winner.id, e.id);
/// assert_eq!(voters.len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct PossibleEntries {
    by_index: BTreeMap<LogIndex, IndexVotes>,
}

impl PossibleEntries {
    /// An empty vote book.
    pub fn new() -> Self {
        PossibleEntries::default()
    }

    /// Records `voter`'s vote for `entry` at `index`. Re-votes by the same
    /// site for a different entry at the same index replace its earlier vote
    /// (a site's log slot holds one entry at a time).
    pub fn record_vote(&mut self, index: LogIndex, entry: LogEntry, voter: NodeId) {
        let slot = self.by_index.entry(index).or_default();
        // Remove any previous candidate vote by this site at this index.
        let previous: Vec<EntryId> = slot
            .candidates
            .iter()
            .filter(|(id, (_, voters))| voters.contains(&voter) && **id != entry.id)
            .map(|(id, _)| *id)
            .collect();
        for id in previous {
            if let Some((_, voters)) = slot.candidates.get_mut(&id) {
                voters.remove(&voter);
                if voters.is_empty() {
                    slot.candidates.remove(&id);
                }
            }
        }
        slot.voters.insert(voter);
        slot.candidates
            .entry(entry.id)
            .or_insert_with(|| (entry, BTreeSet::new()))
            .1
            .insert(voter);
    }

    /// Records a null vote: the site responded for `index` but names no
    /// candidate.
    pub fn record_null_vote(&mut self, index: LogIndex, voter: NodeId) {
        self.by_index.entry(index).or_default().voters.insert(voter);
    }

    /// Number of distinct sites that have voted for `index` (null included).
    pub fn voters_at(&self, index: LogIndex) -> usize {
        self.by_index.get(&index).map_or(0, |s| s.voters.len())
    }

    /// The candidate with the most votes at `index`, ties broken by the
    /// smallest proposal id (the paper allows arbitrary tie-breaks; a
    /// deterministic one keeps simulations reproducible).
    pub fn most_voted(&self, index: LogIndex) -> Option<(&LogEntry, &BTreeSet<NodeId>)> {
        let slot = self.by_index.get(&index)?;
        slot.candidates
            .iter()
            .max_by(|(id_a, (_, va)), (id_b, (_, vb))| {
                va.len().cmp(&vb.len()).then_with(|| id_b.cmp(id_a))
            })
            .map(|(_, (e, v))| (e, v))
    }

    /// Vote count for a specific candidate at `index`.
    pub fn votes_for(&self, index: LogIndex, id: EntryId) -> usize {
        self.by_index
            .get(&index)
            .and_then(|s| s.candidates.get(&id))
            .map_or(0, |(_, v)| v.len())
    }

    /// The voters for a specific candidate at `index`.
    pub fn voters_for(&self, index: LogIndex, id: EntryId) -> Vec<NodeId> {
        self.by_index
            .get(&index)
            .and_then(|s| s.candidates.get(&id))
            .map(|(_, v)| v.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Step (d) of the decision rule: after choosing `id` at `chosen_index`,
    /// convert its candidacies at **other** indices into null votes so the
    /// same proposal is not inserted twice.
    pub fn null_out_elsewhere(&mut self, id: EntryId, chosen_index: LogIndex) {
        for (&idx, slot) in self.by_index.iter_mut() {
            if idx == chosen_index {
                continue;
            }
            slot.candidates.remove(&id);
        }
    }

    /// Drops all state at and below `index` (already-committed indices).
    pub fn release_through(&mut self, index: LogIndex) {
        self.by_index = self.by_index.split_off(&index.next());
    }

    /// The highest index with any recorded vote.
    pub fn max_index(&self) -> LogIndex {
        self.by_index
            .keys()
            .next_back()
            .copied()
            .unwrap_or(LogIndex::ZERO)
    }

    /// Indices currently holding votes, ascending.
    pub fn indices(&self) -> Vec<LogIndex> {
        self.by_index.keys().copied().collect()
    }

    /// Total number of indices tracked.
    pub fn len(&self) -> usize {
        self.by_index.len()
    }

    /// `true` if no votes are tracked.
    pub fn is_empty(&self) -> bool {
        self.by_index.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use wire::Term;

    fn entry(seq: u64) -> LogEntry {
        LogEntry::data(
            Term(1),
            EntryId::new(NodeId(100), seq),
            Bytes::from_static(b"v"),
        )
    }

    #[test]
    fn majority_candidate_wins() {
        let mut pe = PossibleEntries::new();
        let e = entry(0);
        let f = entry(1);
        for v in 1..=3 {
            pe.record_vote(LogIndex(1), e.clone(), NodeId(v));
        }
        pe.record_vote(LogIndex(1), f.clone(), NodeId(4));
        let (winner, voters) = pe.most_voted(LogIndex(1)).unwrap();
        assert_eq!(winner.id, e.id);
        assert_eq!(voters.len(), 3);
        assert_eq!(pe.voters_at(LogIndex(1)), 4);
        assert_eq!(pe.votes_for(LogIndex(1), f.id), 1);
    }

    #[test]
    fn tie_breaks_deterministically_by_smallest_id() {
        let mut pe = PossibleEntries::new();
        let e = entry(0);
        let f = entry(1);
        pe.record_vote(LogIndex(1), f.clone(), NodeId(1));
        pe.record_vote(LogIndex(1), e.clone(), NodeId(2));
        let (winner, _) = pe.most_voted(LogIndex(1)).unwrap();
        assert_eq!(winner.id, e.id, "smallest id wins ties");
    }

    #[test]
    fn revote_replaces_previous_choice() {
        let mut pe = PossibleEntries::new();
        let e = entry(0);
        let f = entry(1);
        pe.record_vote(LogIndex(1), e.clone(), NodeId(1));
        pe.record_vote(LogIndex(1), f.clone(), NodeId(1));
        assert_eq!(pe.votes_for(LogIndex(1), e.id), 0);
        assert_eq!(pe.votes_for(LogIndex(1), f.id), 1);
        assert_eq!(pe.voters_at(LogIndex(1)), 1, "one site, one voter slot");
    }

    #[test]
    fn duplicate_vote_is_idempotent() {
        let mut pe = PossibleEntries::new();
        let e = entry(0);
        pe.record_vote(LogIndex(1), e.clone(), NodeId(1));
        pe.record_vote(LogIndex(1), e.clone(), NodeId(1));
        assert_eq!(pe.votes_for(LogIndex(1), e.id), 1);
    }

    #[test]
    fn null_votes_count_toward_quorum_but_never_win() {
        let mut pe = PossibleEntries::new();
        pe.record_null_vote(LogIndex(2), NodeId(1));
        pe.record_null_vote(LogIndex(2), NodeId(2));
        assert_eq!(pe.voters_at(LogIndex(2)), 2);
        assert!(pe.most_voted(LogIndex(2)).is_none());
        let e = entry(0);
        pe.record_vote(LogIndex(2), e.clone(), NodeId(3));
        assert_eq!(pe.most_voted(LogIndex(2)).unwrap().0.id, e.id);
        assert_eq!(pe.voters_at(LogIndex(2)), 3);
    }

    #[test]
    fn null_out_elsewhere_keeps_chosen_index() {
        let mut pe = PossibleEntries::new();
        let e = entry(0);
        pe.record_vote(LogIndex(1), e.clone(), NodeId(1));
        pe.record_vote(LogIndex(2), e.clone(), NodeId(2));
        pe.null_out_elsewhere(e.id, LogIndex(1));
        assert_eq!(pe.votes_for(LogIndex(1), e.id), 1);
        assert_eq!(pe.votes_for(LogIndex(2), e.id), 0);
        // The voter at index 2 still counts as having responded.
        assert_eq!(pe.voters_at(LogIndex(2)), 1);
    }

    #[test]
    fn release_through_gcs_committed_indices() {
        let mut pe = PossibleEntries::new();
        for i in 1..=5u64 {
            pe.record_vote(LogIndex(i), entry(i), NodeId(1));
        }
        pe.release_through(LogIndex(3));
        assert_eq!(pe.indices(), vec![LogIndex(4), LogIndex(5)]);
        assert_eq!(pe.max_index(), LogIndex(5));
        assert_eq!(pe.len(), 2);
    }

    #[test]
    fn empty_book() {
        let pe = PossibleEntries::new();
        assert!(pe.is_empty());
        assert_eq!(pe.max_index(), LogIndex::ZERO);
        assert_eq!(pe.voters_at(LogIndex(1)), 0);
        assert!(pe.most_voted(LogIndex(1)).is_none());
    }
}
