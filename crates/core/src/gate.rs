//! Insert gating: the hook that lets C-Raft run intra-cluster consensus
//! before a global-log insert takes effect (§V-B).
//!
//! Fast Raft inserts entries into the log at three points: when a site
//! receives a proposer broadcast, when the leader's decision loop chooses an
//! entry, and when a follower applies AppendEntries. In plain Fast Raft the
//! insert happens immediately ([`ProceedGate`]). At C-Raft's global level,
//! each insert must first be replicated within the cluster as a *global
//! state entry*; the engine defers the insert ([`GateVerdict::Defer`]) and
//! resumes when the embedding reports the local commit via
//! `FastRaftEngine::gate_ready`.

use wire::{LogEntry, LogIndex};

/// Why the engine wants to insert.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GatePurpose {
    /// A proposer broadcast arrived: insert self-approved, then vote.
    ProposerInsert,
    /// The leader's decision loop chose this entry for the index.
    DecisionInsert,
    /// A follower applies a leader-approved entry from AppendEntries.
    AppendInsert,
}

/// Token identifying a deferred insert, echoed back via `gate_ready`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GateToken(pub u64);

/// The gate's decision for one insert.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GateVerdict {
    /// Insert immediately (plain Fast Raft).
    Proceed,
    /// Park the insert; the embedding completes it later with this token.
    Defer(GateToken),
}

/// Decides whether log inserts proceed immediately or await intra-cluster
/// replication.
pub trait InsertGate {
    /// Judges one insert of `entry` at `index`.
    fn begin(&mut self, index: LogIndex, entry: &LogEntry, purpose: GatePurpose) -> GateVerdict;
}

/// The trivial gate: every insert proceeds immediately.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProceedGate;

impl InsertGate for ProceedGate {
    fn begin(&mut self, _index: LogIndex, _entry: &LogEntry, _purpose: GatePurpose) -> GateVerdict {
        GateVerdict::Proceed
    }
}

/// One recorded deferral, for the embedding to act on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GateRequest {
    /// Token to echo back via `gate_ready`.
    pub token: GateToken,
    /// Global-log index being written.
    pub index: LogIndex,
    /// The entry being written.
    pub entry: LogEntry,
    /// Why the engine is writing.
    pub purpose: GatePurpose,
}

/// A deferring gate that records every request; used by C-Raft's global
/// level. Tokens are unique for the lifetime of the recorder.
#[derive(Clone, Debug, Default)]
pub struct GateRecorder {
    requests: Vec<GateRequest>,
    next_token: u64,
}

impl GateRecorder {
    /// A fresh recorder.
    pub fn new() -> Self {
        GateRecorder::default()
    }

    /// Drains the requests recorded since the last call.
    pub fn drain(&mut self) -> Vec<GateRequest> {
        std::mem::take(&mut self.requests)
    }

    /// Number of recorded-but-undrained requests.
    pub fn pending(&self) -> usize {
        self.requests.len()
    }
}

impl InsertGate for GateRecorder {
    fn begin(&mut self, index: LogIndex, entry: &LogEntry, purpose: GatePurpose) -> GateVerdict {
        let token = GateToken(self.next_token);
        self.next_token += 1;
        self.requests.push(GateRequest {
            token,
            index,
            entry: entry.clone(),
            purpose,
        });
        GateVerdict::Defer(token)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use wire::{EntryId, NodeId, Term};

    fn entry() -> LogEntry {
        LogEntry::data(Term(1), EntryId::new(NodeId(1), 0), Bytes::from_static(b"x"))
    }

    #[test]
    fn proceed_gate_always_proceeds() {
        let mut g = ProceedGate;
        assert_eq!(
            g.begin(LogIndex(1), &entry(), GatePurpose::ProposerInsert),
            GateVerdict::Proceed
        );
    }

    #[test]
    fn recorder_defers_with_unique_tokens() {
        let mut g = GateRecorder::new();
        let v1 = g.begin(LogIndex(1), &entry(), GatePurpose::DecisionInsert);
        let v2 = g.begin(LogIndex(2), &entry(), GatePurpose::AppendInsert);
        let (GateVerdict::Defer(t1), GateVerdict::Defer(t2)) = (v1, v2) else {
            panic!("recorder must defer");
        };
        assert_ne!(t1, t2);
        let reqs = g.drain();
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].token, t1);
        assert_eq!(reqs[0].purpose, GatePurpose::DecisionInsert);
        assert_eq!(reqs[1].index, LogIndex(2));
        assert_eq!(g.pending(), 0);
    }

    #[test]
    fn tokens_remain_unique_across_drains() {
        let mut g = GateRecorder::new();
        g.begin(LogIndex(1), &entry(), GatePurpose::ProposerInsert);
        let first = g.drain();
        g.begin(LogIndex(1), &entry(), GatePurpose::ProposerInsert);
        let second = g.drain();
        assert_ne!(first[0].token, second[0].token);
    }
}
